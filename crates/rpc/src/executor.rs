//! The parallel daemon executor: `lakeD`'s multi-worker, out-of-order
//! request pipeline.
//!
//! [`serve`](crate::serve) executes one frame at a time — recv, decode,
//! handle, respond — so a single slow inference head-of-line-blocks every
//! pipelined caller behind it. [`serve_executor`] splits that loop into a
//! three-stage pipeline while keeping every transport and crash-recovery
//! invariant:
//!
//! * the **acceptor** (the calling thread, sole `recv` consumer so the
//!   SPSC ring invariant holds on the command direction) decodes frames,
//!   answers dedup replays and malformed frames directly, classifies each
//!   command's ordering requirements, and hands independent work to
//! * a fixed pool of **workers**, which execute handler calls — including
//!   unwrapping staged shm payloads, whose pinned pages stay locked for
//!   exactly the duration of the handler call — and push finished
//!   responses onto an MPSC completion mux
//!   ([`lake_transport::completion_queue`]), drained by
//! * a single **responder**, the sole `send` producer, which coalesces
//!   every completion available per wakeup into one
//!   [`Channel::send_batch`] doorbell, marks dedup entries complete, and
//!   re-admits deferred work whose ordering barriers have lifted.
//!
//! # Ordering
//!
//! Handlers advertise per-command constraints through
//! [`ApiHandler::classify`]:
//!
//! * [`CommandClass::Concurrent`] commands run on any worker at any time.
//! * [`CommandClass::Keyed`]`(k)` commands share resource `k` (a model id)
//!   and run concurrently with each other, but never across a barrier on
//!   `k`.
//! * [`CommandClass::KeyedBarrier`]`(k)` commands (hot-swap, train,
//!   unload) wait for every in-flight command on `k`, run exclusively
//!   with respect to `k`, and hold back later commands on `k` until they
//!   finish — preserving the model store's "in-flight rows finish on
//!   version v, post-ack requests see v+1" hot-swap contract.
//! * [`CommandClass::Exclusive`] commands drain the whole pipeline and
//!   run alone — the default, so an unclassified handler degrades to
//!   serial execution rather than to a data race.
//!
//! Deferral is strict FIFO: once one command parks behind a barrier,
//! every later command parks behind *it*, so two barriers can never
//! reorder against each other.
//!
//! # Crash fencing
//!
//! Workers load the incarnation epoch immediately before executing and
//! stamp it into the response, exactly like the serial loop: a crash
//! mid-flight means in-flight responses carry the dead epoch and the
//! stub-side fence discards them, composing with PR 3 supervision
//! unchanged. The dedup table is sharded by seq with per-entry epoch
//! tags, so replays are only served within the incarnation that computed
//! them.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use bytes::Bytes;
use lake_shm::ShmRegion;
use lake_sim::{ParkMeter, ParkStats, SharedClock};
use lake_transport::{completion_queue, Channel, MuxSender};

use crate::command::{ApiId, Command, Response, Status, SEQ_UNMATCHED};
use crate::engine::{
    dispatch, serve_serial, ApiHandler, BURST_API_BIT, MAX_BURST_ENTRIES, STAGED_API_BIT,
};
use crate::perf::PerfCounters;
use crate::wire::Decoder;

/// Ordering constraint one command places on the parallel executor,
/// reported by [`ApiHandler::classify`].
///
/// For staged commands the executor resolves the shm descriptor and
/// passes `classify` the first 8 bytes of the *staged* payload (the
/// keyed APIs all lead with their `u64` model id), so classification
/// must only inspect a fixed-size payload prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandClass {
    /// No ordering constraint: safe to run concurrently with anything
    /// except an [`CommandClass::Exclusive`] command.
    Concurrent,
    /// Reads or uses keyed resource `k`: concurrent with other commands
    /// on `k`, ordered against [`CommandClass::KeyedBarrier`]`(k)`.
    Keyed(u64),
    /// Mutates keyed resource `k`: waits for all in-flight work on `k`
    /// and blocks later work on `k` until it completes.
    KeyedBarrier(u64),
    /// Runs completely alone; the conservative default.
    Exclusive,
}

/// A job's joined ordering class — a burst frame may touch several keys.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobClass {
    Concurrent,
    Keyed(Vec<u64>),
    KeyedBarrier(u64),
    Exclusive,
}

/// Sharding of the dedup table. 8 shards × 16 entries keeps the serial
/// loop's 128-deep at-most-once window while letting the acceptor and
/// responder touch disjoint seqs without contending.
const DEDUP_SHARDS: u64 = 8;
/// Completed entries retained per shard before LRU trim.
const DEDUP_SHARD_CAP: usize = 16;
const _: () = assert!(DEDUP_SHARDS as usize * DEDUP_SHARD_CAP == crate::engine::SERVE_DEDUP_WINDOW);

enum DedupEntry {
    /// A worker is executing this seq; duplicates wait for its response.
    /// In-flight entries are pinned — never evicted by the LRU trim.
    InFlight {
        dup_waiters: u32,
    },
    Done {
        epoch: u64,
        response: Response,
    },
}

#[derive(Default)]
struct DedupShard {
    entries: HashMap<u64, DedupEntry>,
    order: VecDeque<u64>,
}

/// Seq-sharded at-most-once window shared by the serial and parallel
/// serve paths.
pub(crate) struct DedupTable {
    shards: Vec<Mutex<DedupShard>>,
}

/// Outcome of admitting a freshly received seq.
pub(crate) enum Admission {
    /// Not seen (this incarnation): execute it. `evicted` reports whether
    /// admitting it trimmed an older completed entry.
    Execute { evicted: bool },
    /// Completed under the current incarnation: replay the cached answer.
    Replay(Response),
    /// Currently executing: the duplicate is answered at completion.
    DuplicateInFlight,
}

impl DedupTable {
    pub(crate) fn new() -> Self {
        DedupTable { shards: (0..DEDUP_SHARDS).map(|_| Mutex::default()).collect() }
    }

    fn shard(&self, seq: u64) -> &Mutex<DedupShard> {
        &self.shards[(seq % DEDUP_SHARDS) as usize]
    }

    /// Serial-path replay check: a cached response computed under
    /// `now_epoch`, if any. Never marks anything in-flight.
    pub(crate) fn replay(&self, seq: u64, now_epoch: u64) -> Option<Response> {
        let shard = self.shard(seq).lock().expect("dedup poisoned");
        match shard.entries.get(&seq) {
            Some(DedupEntry::Done { epoch, response }) if *epoch == now_epoch => {
                Some(response.clone())
            }
            _ => None,
        }
    }

    /// Serial-path record of a computed response. Returns `true` when the
    /// insert trimmed an older completed entry out of the window.
    pub(crate) fn record(&self, seq: u64, epoch: u64, response: &Response) -> bool {
        let mut shard = self.shard(seq).lock().expect("dedup poisoned");
        if shard
            .entries
            .insert(seq, DedupEntry::Done { epoch, response: response.clone() })
            .is_none()
        {
            shard.order.push_back(seq);
        }
        Self::trim(&mut shard)
    }

    /// Executor-path admission: replay, attach to an in-flight execution,
    /// or mark the seq in-flight and execute it.
    pub(crate) fn begin(&self, seq: u64, now_epoch: u64) -> Admission {
        let mut shard = self.shard(seq).lock().expect("dedup poisoned");
        match shard.entries.get_mut(&seq) {
            Some(DedupEntry::InFlight { dup_waiters }) => {
                *dup_waiters += 1;
                return Admission::DuplicateInFlight;
            }
            Some(DedupEntry::Done { epoch, response }) if *epoch == now_epoch => {
                return Admission::Replay(response.clone());
            }
            Some(stale) => {
                // Completed under a dead incarnation: the new incarnation
                // never ran this command, so it must execute for real.
                *stale = DedupEntry::InFlight { dup_waiters: 0 };
                return Admission::Execute { evicted: false };
            }
            None => {}
        }
        shard.entries.insert(seq, DedupEntry::InFlight { dup_waiters: 0 });
        shard.order.push_back(seq);
        let evicted = Self::trim(&mut shard);
        Admission::Execute { evicted }
    }

    /// Executor-path completion: caches the response for replays and
    /// returns how many duplicate frames arrived while it executed (each
    /// owed its own copy of the response).
    pub(crate) fn complete(&self, seq: u64, response: &Response) -> u32 {
        let mut shard = self.shard(seq).lock().expect("dedup poisoned");
        let dup_waiters = match shard.entries.get(&seq) {
            Some(DedupEntry::InFlight { dup_waiters }) => *dup_waiters,
            _ => 0,
        };
        shard
            .entries
            .insert(seq, DedupEntry::Done { epoch: response.epoch, response: response.clone() });
        dup_waiters
    }

    /// Evicts the oldest *completed* entry once the shard exceeds its
    /// capacity; in-flight entries are pinned (they are bounded by the
    /// number of concurrently executing commands, not by retry floods).
    fn trim(shard: &mut DedupShard) -> bool {
        if shard.order.len() <= DEDUP_SHARD_CAP {
            return false;
        }
        for i in 0..shard.order.len() {
            let seq = shard.order[i];
            if matches!(shard.entries.get(&seq), Some(DedupEntry::Done { .. })) {
                shard.order.remove(i);
                shard.entries.remove(&seq);
                return true;
            }
        }
        false
    }
}

/// Live counters for one daemon's executor, shared with
/// `Lake::perf_report()`. All fields are updated with relaxed atomics by
/// the acceptor, workers, and responder; [`ExecutorStats::snapshot`]
/// reads a coherent-enough view for reporting.
#[derive(Debug, Default)]
pub struct ExecutorStats {
    workers: AtomicU64,
    frames: AtomicU64,
    executed: AtomicU64,
    replays: AtomicU64,
    dup_inflight: AtomicU64,
    malformed: AtomicU64,
    dedup_evictions: AtomicU64,
    completions: AtomicU64,
    response_doorbells: AtomicU64,
    deferred: AtomicU64,
    barriers: AtomicU64,
    inflight_high_water: AtomicU64,
    deferred_high_water: AtomicU64,
    park: ParkMeter,
}

/// Point-in-time copy of [`ExecutorStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorSnapshot {
    /// Worker threads the executor is running with (1 = serial loop).
    pub workers: u64,
    /// Frames received by the acceptor.
    pub frames: u64,
    /// Commands dispatched to the handler (replays excluded).
    pub executed: u64,
    /// Duplicate/retried frames answered from the dedup cache.
    pub replays: u64,
    /// Duplicate frames that arrived while their seq was still
    /// executing; answered when the original completed.
    pub dup_inflight: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
    /// Completed dedup entries trimmed out of the at-most-once window.
    pub dedup_evictions: u64,
    /// Responses drained through the completion mux (parallel mode).
    pub completions: u64,
    /// `send_batch` doorbells rung by the responder; `completions /
    /// response_doorbells` is the response-side coalescing factor.
    pub response_doorbells: u64,
    /// Jobs parked behind an ordering constraint before running.
    pub deferred: u64,
    /// Barrier (keyed-barrier or exclusive) jobs admitted.
    pub barriers: u64,
    /// Most commands ever executing concurrently.
    pub inflight_high_water: u64,
    /// Deepest the deferred queue ever got.
    pub deferred_high_water: u64,
    /// Worker park episodes (blocking waits for work).
    pub worker_parks: u64,
    /// Virtual microseconds workers spent parked while siblings
    /// advanced the clock.
    pub worker_idle_us: u64,
    /// Most workers ever parked simultaneously.
    pub workers_parked_high_water: u64,
}

impl ExecutorStats {
    /// Creates a zeroed stats block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the live counters.
    pub fn snapshot(&self) -> ExecutorSnapshot {
        let ParkStats { parks, idle_ns, parked_high_water } = self.park.stats();
        ExecutorSnapshot {
            workers: self.workers.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            dup_inflight: self.dup_inflight.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            dedup_evictions: self.dedup_evictions.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            response_doorbells: self.response_doorbells.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            inflight_high_water: self.inflight_high_water.load(Ordering::Relaxed),
            deferred_high_water: self.deferred_high_water.load(Ordering::Relaxed),
            worker_parks: parks,
            worker_idle_us: idle_ns / 1_000,
            workers_parked_high_water: parked_high_water,
        }
    }

    pub(crate) fn note_frame(&self) {
        self.frames.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_executed(&self) {
        self.executed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_replay(&self) {
        self.replays.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_eviction(&self) {
        self.dedup_evictions.fetch_add(1, Ordering::Relaxed);
    }
}

/// One decoded-and-classified command waiting for (or on) a worker. The
/// raw frame rides along so the worker's dispatch borrows payload bytes
/// from it (or from shm, for staged commands) exactly like the serial
/// loop — no payload copy is introduced by the handoff.
struct Job {
    seq: u64,
    class: JobClass,
    frame: Vec<u8>,
}

enum Completion {
    /// A worker finished a job.
    Executed { class: JobClass, response: Response },
    /// Acceptor-answered frame (replay or malformed): no ordering state
    /// to release, just a response to send.
    Direct(Response),
    /// The acceptor exited; wakes the responder to begin shutdown.
    Shutdown,
}

/// What is currently running, what holds which barrier, and what waits.
#[derive(Default)]
struct ExecState {
    inflight_total: usize,
    keyed: HashMap<u64, usize>,
    barriers_held: HashSet<u64>,
    exclusive_running: bool,
    deferred: VecDeque<Job>,
}

impl ExecState {
    fn eligible(&self, class: &JobClass) -> bool {
        if self.exclusive_running {
            return false;
        }
        match class {
            JobClass::Concurrent => true,
            JobClass::Keyed(keys) => keys.iter().all(|k| !self.barriers_held.contains(k)),
            JobClass::KeyedBarrier(k) => {
                !self.barriers_held.contains(k) && self.keyed.get(k).copied().unwrap_or(0) == 0
            }
            JobClass::Exclusive => self.inflight_total == 0,
        }
    }

    fn admit(&mut self, class: &JobClass, stats: &ExecutorStats) {
        self.inflight_total += 1;
        stats.inflight_high_water.fetch_max(self.inflight_total as u64, Ordering::Relaxed);
        match class {
            JobClass::Concurrent => {}
            JobClass::Keyed(keys) => {
                for k in keys {
                    *self.keyed.entry(*k).or_insert(0) += 1;
                }
            }
            JobClass::KeyedBarrier(k) => {
                self.barriers_held.insert(*k);
                *self.keyed.entry(*k).or_insert(0) += 1;
                stats.barriers.fetch_add(1, Ordering::Relaxed);
            }
            JobClass::Exclusive => {
                self.exclusive_running = true;
                stats.barriers.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn release(&mut self, class: &JobClass) {
        self.inflight_total -= 1;
        match class {
            JobClass::Concurrent => {}
            JobClass::Keyed(keys) => {
                for k in keys {
                    self.release_key(*k);
                }
            }
            JobClass::KeyedBarrier(k) => {
                self.barriers_held.remove(k);
                self.release_key(*k);
            }
            JobClass::Exclusive => self.exclusive_running = false,
        }
    }

    fn release_key(&mut self, k: u64) {
        if let Some(count) = self.keyed.get_mut(&k) {
            *count -= 1;
            if *count == 0 {
                self.keyed.remove(&k);
            }
        }
    }
}

/// Classifies one (possibly staged) command. Staged descriptors are
/// resolved so the handler classifies against the first bytes of the real
/// payload; anything unresolvable degrades to [`CommandClass::Exclusive`]
/// — the dispatch itself will produce the `Malformed` answer.
fn classify_one(
    handler: &dyn ApiHandler,
    staging: Option<&ShmRegion>,
    api: ApiId,
    payload: &[u8],
) -> CommandClass {
    if api.0 & STAGED_API_BIT == 0 {
        return handler.classify(api, payload);
    }
    let real = ApiId(api.0 & !STAGED_API_BIT);
    let Some(region) = staging else {
        return CommandClass::Exclusive;
    };
    let mut d = Decoder::new(payload);
    let (offset, len) = match (d.get_u64(), d.get_u64()) {
        (Ok(o), Ok(l)) => (o as usize, l as usize),
        _ => return CommandClass::Exclusive,
    };
    let Ok(buf) = region.resolve(offset) else {
        return CommandClass::Exclusive;
    };
    if len > buf.len() {
        return CommandClass::Exclusive;
    }
    let take = len.min(8);
    let mut prefix = [0u8; 8];
    let resolved = region.with_bytes(&buf, |bytes| prefix[..take].copy_from_slice(&bytes[..take]));
    match resolved {
        Ok(()) => handler.classify(real, &prefix[..take]),
        Err(_) => CommandClass::Exclusive,
    }
}

/// Joins the classes of every command in a frame (one, or a burst's
/// many). A burst carrying any barrier escalates to [`JobClass::Exclusive`]
/// — its entries execute sequentially inside one job anyway, and global
/// exclusion is the one class that preserves every pairwise constraint.
fn classify_frame(
    handler: &dyn ApiHandler,
    staging: Option<&ShmRegion>,
    api: ApiId,
    payload: &[u8],
) -> JobClass {
    if api.0 & BURST_API_BIT == 0 {
        return match classify_one(handler, staging, api, payload) {
            CommandClass::Concurrent => JobClass::Concurrent,
            CommandClass::Keyed(k) => JobClass::Keyed(vec![k]),
            CommandClass::KeyedBarrier(k) => JobClass::KeyedBarrier(k),
            CommandClass::Exclusive => JobClass::Exclusive,
        };
    }
    let mut d = Decoder::new(payload);
    let Ok(count) = d.get_u32() else {
        return JobClass::Exclusive;
    };
    let count = count as usize;
    if count == 0 || count > MAX_BURST_ENTRIES {
        return JobClass::Exclusive;
    }
    let mut keys: Vec<u64> = Vec::new();
    let mut any_keyed = false;
    for _ in 0..count {
        let Ok(entry_api) = d.get_u32() else {
            return JobClass::Exclusive;
        };
        let Ok(entry) = d.get_bytes() else {
            return JobClass::Exclusive;
        };
        match classify_one(handler, staging, ApiId(entry_api), entry) {
            CommandClass::Concurrent => {}
            CommandClass::Keyed(k) => {
                any_keyed = true;
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
            CommandClass::KeyedBarrier(_) | CommandClass::Exclusive => return JobClass::Exclusive,
        }
    }
    if any_keyed {
        JobClass::Keyed(keys)
    } else {
        JobClass::Concurrent
    }
}

fn submit_job(
    job: Job,
    state: &Mutex<ExecState>,
    job_tx: &crossbeam::channel::Sender<Job>,
    stats: &ExecutorStats,
) {
    let mut st = state.lock().expect("exec state poisoned");
    // Strict FIFO around barriers: a job may only jump straight to the
    // workers if nothing is already waiting — otherwise it would overtake
    // the deferred job and could violate its barrier.
    if st.deferred.is_empty() && st.eligible(&job.class) {
        st.admit(&job.class, stats);
        let _ = job_tx.send(job);
    } else {
        st.deferred.push_back(job);
        stats.deferred.fetch_add(1, Ordering::Relaxed);
        stats.deferred_high_water.fetch_max(st.deferred.len() as u64, Ordering::Relaxed);
    }
}

#[allow(clippy::too_many_arguments)] // shares serve_executor's wiring, one role
fn worker_loop(
    job_rx: crossbeam::channel::Receiver<Job>,
    done_tx: MuxSender<Completion>,
    handler: &dyn ApiHandler,
    staging: Option<&ShmRegion>,
    counters: &PerfCounters,
    epoch: &AtomicU64,
    stats: &ExecutorStats,
    clock: &SharedClock,
) {
    loop {
        let job = {
            let _parked = stats.park.park(clock);
            match job_rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        // The epoch is sampled at execution start, exactly like the
        // serial loop: a crash struck between here and the send means the
        // response carries the dead incarnation's stamp and the stub-side
        // fence discards it.
        let now_epoch = epoch.load(Ordering::Relaxed);
        let response = match Command::decode_borrowed(&job.frame) {
            Ok(cmd) => {
                counters.note_zero_copy(cmd.payload.len());
                match dispatch(handler, staging, Some(counters), cmd.api, cmd.payload) {
                    Ok(payload) => {
                        Response { seq: job.seq, epoch: now_epoch, status: Status::Ok, payload }
                    }
                    Err(status) => {
                        Response { seq: job.seq, epoch: now_epoch, status, payload: Bytes::new() }
                    }
                }
            }
            // The acceptor already decoded this frame once; an error here
            // is unreachable in practice but must still produce an answer.
            Err(_) => Response {
                seq: job.seq,
                epoch: now_epoch,
                status: Status::Malformed,
                payload: Bytes::new(),
            },
        };
        stats.note_executed();
        done_tx.push(Completion::Executed { class: job.class, response });
    }
}

#[allow(clippy::too_many_arguments)]
fn responder_loop<C: Channel + ?Sized>(
    endpoint: &C,
    done_rx: lake_transport::MuxReceiver<Completion>,
    dedup: &DedupTable,
    state: &Mutex<ExecState>,
    job_tx: crossbeam::channel::Sender<Job>,
    acceptor_done: &AtomicBool,
    stats: &ExecutorStats,
) {
    let mut job_tx = Some(job_tx);
    while let Some(batch) = done_rx.drain_wait() {
        let mut wire: Vec<Vec<u8>> = Vec::new();
        for completion in batch {
            match completion {
                Completion::Direct(response) => wire.push(response.encode()),
                Completion::Executed { class, response } => {
                    stats.completions.fetch_add(1, Ordering::Relaxed);
                    let dup_waiters = dedup.complete(response.seq, &response);
                    let frame = response.encode();
                    // Each duplicate frame that arrived mid-execution is
                    // owed its own copy, so a retrying caller is never
                    // left waiting on a response that was already sent.
                    for _ in 0..dup_waiters {
                        wire.push(frame.clone());
                    }
                    wire.push(frame);
                    let mut st = state.lock().expect("exec state poisoned");
                    st.release(&class);
                    while let Some(front) = st.deferred.front() {
                        if !st.eligible(&front.class) {
                            break;
                        }
                        let job = st.deferred.pop_front().expect("front checked");
                        st.admit(&job.class, stats);
                        if let Some(tx) = &job_tx {
                            let _ = tx.send(job);
                        }
                    }
                }
                Completion::Shutdown => {}
            }
        }
        if !wire.is_empty() {
            stats.response_doorbells.fetch_add(1, Ordering::Relaxed);
            if endpoint.send_batch(wire).is_err() {
                // Peer gone: stop sending. Dropping job_tx (below, via
                // return) releases the workers.
                return;
            }
        }
        if job_tx.is_some() && acceptor_done.load(Ordering::Acquire) {
            let st = state.lock().expect("exec state poisoned");
            if st.inflight_total == 0 && st.deferred.is_empty() {
                drop(st);
                // No more work can arrive: disconnect the workers so they
                // exit, which drops their mux senders and ends this loop.
                job_tx = None;
            }
        }
    }
}

/// Runs the daemon dispatch loop with a parallel worker pool.
///
/// `workers <= 1` runs the serial [`crate::serve_engine`] loop (same
/// thread, same frame-at-a-time semantics — bit-identical to a daemon
/// without an executor) while still recording [`ExecutorStats`].
/// `workers > 1` runs the acceptor/worker/responder pipeline described in
/// the [module docs](self).
#[allow(clippy::too_many_arguments)]
pub fn serve_executor<C: Channel + ?Sized>(
    endpoint: &C,
    handler: &dyn ApiHandler,
    epoch: &AtomicU64,
    staging: Option<&ShmRegion>,
    counters: &PerfCounters,
    workers: usize,
    stats: &ExecutorStats,
) {
    stats.workers.store(workers.max(1) as u64, Ordering::Relaxed);
    if workers <= 1 {
        serve_serial(endpoint, handler, epoch, staging, Some(counters), Some(stats));
        return;
    }
    let clock = endpoint.clock();
    let dedup = DedupTable::new();
    let state = Mutex::new(ExecState::default());
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();
    let (done_tx, done_rx) = completion_queue::<Completion>();
    let acceptor_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn({
                let stats = &*stats;
                move || {
                    worker_loop(job_rx, done_tx, handler, staging, counters, epoch, stats, clock)
                }
            });
        }
        drop(job_rx);
        scope.spawn({
            let job_tx = job_tx.clone();
            let state = &state;
            let dedup = &dedup;
            let acceptor_done = &acceptor_done;
            move || responder_loop(endpoint, done_rx, dedup, state, job_tx, acceptor_done, stats)
        });

        // What to do with a frame, computed while the decoded command
        // still borrows it; the borrow ends before the frame is moved
        // into a job.
        enum FrameAction {
            Direct(Response),
            Dup,
            Execute { seq: u64, class: JobClass },
        }
        while let Ok(frame) = endpoint.recv() {
            stats.note_frame();
            let now_epoch = epoch.load(Ordering::Relaxed);
            let action = match Command::decode_borrowed(&frame) {
                Ok(cmd) => match dedup.begin(cmd.seq, now_epoch) {
                    Admission::Replay(prior) => {
                        stats.note_replay();
                        FrameAction::Direct(prior)
                    }
                    Admission::DuplicateInFlight => {
                        stats.dup_inflight.fetch_add(1, Ordering::Relaxed);
                        FrameAction::Dup
                    }
                    Admission::Execute { evicted } => {
                        if evicted {
                            stats.note_eviction();
                        }
                        FrameAction::Execute {
                            seq: cmd.seq,
                            class: classify_frame(handler, staging, cmd.api, cmd.payload),
                        }
                    }
                },
                Err(_) => {
                    stats.note_malformed();
                    FrameAction::Direct(Response {
                        seq: Command::peek_seq(&frame).unwrap_or(SEQ_UNMATCHED),
                        epoch: now_epoch,
                        status: Status::Malformed,
                        payload: Bytes::new(),
                    })
                }
            };
            match action {
                FrameAction::Direct(response) => done_tx.push(Completion::Direct(response)),
                FrameAction::Dup => {}
                FrameAction::Execute { seq, class } => {
                    submit_job(Job { seq, class, frame }, &state, &job_tx, stats);
                }
            }
        }
        acceptor_done.store(true, Ordering::Release);
        drop(job_tx);
        // Wake the responder so it observes acceptor_done even if every
        // worker is idle and no completion is pending.
        done_tx.push(Completion::Shutdown);
        drop(done_tx);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CallEngine;
    use crate::queue::QueuePair;
    use crate::wire::Encoder;
    use lake_transport::{Link, Mechanism};
    use std::sync::Arc;
    use std::time::Duration as WallDuration;

    /// Runs per `Keyed(key)` command, concurrent across keys.
    const API_KEYED: ApiId = ApiId(10);
    /// Takes a per-key ordering barrier, like `ml.swap_model`.
    const API_BARRIER: ApiId = ApiId(11);
    /// No ordering constraint at all.
    const API_FREE: ApiId = ApiId(12);

    /// Test handler: payload is `(key, tag, sleep_ms)`; execution logs
    /// `(tag, "start"/"end")` and echoes `key * 3 + 1`.
    struct ClassifiedHandler {
        events: Mutex<Vec<(u64, &'static str)>>,
    }

    impl ClassifiedHandler {
        fn new() -> Arc<Self> {
            Arc::new(ClassifiedHandler { events: Mutex::new(Vec::new()) })
        }

        fn events(&self) -> Vec<(u64, &'static str)> {
            self.events.lock().unwrap().clone()
        }

        fn starts(&self, tag: u64) -> usize {
            self.events().iter().filter(|(t, p)| *t == tag && *p == "start").count()
        }
    }

    impl ApiHandler for ClassifiedHandler {
        fn handle(&self, _api: ApiId, payload: &[u8]) -> Result<Bytes, Status> {
            let mut d = Decoder::new(payload);
            let key = d.get_u64().map_err(|_| Status::Malformed)?;
            let tag = d.get_u64().map_err(|_| Status::Malformed)?;
            let sleep_ms = d.get_u64().map_err(|_| Status::Malformed)?;
            self.events.lock().unwrap().push((tag, "start"));
            if sleep_ms > 0 {
                std::thread::sleep(WallDuration::from_millis(sleep_ms));
            }
            self.events.lock().unwrap().push((tag, "end"));
            let mut e = Encoder::new();
            e.put_u64(key * 3 + 1);
            Ok(e.finish())
        }

        fn classify(&self, api: ApiId, payload: &[u8]) -> CommandClass {
            let mut d = Decoder::new(payload);
            let key = d.get_u64().unwrap_or(0);
            match api {
                API_KEYED => CommandClass::Keyed(key),
                API_BARRIER => CommandClass::KeyedBarrier(key),
                API_FREE => CommandClass::Concurrent,
                _ => CommandClass::Exclusive,
            }
        }
    }

    fn cmd(seq: u64, api: ApiId, key: u64, tag: u64, sleep_ms: u64) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(key).put_u64(tag).put_u64(sleep_ms);
        Command { api, seq, payload: e.finish() }.encode()
    }

    /// Daemon fixture: `serve_executor` on its own thread over a link.
    struct Fixture {
        kernel: lake_transport::LinkEndpoint,
        stats: Arc<ExecutorStats>,
        daemon: Option<std::thread::JoinHandle<()>>,
    }

    impl Fixture {
        fn start(handler: Arc<ClassifiedHandler>, workers: usize) -> Fixture {
            let clock = SharedClock::new();
            let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
            let stats = Arc::new(ExecutorStats::new());
            let daemon = {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    let epoch = AtomicU64::new(0);
                    let counters = PerfCounters::new();
                    serve_executor(
                        &user,
                        handler.as_ref(),
                        &epoch,
                        None,
                        &counters,
                        workers,
                        &stats,
                    );
                })
            };
            Fixture { kernel, stats, daemon: Some(daemon) }
        }

        fn recv_response(&self) -> Response {
            let frame = self.kernel.recv().expect("daemon alive");
            Response::decode(&frame).expect("valid response")
        }

        fn shutdown(mut self) -> Arc<ExecutorStats> {
            let stats = Arc::clone(&self.stats);
            let kernel = self.kernel;
            drop(kernel);
            self.daemon.take().unwrap().join().unwrap();
            stats
        }
    }

    #[test]
    fn independent_keys_complete_out_of_order() {
        let handler = ClassifiedHandler::new();
        let fx = Fixture::start(Arc::clone(&handler), 4);
        // Key 0 is slow; keys 1..8 are instant. With 4 workers the slow
        // command cannot head-of-line-block the others.
        for i in 0..8u64 {
            let sleep = if i == 0 { 150 } else { 0 };
            fx.kernel.send(cmd(i + 1, API_KEYED, i, i, sleep)).unwrap();
        }
        let first = fx.recv_response();
        assert_ne!(first.seq, 1, "slow command must not block fast ones");
        let mut seen = vec![first];
        while seen.len() < 8 {
            seen.push(fx.recv_response());
        }
        for resp in &seen {
            assert_eq!(resp.status, Status::Ok);
            let key = resp.seq - 1;
            let mut d = Decoder::new(&resp.payload);
            assert_eq!(d.get_u64().unwrap(), key * 3 + 1);
        }
        let stats = fx.shutdown();
        let snap = stats.snapshot();
        assert_eq!(snap.frames, 8);
        assert_eq!(snap.executed, 8);
        assert_eq!(snap.completions, 8);
        assert!(snap.inflight_high_water >= 2, "no concurrency observed");
    }

    #[test]
    fn keyed_barrier_orders_against_inflight_and_later_work() {
        let handler = ClassifiedHandler::new();
        let fx = Fixture::start(Arc::clone(&handler), 4);
        // A (keyed, slow) then B (barrier on same key) then C (keyed):
        // B must wait for A, C must wait for B — the hot-swap contract.
        fx.kernel.send(cmd(1, API_KEYED, 7, 100, 60)).unwrap();
        fx.kernel.send(cmd(2, API_BARRIER, 7, 200, 0)).unwrap();
        fx.kernel.send(cmd(3, API_KEYED, 7, 300, 0)).unwrap();
        for _ in 0..3 {
            let r = fx.recv_response();
            assert_eq!(r.status, Status::Ok);
        }
        let events = handler.events();
        let pos =
            |tag, phase| events.iter().position(|e| *e == (tag, phase)).expect("event logged");
        assert!(pos(100, "end") < pos(200, "start"), "barrier overtook in-flight work");
        assert!(pos(200, "end") < pos(300, "start"), "later work overtook the barrier");
        let stats = fx.shutdown();
        assert_eq!(stats.snapshot().barriers, 1);
        assert_eq!(stats.snapshot().deferred, 2);
    }

    #[test]
    fn duplicate_of_inflight_seq_executes_once_answers_twice() {
        let handler = ClassifiedHandler::new();
        let fx = Fixture::start(Arc::clone(&handler), 4);
        let frame = cmd(9, API_KEYED, 1, 500, 80);
        fx.kernel.send(frame.clone()).unwrap();
        // Give the acceptor time to mark seq 9 in-flight, then duplicate.
        std::thread::sleep(WallDuration::from_millis(20));
        fx.kernel.send(frame).unwrap();
        let a = fx.recv_response();
        let b = fx.recv_response();
        assert_eq!(a.seq, 9);
        assert_eq!(b.seq, 9);
        assert_eq!(a.payload, b.payload);
        assert_eq!(handler.starts(500), 1, "duplicate must not re-execute");
        let stats = fx.shutdown();
        assert_eq!(stats.snapshot().dup_inflight, 1);
    }

    #[test]
    fn completed_duplicate_is_replayed_from_cache() {
        let handler = ClassifiedHandler::new();
        let fx = Fixture::start(Arc::clone(&handler), 4);
        let frame = cmd(11, API_KEYED, 2, 600, 0);
        fx.kernel.send(frame.clone()).unwrap();
        let first = fx.recv_response();
        fx.kernel.send(frame).unwrap();
        let second = fx.recv_response();
        assert_eq!(first.payload, second.payload);
        assert_eq!(handler.starts(600), 1);
        let stats = fx.shutdown();
        assert_eq!(stats.snapshot().replays, 1);
    }

    /// Satellite: a retried seq whose dedup entry was trimmed under
    /// pressure re-executes — which is exactly why the *client* engine
    /// only ever retries idempotency-registered APIs (the
    /// `non_idempotent_calls_never_execute_twice` property in the engine
    /// tests); the daemon-side window is a best-effort replay cache, not
    /// the correctness boundary.
    #[test]
    fn evicted_seq_reexecutes_and_is_counted() {
        let handler = ClassifiedHandler::new();
        // workers=1: the serial loop, same sharded table.
        let fx = Fixture::start(Arc::clone(&handler), 1);
        fx.kernel.send(cmd(5, API_KEYED, 3, 700, 0)).unwrap();
        assert_eq!(fx.recv_response().status, Status::Ok);
        // Flood well past the 128-entry window so seq 5's shard trims it.
        for i in 0..160u64 {
            fx.kernel.send(cmd(1000 + i, API_KEYED, 3, 701, 0)).unwrap();
        }
        for _ in 0..160 {
            fx.recv_response();
        }
        fx.kernel.send(cmd(5, API_KEYED, 3, 700, 0)).unwrap();
        assert_eq!(fx.recv_response().status, Status::Ok);
        assert_eq!(handler.starts(700), 2, "evicted retry must re-execute");
        let stats = fx.shutdown();
        assert!(stats.snapshot().dedup_evictions > 0);
    }

    #[test]
    fn dedup_trim_pins_inflight_entries() {
        let table = DedupTable::new();
        // Fill one shard (seqs ≡ 0 mod 8) with in-flight entries.
        for i in 0..(DEDUP_SHARD_CAP as u64 + 4) {
            assert!(matches!(table.begin(i * 8, 0), Admission::Execute { .. }));
        }
        // Every entry is in-flight: nothing is evictable, all replayable
        // once completed.
        for i in 0..(DEDUP_SHARD_CAP as u64 + 4) {
            let resp = Response { seq: i * 8, epoch: 0, status: Status::Ok, payload: Bytes::new() };
            table.complete(i * 8, &resp);
            assert!(table.replay(i * 8, 0).is_some());
        }
    }

    #[test]
    fn stale_epoch_entry_reexecutes_under_new_incarnation() {
        let table = DedupTable::new();
        assert!(matches!(table.begin(1, 0), Admission::Execute { .. }));
        let resp = Response { seq: 1, epoch: 0, status: Status::Ok, payload: Bytes::new() };
        table.complete(1, &resp);
        assert!(matches!(table.begin(1, 0), Admission::Replay(_)));
        // Epoch bumped (daemon restarted): the cached answer is dead.
        assert!(matches!(table.begin(1, 1), Admission::Execute { .. }));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Deterministic per-(seed, i) jitter so every proptest case is a
        /// different interleaving of worker finish times.
        fn jitter_us(seed: u64, i: u64) -> u64 {
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i);
            x ^= x >> 33;
            x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
            (x >> 33) % 400
        }

        struct JitterHandler {
            seed: u64,
        }

        impl ApiHandler for JitterHandler {
            fn handle(&self, _api: ApiId, payload: &[u8]) -> Result<Bytes, Status> {
                let mut d = Decoder::new(payload);
                let key = d.get_u64().map_err(|_| Status::Malformed)?;
                let us = jitter_us(self.seed, key);
                if us > 0 {
                    std::thread::sleep(WallDuration::from_micros(us));
                }
                let mut e = Encoder::new();
                e.put_u64(key.wrapping_mul(3).wrapping_add(1));
                Ok(e.finish())
            }

            fn classify(&self, _api: ApiId, payload: &[u8]) -> CommandClass {
                let mut d = Decoder::new(payload);
                CommandClass::Keyed(d.get_u64().unwrap_or(0))
            }
        }

        proptest! {
            /// Satellite: whatever order the workers finish in, every
            /// submission gets exactly one completion with its own
            /// answer, nothing is lost or duplicated, and the stub-side
            /// pending table stays bounded at the queue depth.
            #[test]
            fn out_of_order_completions_preserve_per_seq_responses(seed in 0u64..10_000) {
                const DEPTH: usize = 64;
                let clock = SharedClock::new();
                let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
                let stats = Arc::new(ExecutorStats::new());
                let daemon = {
                    let stats = Arc::clone(&stats);
                    std::thread::spawn(move || {
                        let epoch = AtomicU64::new(0);
                        let counters = PerfCounters::new();
                        let handler = JitterHandler { seed };
                        serve_executor(&user, &handler, &epoch, None, &counters, 4, &stats);
                    })
                };
                let engine = Arc::new(CallEngine::linked(kernel));
                let qp = QueuePair::new(Arc::clone(&engine), DEPTH);
                let mut expected = std::collections::HashMap::new();
                for i in 0..DEPTH as u64 {
                    let mut e = Encoder::new();
                    e.put_u64(i);
                    let id = qp.submit(ApiId(10), e.finish());
                    // Flush each submission as its own frame so all 64
                    // are genuinely in flight at once and the executor is
                    // free to scramble their completion order.
                    qp.flush();
                    expected.insert(id.0, i.wrapping_mul(3).wrapping_add(1));
                }
                let completions = qp.drain();
                prop_assert_eq!(completions.len(), DEPTH, "lost or duplicated completions");
                let mut seen = std::collections::HashSet::new();
                for c in completions {
                    prop_assert!(seen.insert(c.id.0), "duplicated completion id");
                    let body = c.result.expect("remote error");
                    let mut d = Decoder::new(&body);
                    prop_assert_eq!(d.get_u64().unwrap(), expected[&c.id.0]);
                }
                prop_assert!(engine.stats().pending_high_water <= DEPTH as u64);
                drop(qp);
                drop(engine);
                daemon.join().unwrap();
                let snap = stats.snapshot();
                prop_assert_eq!(snap.executed, DEPTH as u64);
                prop_assert_eq!(snap.completions, DEPTH as u64);
            }
        }
    }
}
