//! Command coalescing: batch small calls into one burst frame.
//!
//! The ring transport makes the per-frame cost (doorbell + wakeup) the
//! dominant term for small commands. A [`Coalescer`] sits in front of a
//! [`CallEngine`] and holds small calls back for a short *virtual-time*
//! window; everything queued inside the window leaves as one
//! [`BURST_API_BIT`](crate::engine::BURST_API_BIT) frame — a single
//! doorbell each way no matter how many commands rode along. Large calls
//! are never held: the staging path already amortizes their cost, and
//! parking a bulk transfer behind a batching window would only add
//! latency.
//!
//! The coalescer is deliberately synchronous: callers enqueue with
//! [`Coalescer::push`] and the batch flushes when the window closes, the
//! batch fills, or [`Coalescer::flush`] is called. That matches how the
//! kernel-side stubs drive the engine — one thread issuing commands in
//! program order — and keeps results trivially attributable.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use lake_sim::{Duration, Instant};

use crate::command::ApiId;
use crate::engine::{CallEngine, RpcError, MAX_BURST_ENTRIES};

/// Default batching window: commands arriving within this much virtual
/// time of the batch opener coalesce into its burst.
pub const DEFAULT_BURST_WINDOW: Duration = Duration::from_micros(50);

/// Default maximum batch size; the batch flushes when it fills even if the
/// window is still open.
pub const DEFAULT_BURST_MAX: usize = 16;

/// Tuning knobs for a [`Coalescer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Virtual-time window measured from the first queued command.
    pub window: Duration,
    /// Flush when this many commands are queued.
    pub max_entries: usize,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy { window: DEFAULT_BURST_WINDOW, max_entries: DEFAULT_BURST_MAX }
    }
}

#[derive(Debug, Default)]
struct Batch {
    entries: Vec<(ApiId, Bytes)>,
    opened_at: Option<Instant>,
}

/// Batches small calls into burst frames over a shared [`CallEngine`].
///
/// A flush returns one result per queued command, in queue order — the
/// same `Vec` shape [`CallEngine::call_burst`] produces.
#[derive(Debug)]
pub struct Coalescer {
    engine: Arc<CallEngine>,
    policy: CoalescePolicy,
    batch: Mutex<Batch>,
}

impl Coalescer {
    /// Creates a coalescer over `engine` with the default policy.
    pub fn new(engine: Arc<CallEngine>) -> Self {
        Self::with_policy(engine, CoalescePolicy::default())
    }

    /// Creates a coalescer with an explicit window / batch-size policy.
    /// `max_entries` is clamped to `1..=`[`MAX_BURST_ENTRIES`].
    pub fn with_policy(engine: Arc<CallEngine>, mut policy: CoalescePolicy) -> Self {
        policy.max_entries = policy.max_entries.clamp(1, MAX_BURST_ENTRIES);
        Coalescer { engine, policy, batch: Mutex::new(Batch::default()) }
    }

    /// The active policy.
    pub fn policy(&self) -> CoalescePolicy {
        self.policy
    }

    /// Commands currently queued and not yet flushed.
    pub fn pending(&self) -> usize {
        self.batch.lock().expect("coalescer poisoned").entries.len()
    }

    /// Queues one command. Returns `Some(results)` — one per queued
    /// command, in queue order, *including this one* — when the push
    /// closed the batch: either the batch filled, or the virtual clock
    /// has moved past the window since the batch opened. Returns `None`
    /// while the batch is still collecting; the caller gets those results
    /// from the closing push or an explicit [`Coalescer::flush`].
    pub fn push(&self, api: ApiId, payload: Bytes) -> Option<Vec<Result<Bytes, RpcError>>> {
        let batch = {
            let mut b = self.batch.lock().expect("coalescer poisoned");
            let now = self.engine.clock().now();
            if b.entries.is_empty() {
                b.opened_at = Some(now);
            }
            b.entries.push((api, payload));
            let window_closed =
                b.opened_at.is_some_and(|opened| now >= opened + self.policy.window);
            if b.entries.len() >= self.policy.max_entries || window_closed {
                std::mem::take(&mut *b)
            } else {
                return None;
            }
        };
        Some(self.engine.call_burst(batch.entries))
    }

    /// Flushes whatever is queued, returning one result per command in
    /// queue order; `None` if nothing was pending.
    pub fn flush(&self) -> Option<Vec<Result<Bytes, RpcError>>> {
        let batch = {
            let mut b = self.batch.lock().expect("coalescer poisoned");
            if b.entries.is_empty() {
                return None;
            }
            std::mem::take(&mut *b)
        };
        Some(self.engine.call_burst(batch.entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Status;
    use crate::engine::ApiHandler;
    use lake_sim::SharedClock;
    use lake_transport::Mechanism;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn echo() -> Arc<dyn ApiHandler> {
        Arc::new(|_: ApiId, payload: &[u8]| -> Result<Bytes, Status> {
            Ok(Bytes::copy_from_slice(payload))
        })
    }

    fn engine() -> Arc<CallEngine> {
        Arc::new(CallEngine::in_process(Mechanism::Mmap, SharedClock::new(), echo()))
    }

    #[test]
    fn batch_flushes_when_full() {
        let engine = engine();
        let c = Coalescer::with_policy(
            engine.clone(),
            CoalescePolicy { window: Duration::from_secs(1), max_entries: 3 },
        );
        assert!(c.push(ApiId(1), Bytes::from_static(b"a")).is_none());
        assert!(c.push(ApiId(1), Bytes::from_static(b"b")).is_none());
        let results = c.push(ApiId(1), Bytes::from_static(b"c")).expect("batch full");
        let got: Vec<_> = results.into_iter().map(|r| r.unwrap()).collect();
        let want =
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"b"), Bytes::from_static(b"c")];
        assert_eq!(got, want);
        assert_eq!(c.pending(), 0);
        let stats = engine.stats();
        assert_eq!(stats.burst_frames, 1);
        assert_eq!(stats.coalesced_commands, 3);
    }

    #[test]
    fn window_expiry_closes_the_batch() {
        let engine = engine();
        let clock = engine.clock().clone();
        let c = Coalescer::with_policy(
            engine,
            CoalescePolicy { window: Duration::from_micros(10), max_entries: 100 },
        );
        assert!(c.push(ApiId(1), Bytes::from_static(b"x")).is_none());
        clock.advance(Duration::from_micros(11));
        let results = c.push(ApiId(1), Bytes::from_static(b"y")).expect("window closed");
        assert_eq!(results.len(), 2);
        assert!(results.into_iter().all(|r| r.is_ok()));
    }

    #[test]
    fn explicit_flush_drains_a_partial_batch() {
        let c = Coalescer::new(engine());
        assert!(c.flush().is_none(), "empty coalescer has nothing to flush");
        assert!(c.push(ApiId(1), Bytes::from_static(b"solo")).is_none());
        let results = c.flush().expect("one pending");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].as_ref().unwrap(), &Bytes::from_static(b"solo"));
    }

    #[test]
    fn burst_preserves_per_entry_failures() {
        let count = Arc::new(AtomicUsize::new(0));
        let counted = count.clone();
        let handler = Arc::new(move |api: ApiId, payload: &[u8]| -> Result<Bytes, Status> {
            counted.fetch_add(1, Ordering::SeqCst);
            if api == ApiId(13) {
                Err(Status::VendorError(13))
            } else {
                Ok(Bytes::copy_from_slice(payload))
            }
        });
        let engine = Arc::new(CallEngine::in_process(Mechanism::Mmap, SharedClock::new(), handler));
        let results = engine.call_burst(vec![
            (ApiId(1), Bytes::from_static(b"ok")),
            (ApiId(13), Bytes::from_static(b"bad")),
            (ApiId(1), Bytes::from_static(b"also ok")),
        ]);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap(), &Bytes::from_static(b"ok"));
        assert_eq!(results[1], Err(RpcError::Remote(Status::VendorError(13))));
        assert_eq!(results[2].as_ref().unwrap(), &Bytes::from_static(b"also ok"));
        assert_eq!(count.load(Ordering::SeqCst), 3, "every entry must execute");
        assert_eq!(engine.stats().burst_frames, 1);
    }
}
