//! The synchronous call path: stub side ([`CallEngine`]) and daemon side
//! ([`serve`]).
//!
//! Two deployment modes mirror how the artifact can be run:
//!
//! * **In-process** — the handler is invoked directly on the caller's
//!   thread with transport costs charged to the virtual clock. This is the
//!   deterministic fast path used by the experiment harnesses.
//! * **Linked** — commands travel over a real [`lake_transport::Link`] to a
//!   daemon thread running [`serve`], exercising actual cross-thread
//!   queueing like the real `lakeD` process.
//!
//! # Fault tolerance
//!
//! The kernel cannot crash because the daemon or the link hiccuped, so the
//! engine hardens the call path:
//!
//! * **Seq-routed responses** — every response is matched to its caller by
//!   sequence number. Responses for *other* in-flight calls are stashed in
//!   a shared routing table instead of being dropped, so pipelined callers
//!   never steal (or lose) each other's replies.
//! * **Virtual-time deadlines** — a lost frame costs the caller
//!   [`CallPolicy::deadline`] of virtual time (the price of discovering the
//!   loss), after which the call is retried or failed with
//!   [`RpcError::TimedOut`].
//! * **Bounded retry with backoff** — APIs registered idempotent (via
//!   [`CallEngine::register_api`]) are retried up to
//!   [`CallPolicy::max_attempts`] times with exponential virtual-time
//!   backoff. Retries reuse the command's sequence number and [`serve`]
//!   deduplicates by seq, so even a retried call executes at most once.
//!   Non-idempotent calls are never retried after the daemon may have
//!   executed them.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use lake_shm::ShmRegion;
use lake_sim::{Duration, FaultPlan, FrameFault, Instant, SharedClock};
use lake_transport::{Channel, Mechanism};

use crate::command::{ApiId, Command, Response, Status, SEQ_UNMATCHED};
use crate::executor::{CommandClass, DedupTable, ExecutorStats};
use crate::perf;
use crate::perf::PerfCounters;
use crate::wire::{Decoder, Encoder, WireError};

/// Payload size (bytes) at which [`CallEngine::call`] switches from inline
/// frames to shm handle-passing, when staging is attached. Calibrated to
/// Fig 6's ~4KB crossover, where memcpy cost starts to dominate the
/// per-message overhead of the Netlink path.
pub const DEFAULT_INLINE_THRESHOLD: usize = 4096;

/// Envelope bit set on an [`ApiId`] whose command payload is an
/// `(offset, len)` descriptor into the staging region rather than the
/// arguments themselves. Real API identifiers are small registry numbers,
/// far below this bit, so the envelope is unambiguous on the wire and the
/// daemon can unwrap it without out-of-band signaling.
pub const STAGED_API_BIT: u32 = 0x8000_0000;

/// Envelope bit set on an [`ApiId`] whose command payload is a *burst*: a
/// count-prefixed sequence of `(api, payload)` entries coalesced into one
/// frame. The daemon unpacks the burst and answers every entry, in order,
/// inside a single response frame — one doorbell each way no matter how
/// many commands rode along. Entries may themselves carry
/// [`STAGED_API_BIT`]; a burst never nests inside another burst.
pub const BURST_API_BIT: u32 = 0x4000_0000;

/// Hard cap on commands per burst frame, bounding daemon-side decode work
/// for a frame that claims an absurd entry count.
pub const MAX_BURST_ENTRIES: usize = 256;

/// Error returned by [`CallEngine::call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The daemon reported a non-OK status.
    Remote(Status),
    /// A frame failed to decode.
    Wire(WireError),
    /// The daemon is gone (link closed).
    Disconnected,
    /// No (valid) response arrived within the call's deadline, and the
    /// call was not eligible for (more) retries.
    TimedOut,
    /// The daemon crashed while this call was in flight and the call is
    /// not idempotent, so it cannot be blindly replayed under the new
    /// incarnation. The carried value is the epoch that died. Callers own
    /// the recovery decision (re-issue, fall back to the CPU path, ...),
    /// exactly as a kernel module must when `lakeD` is restarted.
    DaemonRestarted {
        /// Incarnation epoch the daemon was serving under when it died.
        epoch: u64,
    },
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Remote(s) => write!(f, "remote call failed with status {s:?}"),
            RpcError::Wire(e) => write!(f, "wire error: {e}"),
            RpcError::Disconnected => f.write_str("daemon disconnected"),
            RpcError::TimedOut => f.write_str("call deadline expired (frame lost?)"),
            RpcError::DaemonRestarted { epoch } => {
                write!(f, "daemon incarnation {epoch} died mid-call; state was replayed")
            }
        }
    }
}

/// Kernel-side view of the daemon process's lifecycle, owned by a
/// supervisor (lake-core's `DaemonSupervisor`).
///
/// The engine consults the hook at two points per attempt:
///
/// 1. Before sending — [`DaemonLifecycle::ensure_up`] blocks (in virtual
///    time: detection lease + restart backoff) until the daemon is
///    serving, returning the incarnation epoch the command will execute
///    under. A crash that happened while the stub was idle is detected and
///    recovered *here*, before any command is handed to a dead process.
/// 2. After the handler returns — [`DaemonLifecycle::crashed_between`]
///    reports whether the daemon died inside the request window. If it
///    did, the response was computed by a dead incarnation: the engine
///    discards it (counted in [`CallStats::stale_epochs`]) and either
///    fails the call over to the next incarnation (idempotent APIs,
///    [`CallStats::failed_over`]) or surfaces
///    [`RpcError::DaemonRestarted`].
pub trait DaemonLifecycle: Send + Sync {
    /// The current incarnation epoch (0 = never restarted).
    fn epoch(&self) -> u64;

    /// Ensures the daemon is up, restarting it (and charging virtual
    /// detection/backoff time) if a scheduled crash has already struck.
    /// Returns the epoch the next command will be served under.
    fn ensure_up(&self) -> u64;

    /// Whether the daemon crashed in the virtual-time window
    /// `(start, end]`. Implementations record the crash so the next
    /// [`DaemonLifecycle::ensure_up`] performs the supervised restart.
    fn crashed_between(&self, start: Instant, end: Instant) -> bool;
}

impl std::error::Error for RpcError {}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Wire(e)
    }
}

/// Daemon-side API implementation.
///
/// `lakeD` "deserializes them and executes the requested APIs" (§4) — a
/// handler is the table of those implementations. Handlers are invoked with
/// the decoded command payload and return the encoded response payload.
pub trait ApiHandler: Send + Sync {
    /// Executes `api` with `payload`-encoded arguments.
    ///
    /// # Errors
    ///
    /// Return a non-[`Status::Ok`] status to signal vendor-library failure;
    /// it is forwarded verbatim to the kernel caller.
    fn handle(&self, api: ApiId, payload: &[u8]) -> Result<Bytes, Status>;

    /// Ordering constraint `api` places on the parallel executor
    /// ([`crate::serve_executor`]). `payload` may be truncated to its
    /// first 8 bytes for staged commands, so implementations must only
    /// inspect a fixed-size prefix (the keyed APIs lead with their `u64`
    /// resource id). The default is [`CommandClass::Exclusive`]: a
    /// handler that doesn't classify runs serially even under a worker
    /// pool — degraded parallelism, never a data race.
    fn classify(&self, api: ApiId, payload: &[u8]) -> CommandClass {
        let _ = (api, payload);
        CommandClass::Exclusive
    }
}

impl<F> ApiHandler for F
where
    F: Fn(ApiId, &[u8]) -> Result<Bytes, Status> + Send + Sync,
{
    fn handle(&self, api: ApiId, payload: &[u8]) -> Result<Bytes, Status> {
        self(api, payload)
    }
}

/// Per-call robustness policy: how long a caller waits on a lost frame and
/// how hard it retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallPolicy {
    /// Virtual time charged to the caller when an attempt's response never
    /// arrives (the cost of discovering the loss).
    pub deadline: Duration,
    /// Total send attempts per call (1 = no retries). Only idempotent APIs
    /// — and commands the daemon provably never executed — use attempts
    /// beyond the first.
    pub max_attempts: u32,
    /// Base retry backoff, doubling per attempt (virtual time).
    pub backoff: Duration,
    /// Linked mode only: real (wall-clock) silence after which an attempt
    /// is declared lost. `None` disables loss detection — `call` waits
    /// forever, the pre-hardening behaviour — and is the default, so a
    /// daemon doing real multi-second work is never misdiagnosed.
    pub recv_patience: Option<std::time::Duration>,
}

impl Default for CallPolicy {
    fn default() -> Self {
        CallPolicy {
            deadline: Duration::from_millis(2),
            max_attempts: 4,
            backoff: Duration::from_micros(50),
            recv_patience: None,
        }
    }
}

impl CallPolicy {
    fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff * (1u64 << attempt.saturating_sub(1).min(10))
    }
}

/// Aggregate statistics about remoted calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallStats {
    /// Total remoted calls issued.
    pub calls: u64,
    /// Total command bytes sent.
    pub bytes_sent: u64,
    /// Total response bytes received.
    pub bytes_received: u64,
    /// Calls that returned a non-OK status.
    pub failures: u64,
    /// Attempts re-sent after a lost or corrupted exchange.
    pub retries: u64,
    /// Attempts whose response never arrived within the deadline.
    pub timeouts: u64,
    /// Received frames that failed to decode or could not be attributed.
    pub corrupt_frames: u64,
    /// Responses discarded because they carried a dead incarnation's
    /// epoch (computed before a crash, delivered after). None of these
    /// ever reached a caller.
    pub stale_epochs: u64,
    /// Idempotent attempts replayed under a *new* daemon incarnation
    /// after a crash severed the previous attempt.
    pub failed_over: u64,
    /// Calls that surfaced [`RpcError::DaemonRestarted`] because the
    /// daemon died mid-call and the API was not safe to replay.
    pub daemon_restarts: u64,
    /// Calls whose payload traveled through the shm staging region as an
    /// `(offset, len)` descriptor instead of inline frame bytes.
    pub staged_calls: u64,
    /// Burst frames sent: each one carried 2+ coalesced commands across
    /// the link under a single doorbell.
    pub burst_frames: u64,
    /// Commands that rode inside burst frames instead of paying their own
    /// frame + doorbell.
    pub coalesced_commands: u64,
    /// High-water mark of the seq-routed pending table: the most responses
    /// ever parked for other callers at once. Bounded by the number of
    /// concurrently waiting callers — growth past that is exactly the leak
    /// this stat exists to catch.
    pub pending_high_water: u64,
    /// Routed responses dropped or swept because no caller was registered
    /// as waiting on their seq (late answers to abandoned attempts).
    /// Before the sweep these accumulated in the pending table forever.
    pub pending_expired: u64,
}

/// Shm staging attached to a [`CallEngine`]: payloads at least `threshold`
/// bytes long bypass the inline frame path and travel as descriptors into
/// `region` (LAKE's lakeShm handle-passing).
#[derive(Debug, Clone)]
pub struct StagingConfig {
    /// Region shared between the stub and the daemon ("the kernel and the
    /// daemon mapping the same physical pages").
    pub region: ShmRegion,
    /// Inline/shm cutover in bytes; see [`DEFAULT_INLINE_THRESHOLD`].
    pub threshold: usize,
}

pub(crate) enum Mode {
    InProcess(Arc<dyn ApiHandler>),
    Linked(Box<dyn Channel>),
}

impl fmt::Debug for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::InProcess(_) => f.write_str("InProcess"),
            Mode::Linked(_) => f.write_str("Linked"),
        }
    }
}

/// How often a waiting linked-mode caller re-checks the shared routing
/// table for a response another caller received on its behalf.
pub(crate) const ROUTE_POLL: std::time::Duration = std::time::Duration::from_millis(1);

/// The stub side of LAKE's remoting: serialize, transmit, wait (§4.1).
pub struct CallEngine {
    mechanism: Mechanism,
    pub(crate) clock: SharedClock,
    pub(crate) mode: Mode,
    pub(crate) policy: CallPolicy,
    faults: Option<Arc<FaultPlan>>,
    /// Supervisor hook: crash detection and supervised restart. `None`
    /// models an unsupervised daemon that never dies (the pre-PR-3 world).
    pub(crate) lifecycle: Option<Arc<dyn DaemonLifecycle>>,
    /// Epoch high-water mark: once a response from epoch N is accepted, any
    /// response stamped with an epoch < N is a stale incarnation's answer
    /// and is discarded instead of delivered.
    pub(crate) epoch_floor: AtomicU64,
    /// Shm staging for large payloads; `None` keeps every payload inline
    /// (the pre-fast-path behaviour).
    staging: Option<StagingConfig>,
    /// Copy accounting attributed to this engine. Shared (via
    /// [`CallEngine::with_perf`]) with the daemon-side serve loop so one
    /// deployment's stub and daemon copies land in one counter set; every
    /// bump also feeds the process-wide rollup in [`perf`].
    pub(crate) perf: Arc<PerfCounters>,
    /// APIs flagged idempotent at registration; only they survive a retry
    /// after the daemon may have executed the command.
    idempotent: Mutex<HashSet<u32>>,
    /// Responses received by one caller on behalf of another (seq-routed).
    /// Entries exist only for seqs registered in `waiters`; see
    /// [`CallEngine::route_response`].
    pending: Mutex<HashMap<u64, Response>>,
    /// Seqs with a live caller (sync waiter or queue-pair in-flight frame).
    /// Responses routed to any other seq are expired, not stashed — the
    /// pending-table leak fix.
    waiters: Mutex<HashSet<u64>>,
    pub(crate) next_seq: AtomicU64,
    pub(crate) calls: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    pub(crate) failures: AtomicU64,
    retries: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) corrupt_frames: AtomicU64,
    pub(crate) stale_epochs: AtomicU64,
    pub(crate) failed_over: AtomicU64,
    pub(crate) daemon_restarts: AtomicU64,
    staged_calls: AtomicU64,
    pub(crate) burst_frames: AtomicU64,
    pub(crate) coalesced_commands: AtomicU64,
    pending_high_water: AtomicU64,
    pending_expired: AtomicU64,
}

impl fmt::Debug for CallEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CallEngine")
            .field("mechanism", &self.mechanism)
            .field("mode", &self.mode)
            .field("policy", &self.policy)
            .field("supervised", &self.lifecycle.is_some())
            .field("staged", &self.staging.is_some())
            .finish_non_exhaustive()
    }
}

impl CallEngine {
    /// Creates an engine that dispatches directly to `handler` on the
    /// calling thread, charging `mechanism` costs to `clock`.
    pub fn in_process(
        mechanism: Mechanism,
        clock: SharedClock,
        handler: Arc<dyn ApiHandler>,
    ) -> Self {
        Self::build(mechanism, clock, Mode::InProcess(handler))
    }

    /// Creates an engine that sends commands over `endpoint` to a daemon
    /// thread running [`serve`]. The endpoint's mechanism and clock are
    /// reused for cost accounting. Any [`Channel`] works: the crossbeam
    /// `LinkEndpoint` or the lock-free shm `RingEndpoint`.
    pub fn linked(endpoint: impl Channel + 'static) -> Self {
        let mechanism = endpoint.mechanism();
        let clock = endpoint.clock().clone();
        Self::build(mechanism, clock, Mode::Linked(Box::new(endpoint)))
    }

    fn build(mechanism: Mechanism, clock: SharedClock, mode: Mode) -> Self {
        CallEngine {
            mechanism,
            clock,
            mode,
            policy: CallPolicy::default(),
            faults: None,
            lifecycle: None,
            staging: None,
            perf: Arc::new(PerfCounters::new()),
            epoch_floor: AtomicU64::new(0),
            idempotent: Mutex::new(HashSet::new()),
            pending: Mutex::new(HashMap::new()),
            waiters: Mutex::new(HashSet::new()),
            next_seq: AtomicU64::new(1),
            calls: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(0),
            stale_epochs: AtomicU64::new(0),
            failed_over: AtomicU64::new(0),
            daemon_restarts: AtomicU64::new(0),
            staged_calls: AtomicU64::new(0),
            burst_frames: AtomicU64::new(0),
            coalesced_commands: AtomicU64::new(0),
            pending_high_water: AtomicU64::new(0),
            pending_expired: AtomicU64::new(0),
        }
    }

    /// Overrides the default [`CallPolicy`].
    pub fn with_policy(mut self, policy: CallPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Injects `plan`'s frame faults on the in-process path (drop /
    /// corrupt / delay per direction). Linked mode injects at the link
    /// itself instead — see `Link::pair_with_faults`.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches a daemon-lifecycle supervisor: crash detection, epoch
    /// fencing, and supervised restart on the call path.
    pub fn with_lifecycle(mut self, lifecycle: Arc<dyn DaemonLifecycle>) -> Self {
        self.lifecycle = Some(lifecycle);
        self
    }

    /// Attaches a shm staging region: payloads at least `threshold` bytes
    /// long travel as `(offset, len)` descriptors into `region` instead of
    /// inline frame bytes — LAKE's lakeShm handle-passing, with the default
    /// cutover at Fig 6's ~4KB crossover ([`DEFAULT_INLINE_THRESHOLD`]).
    ///
    /// The daemon side must resolve descriptors against (a clone of) the
    /// same region: in-process engines unwrap internally, linked daemons
    /// run [`serve_with_staging`]. Handlers must not re-enter the staging
    /// region — the staged view is borrowed under the region lock.
    pub fn with_staging(mut self, region: ShmRegion, threshold: usize) -> Self {
        self.staging = Some(StagingConfig { region, threshold });
        self
    }

    /// Replaces this engine's copy-accounting counters with `counters`,
    /// typically shared with the daemon thread serving the other end of
    /// the link ([`serve_engine`]) so both halves of one deployment report
    /// through a single per-engine set.
    pub fn with_perf(mut self, counters: Arc<PerfCounters>) -> Self {
        self.perf = counters;
        self
    }

    /// This engine's copy-accounting counters.
    pub fn perf_counters(&self) -> &Arc<PerfCounters> {
        &self.perf
    }

    /// Registers an API's idempotency flag. Unregistered APIs default to
    /// non-idempotent (never retried once the daemon may have executed
    /// them).
    pub fn register_api(&self, api: ApiId, idempotent: bool) {
        let mut set = self.idempotent.lock().expect("idempotency registry poisoned");
        if idempotent {
            set.insert(api.0);
        } else {
            set.remove(&api.0);
        }
    }

    /// Whether `api` was registered idempotent. The staged/burst envelope
    /// bits are masked off: idempotency is a property of the API, not the
    /// transport encoding of one particular call.
    pub fn is_idempotent(&self, api: ApiId) -> bool {
        self.idempotent
            .lock()
            .expect("idempotency registry poisoned")
            .contains(&(api.0 & !(STAGED_API_BIT | BURST_API_BIT)))
    }

    /// The active call policy.
    pub fn policy(&self) -> CallPolicy {
        self.policy
    }

    /// The channel mechanism in use.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// The virtual clock charged by calls.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Issues a remoted API call and waits for its response payload.
    ///
    /// Cost accounting (in-process mode): the caller's clock advances by
    /// the mechanism round-trip for `max(command, response)` frame size,
    /// split around the handler execution — which itself may advance the
    /// clock (GPU time, daemon compute). Lost frames additionally charge
    /// [`CallPolicy::deadline`] per attempt, plus retry backoff.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError::Remote`] when the daemon reports failure,
    /// [`RpcError::Wire`] on framing corruption, [`RpcError::Disconnected`]
    /// if the daemon thread is gone, and [`RpcError::TimedOut`] when a
    /// frame was lost and the call could not be (further) retried.
    pub fn call(&self, api: ApiId, payload: Bytes) -> Result<Bytes, RpcError> {
        if self.staging.as_ref().is_some_and(|s| payload.len() >= s.threshold) {
            let n = payload.len();
            // The payload already exists in caller memory, so staging it
            // costs one real memcpy into shm — still a win: the inline
            // path pays (at least) encode + retry-clone copies per send.
            let staged = self.try_call_staged(api, n, &|dst: &mut [u8]| {
                dst.copy_from_slice(&payload);
                self.perf.note_copy(n);
            });
            if let Some(result) = staged {
                return result;
            }
            // Staging full: fall through to the inline path.
        }
        self.call_inline(api, payload)
    }

    /// Issues a remoted call whose payload is written *directly* into the
    /// shm staging buffer by `fill` — the producer's only write is the
    /// final resting place, so a large payload crosses the boundary with
    /// zero memcpys (the command carries a 16-byte descriptor).
    ///
    /// Falls back to materializing the payload and calling inline when no
    /// staging region is attached, `len` is below the threshold, or the
    /// region is full. `fill` may be invoked once per fallback too, always
    /// with a slice of exactly `len` bytes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CallEngine::call`].
    pub fn call_zero_copy(
        &self,
        api: ApiId,
        len: usize,
        fill: impl Fn(&mut [u8]),
    ) -> Result<Bytes, RpcError> {
        if self.staging.as_ref().is_some_and(|s| len >= s.threshold) {
            if let Some(result) = self.try_call_staged(api, len, &fill) {
                return result;
            }
        }
        let mut buf = vec![0u8; len];
        fill(&mut buf);
        self.perf.note_copy(len);
        self.call_inline(api, Bytes::from(buf))
    }

    /// Coalesces `entries` into as few frames as possible and returns one
    /// result per entry, in order: entries at or above the staging
    /// threshold keep the shm handle-passing path (their payload should
    /// not be inlined into a burst frame), lone small entries go out as a
    /// plain call, and two or more small entries travel together in a
    /// single [`BURST_API_BIT`] frame — one doorbell each way for the
    /// whole batch. The burst is retried as a unit, and only when *every*
    /// entry's API is registered idempotent.
    pub fn call_burst(&self, entries: Vec<(ApiId, Bytes)>) -> Vec<Result<Bytes, RpcError>> {
        let threshold =
            self.staging.as_ref().map(|s| s.threshold).unwrap_or(DEFAULT_INLINE_THRESHOLD);
        let mut results: Vec<Option<Result<Bytes, RpcError>>> =
            entries.iter().map(|_| None).collect();
        let mut small: Vec<(usize, ApiId, Bytes)> = Vec::new();
        for (i, (api, payload)) in entries.into_iter().enumerate() {
            if payload.len() >= threshold {
                results[i] = Some(self.call(api, payload));
            } else {
                small.push((i, api, payload));
            }
        }
        if small.len() == 1 {
            let (i, api, payload) = small.pop().expect("one entry");
            results[i] = Some(self.call(api, payload));
        }
        for chunk in small.chunks(MAX_BURST_ENTRIES).filter(|c| !c.is_empty()) {
            let idempotent = chunk.iter().all(|(_, api, _)| self.is_idempotent(*api));
            let mut e = Encoder::new();
            e.put_u32(chunk.len() as u32);
            for (_, api, payload) in chunk {
                e.put_u32(api.0);
                e.put_bytes(payload);
            }
            self.burst_frames.fetch_add(1, Ordering::Relaxed);
            self.coalesced_commands.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            match self
                .call_framed(ApiId(BURST_API_BIT), e.finish(), idempotent)
                .and_then(|body| decode_burst_response(&body, chunk.len()))
            {
                Ok(per_entry) => {
                    for ((i, _, _), result) in chunk.iter().zip(per_entry) {
                        results[*i] = Some(result.map_err(|status| {
                            self.failures.fetch_add(1, Ordering::Relaxed);
                            RpcError::Remote(status)
                        }));
                    }
                }
                Err(err) => {
                    // The whole frame failed: every rider shares the fate.
                    for (i, _, _) in chunk {
                        results[*i] = Some(Err(err.clone()));
                    }
                }
            }
        }
        results.into_iter().map(|r| r.expect("every entry answered")).collect()
    }

    fn call_inline(&self, api: ApiId, payload: Bytes) -> Result<Bytes, RpcError> {
        self.call_framed(api, payload, self.is_idempotent(api))
    }

    pub(crate) fn call_framed(
        &self,
        api: ApiId,
        payload: Bytes,
        idempotent: bool,
    ) -> Result<Bytes, RpcError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let cmd = Command { api, seq, payload };
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(cmd.encoded_len() as u64, Ordering::Relaxed);
        self.dispatch_mode(&cmd, idempotent)
    }

    fn dispatch_mode(&self, cmd: &Command, idempotent: bool) -> Result<Bytes, RpcError> {
        match &self.mode {
            Mode::InProcess(handler) => self.call_in_process(&handler.clone(), cmd, idempotent),
            Mode::Linked(endpoint) => self.call_linked(endpoint.as_ref(), cmd, idempotent),
        }
    }

    /// Stages `len` bytes into the shm region and issues the enveloped
    /// descriptor call. Returns `None` (caller falls back to inline) when
    /// no staging is attached or the region can't fit the payload.
    fn try_call_staged(
        &self,
        api: ApiId,
        len: usize,
        fill: &dyn Fn(&mut [u8]),
    ) -> Option<Result<Bytes, RpcError>> {
        let staging = self.staging.as_ref()?;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Owner-tagged with the call's seq: if this request dies with its
        // daemon, the reclamation sweep can attribute and free the buffer.
        let buf = staging.region.alloc_owned(len.max(1), seq).ok()?;
        if staging.region.with_bytes_mut(&buf, |dst| fill(&mut dst[..len])).is_err() {
            let _ = staging.region.free(buf);
            return None;
        }
        let mut e = Encoder::new();
        e.put_u64(buf.offset() as u64).put_u64(len as u64);
        let cmd = Command { api: ApiId(api.0 | STAGED_API_BIT), seq, payload: e.finish() };
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.staged_calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(cmd.encoded_len() as u64, Ordering::Relaxed);
        let idempotent = self.is_idempotent(api);
        let result = self.dispatch_mode(&cmd, idempotent);
        match &result {
            // The daemon (or its restarted successor replaying a late
            // frame) may still read the staged bytes: orphan the buffer
            // for the next reclamation sweep instead of freeing it out
            // from under a potential reader.
            Err(RpcError::DaemonRestarted { .. }) | Err(RpcError::TimedOut) => {
                let _ = staging.region.mark_orphan(&buf);
            }
            _ => {
                let _ = staging.region.free(buf);
            }
        }
        Some(result)
    }

    fn call_in_process(
        &self,
        handler: &Arc<dyn ApiHandler>,
        cmd: &Command,
        idempotent: bool,
    ) -> Result<Bytes, RpcError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // Supervised restart first: a crash that struck while the stub
            // was idle (or during the previous attempt) is detected and
            // recovered here, charging lease + backoff virtual time, so no
            // command is ever handed to a dead incarnation.
            let serving_epoch = match &self.lifecycle {
                Some(l) => l.ensure_up(),
                None => 0,
            };
            let sent_at = self.clock.now();
            // Outbound: call time + half the payload round trip.
            self.clock.advance(self.mechanism.call_time());
            self.clock.advance(self.mechanism.one_way(cmd.encoded_len()));

            // Command-direction fault?
            if let Some(plan) = &self.faults {
                match plan.next_frame_fault() {
                    FrameFault::Deliver | FrameFault::Duplicate => {}
                    FrameFault::Delay(extra) => {
                        self.clock.advance(extra);
                    }
                    FrameFault::Drop => {
                        // Command lost: the daemon never saw it, but the
                        // caller can't distinguish this from a lost
                        // response, so only idempotent calls retry.
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.clock.advance(self.policy.deadline);
                        if idempotent && attempt < self.policy.max_attempts {
                            self.retry_backoff(attempt);
                            continue;
                        }
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        return Err(RpcError::TimedOut);
                    }
                    FrameFault::Corrupt { .. } => {
                        // The daemon rejects the garbled frame with a
                        // Malformed response (seq recovered from the
                        // header). It never executed, so any API may
                        // safely retry.
                        self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                        let nak = Response {
                            seq: cmd.seq,
                            epoch: serving_epoch,
                            status: Status::Malformed,
                            payload: Bytes::new(),
                        };
                        self.clock.advance(self.mechanism.one_way(nak.encoded_len()));
                        if attempt < self.policy.max_attempts {
                            self.retry_backoff(attempt);
                            continue;
                        }
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        return Err(RpcError::Remote(Status::Malformed));
                    }
                }
            }

            let result = dispatch(
                handler.as_ref(),
                self.staging.as_ref().map(|s| &s.region),
                Some(&self.perf),
                cmd.api,
                &cmd.payload,
            );
            let response = match result {
                Ok(bytes) => Response {
                    seq: cmd.seq,
                    epoch: serving_epoch,
                    status: Status::Ok,
                    payload: bytes,
                },
                Err(status) => {
                    Response { seq: cmd.seq, epoch: serving_epoch, status, payload: Bytes::new() }
                }
            };

            // Did the daemon die inside this request's window? If so the
            // response above was computed by a dead incarnation: it is
            // fenced out (never delivered), the caller eats the deadline
            // discovering the silence, and the call either fails over to
            // the next incarnation (idempotent — the supervisor restarts
            // and replays registrations in `ensure_up` at the top of the
            // next attempt) or surfaces the typed restart error.
            if let Some(l) = &self.lifecycle {
                if l.crashed_between(sent_at, self.clock.now()) {
                    self.stale_epochs.fetch_add(1, Ordering::Relaxed);
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.clock.advance(self.policy.deadline);
                    if idempotent && attempt < self.policy.max_attempts {
                        self.failed_over.fetch_add(1, Ordering::Relaxed);
                        self.retry_backoff(attempt);
                        continue;
                    }
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    self.daemon_restarts.fetch_add(1, Ordering::Relaxed);
                    return Err(RpcError::DaemonRestarted { epoch: serving_epoch });
                }
            }

            // Response-direction fault? The handler has executed by now,
            // so only idempotent calls may retry.
            if let Some(plan) = &self.faults {
                match plan.next_frame_fault() {
                    FrameFault::Deliver | FrameFault::Duplicate => {}
                    FrameFault::Delay(extra) => {
                        self.clock.advance(extra);
                    }
                    FrameFault::Drop | FrameFault::Corrupt { .. } => {
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.clock.advance(self.policy.deadline);
                        if idempotent && attempt < self.policy.max_attempts {
                            self.retry_backoff(attempt);
                            continue;
                        }
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        return Err(RpcError::TimedOut);
                    }
                }
            }

            // Inbound: half the response round trip.
            self.clock.advance(self.mechanism.one_way(response.encoded_len()));
            self.epoch_floor.fetch_max(response.epoch, Ordering::Relaxed);
            self.bytes_received.fetch_add(response.encoded_len() as u64, Ordering::Relaxed);
            return if response.status.is_ok() {
                Ok(response.payload)
            } else {
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(RpcError::Remote(response.status))
            };
        }
    }

    fn call_linked(
        &self,
        endpoint: &dyn Channel,
        cmd: &Command,
        idempotent: bool,
    ) -> Result<Bytes, RpcError> {
        let frame = cmd.encode();
        let seq = cmd.seq;
        // Registered for the whole call (across retries — they reuse the
        // seq); dropping the guard expires any unclaimed stashed response.
        let _waiter = SeqWaiter::register(self, seq);
        let mut attempt = 0u32;
        'attempts: loop {
            attempt += 1;
            // Supervised restart first, exactly as in-process: a crash that
            // struck while the stub was idle (or during the previous
            // attempt) is detected and recovered before any frame is
            // handed to a dead incarnation.
            let serving_epoch = match &self.lifecycle {
                Some(l) => l.ensure_up(),
                None => 0,
            };
            let sent_at = self.clock.now();
            // The link consumes its frame; each (re)send clones the
            // retry buffer.
            self.perf.note_copy(frame.len());
            endpoint.send(frame.clone()).map_err(|_| RpcError::Disconnected)?;
            let mut waited = std::time::Duration::ZERO;
            let resp = loop {
                // A response for us may have been received (and stashed)
                // by another in-flight caller.
                if let Some(resp) = self.take_routed(seq) {
                    if self.is_stale_epoch(&resp) {
                        // Fenced: a dead incarnation's answer surfaced from
                        // the routing table. Keep waiting for a live one.
                        self.stale_epochs.fetch_add(1, Ordering::Relaxed);
                    } else {
                        break resp;
                    }
                }
                match endpoint.recv_timeout(ROUTE_POLL) {
                    Err(_) => return Err(RpcError::Disconnected),
                    Ok(None) => {
                        waited += ROUTE_POLL;
                        let Some(patience) = self.policy.recv_patience else { continue };
                        if waited < patience {
                            continue;
                        }
                        // Real-time silence: the attempt is lost. Charge
                        // the virtual deadline, expire orphaned stashes,
                        // and retry if safe.
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.clock.advance(self.policy.deadline);
                        self.sweep_pending();
                        if idempotent && attempt < self.policy.max_attempts {
                            self.retry_backoff(attempt);
                            continue 'attempts;
                        }
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        return Err(RpcError::TimedOut);
                    }
                    Ok(Some(raw)) => match Response::decode(&raw) {
                        Err(_) => {
                            // A garbled frame for *someone*; if it was ours
                            // the patience timer will catch the loss.
                            self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(resp) if self.is_stale_epoch(&resp) => {
                            // A dead incarnation's answer arrived after its
                            // successor already spoke: fence it out. If it
                            // was ours, the patience timer declares the
                            // attempt lost and retries under the new epoch.
                            self.stale_epochs.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(resp) if resp.seq == seq => {
                            if resp.status == Status::Malformed {
                                // The daemon could not decode our command
                                // (corrupted in flight) — it never
                                // executed, so any API may retry without a
                                // crash check (there is nothing to replay).
                                self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                                if attempt < self.policy.max_attempts {
                                    self.retry_backoff(attempt);
                                    continue 'attempts;
                                }
                                return self.finish_response(resp);
                            }
                            break resp;
                        }
                        Ok(resp) if resp.seq == SEQ_UNMATCHED => {
                            // The daemon couldn't attribute some frame;
                            // if it was ours, patience expires below.
                            self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(resp) => {
                            // Another caller's response: route it — unless
                            // its caller already gave up, in which case
                            // stashing it would be the leak.
                            self.route_response(resp);
                        }
                    },
                }
            };
            // Did the daemon die inside this request's window? Then the
            // response was computed by a dead incarnation: fence it out
            // (never delivered), charge the deadline for discovering the
            // silence, and either fail over to the next incarnation
            // (idempotent — ensure_up restarts at the top of the next
            // attempt) or surface the typed restart error. Mirrors the
            // in-process accounting exactly.
            if let Some(l) = &self.lifecycle {
                if l.crashed_between(sent_at, self.clock.now()) {
                    self.stale_epochs.fetch_add(1, Ordering::Relaxed);
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.clock.advance(self.policy.deadline);
                    if idempotent && attempt < self.policy.max_attempts {
                        self.failed_over.fetch_add(1, Ordering::Relaxed);
                        self.retry_backoff(attempt);
                        continue 'attempts;
                    }
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    self.daemon_restarts.fetch_add(1, Ordering::Relaxed);
                    return Err(RpcError::DaemonRestarted { epoch: serving_epoch });
                }
            }
            return self.finish_response(resp);
        }
    }

    /// Registers `seq` as having a live caller: only registered seqs may
    /// have responses stashed for them in the pending table.
    pub(crate) fn register_waiter(&self, seq: u64) {
        self.waiters.lock().expect("waiter registry poisoned").insert(seq);
    }

    /// Deregisters `seq` and expires any response still stashed for it —
    /// the caller is gone (answered, gave up, or failed over), so keeping
    /// the entry would be the leak.
    pub(crate) fn deregister_waiter(&self, seq: u64) {
        self.waiters.lock().expect("waiter registry poisoned").remove(&seq);
        if self.pending.lock().expect("response router poisoned").remove(&seq).is_some() {
            self.pending_expired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Stashes a response received on behalf of another caller — but only
    /// when that caller is still registered as waiting. Late answers to
    /// abandoned seqs (the caller timed out, failed over, or was already
    /// satisfied by a retry) are counted and dropped instead of
    /// accumulating forever; with [`CallEngine::deregister_waiter`]'s
    /// drop-time expiry this bounds the table by the number of concurrent
    /// callers, which `pending_high_water` makes observable.
    pub(crate) fn route_response(&self, resp: Response) {
        let waiting = self.waiters.lock().expect("waiter registry poisoned").contains(&resp.seq);
        if !waiting {
            self.pending_expired.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut pending = self.pending.lock().expect("response router poisoned");
        pending.insert(resp.seq, resp);
        self.pending_high_water.fetch_max(pending.len() as u64, Ordering::Relaxed);
    }

    /// Takes the response another caller stashed for `seq`, if any.
    pub(crate) fn take_routed(&self, seq: u64) -> Option<Response> {
        self.pending.lock().expect("response router poisoned").remove(&seq)
    }

    /// Responses currently parked in the pending table (test hook: the
    /// live gauge behind the `pending_high_water` stat).
    #[cfg(test)]
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.lock().expect("response router poisoned").len()
    }

    /// Expires every stashed response whose waiter has deregistered.
    /// Called on the deadline-expiry paths — the moment a caller discovers
    /// silence is when the table is most likely to hold orphans (the
    /// waiter-gating in [`CallEngine::route_response`] makes this a
    /// belt-and-braces sweep rather than the only defense).
    pub(crate) fn sweep_pending(&self) {
        let waiters = self.waiters.lock().expect("waiter registry poisoned");
        let mut pending = self.pending.lock().expect("response router poisoned");
        let before = pending.len();
        pending.retain(|seq, _| waiters.contains(seq));
        self.pending_expired.fetch_add((before - pending.len()) as u64, Ordering::Relaxed);
    }

    /// Whether `resp` was stamped by an incarnation older than the newest
    /// one this engine has heard from (or the supervisor's current epoch,
    /// when a lifecycle hook is attached).
    pub(crate) fn is_stale_epoch(&self, resp: &Response) -> bool {
        if let Some(l) = &self.lifecycle {
            self.epoch_floor.fetch_max(l.epoch(), Ordering::Relaxed);
        }
        resp.epoch < self.epoch_floor.load(Ordering::Relaxed)
    }

    pub(crate) fn finish_response(&self, response: Response) -> Result<Bytes, RpcError> {
        self.epoch_floor.fetch_max(response.epoch, Ordering::Relaxed);
        self.bytes_received.fetch_add(response.encoded_len() as u64, Ordering::Relaxed);
        if response.status.is_ok() {
            Ok(response.payload)
        } else {
            self.failures.fetch_add(1, Ordering::Relaxed);
            Err(RpcError::Remote(response.status))
        }
    }

    pub(crate) fn retry_backoff(&self, attempt: u32) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.clock.advance(self.policy.backoff_for(attempt));
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CallStats {
        CallStats {
            calls: self.calls.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            stale_epochs: self.stale_epochs.load(Ordering::Relaxed),
            failed_over: self.failed_over.load(Ordering::Relaxed),
            daemon_restarts: self.daemon_restarts.load(Ordering::Relaxed),
            staged_calls: self.staged_calls.load(Ordering::Relaxed),
            burst_frames: self.burst_frames.load(Ordering::Relaxed),
            coalesced_commands: self.coalesced_commands.load(Ordering::Relaxed),
            pending_high_water: self.pending_high_water.load(Ordering::Relaxed),
            pending_expired: self.pending_expired.load(Ordering::Relaxed),
        }
    }
}

/// RAII registration of a caller actively waiting on a seq: responses are
/// only stashed for registered waiters, and deregistration (drop) expires
/// any unclaimed stash — together the two halves of the pending-table leak
/// fix. Queue pairs, whose in-flight seqs outlive any single stack frame,
/// use [`CallEngine::register_waiter`]/[`CallEngine::deregister_waiter`]
/// directly.
struct SeqWaiter<'a> {
    engine: &'a CallEngine,
    seq: u64,
}

impl<'a> SeqWaiter<'a> {
    fn register(engine: &'a CallEngine, seq: u64) -> Self {
        engine.register_waiter(seq);
        SeqWaiter { engine, seq }
    }
}

impl Drop for SeqWaiter<'_> {
    fn drop(&mut self) {
        self.engine.deregister_waiter(self.seq);
    }
}

/// Unwraps a possibly-staged command and dispatches it to `handler`:
/// staged commands ([`STAGED_API_BIT`] set) carry an `(offset, len)`
/// descriptor into `staging`, and the handler executes against a borrowed
/// view of the staged bytes — the payload itself never crossed the link
/// and is not copied here either.
pub(crate) fn dispatch(
    handler: &dyn ApiHandler,
    staging: Option<&ShmRegion>,
    counters: Option<&PerfCounters>,
    api: ApiId,
    payload: &[u8],
) -> Result<Bytes, Status> {
    if api.0 & BURST_API_BIT != 0 {
        return dispatch_burst(handler, staging, counters, payload);
    }
    if api.0 & STAGED_API_BIT == 0 {
        return handler.handle(api, payload);
    }
    let Some(region) = staging else {
        // A staged command reached a daemon with no region attached: the
        // descriptor is meaningless here, reject instead of guessing.
        return Err(Status::Malformed);
    };
    let real = ApiId(api.0 & !STAGED_API_BIT);
    let mut d = Decoder::new(payload);
    let (offset, len) = match (d.get_u64(), d.get_u64()) {
        (Ok(o), Ok(l)) => (o as usize, l as usize),
        _ => return Err(Status::Malformed),
    };
    let Ok(buf) = region.resolve(offset) else {
        return Err(Status::Malformed);
    };
    if len > buf.len() {
        return Err(Status::Malformed);
    }
    region
        .with_bytes(&buf, |bytes| {
            match counters {
                Some(c) => c.note_zero_copy(len),
                None => perf::note_zero_copy(len),
            }
            handler.handle(real, &bytes[..len])
        })
        .unwrap_or(Err(Status::Malformed))
}

/// Unpacks a [`BURST_API_BIT`] frame and answers every entry in order.
///
/// Per-entry failures become per-entry statuses inside the burst response
/// body — the burst itself succeeds, so one bad rider never poisons its
/// batch. Entries may be staged (the recursion into [`dispatch`] unwraps
/// them); a burst inside a burst is malformed.
fn dispatch_burst(
    handler: &dyn ApiHandler,
    staging: Option<&ShmRegion>,
    counters: Option<&PerfCounters>,
    payload: &[u8],
) -> Result<Bytes, Status> {
    let mut d = Decoder::new(payload);
    let count = d.get_u32().map_err(|_| Status::Malformed)? as usize;
    if count == 0 || count > MAX_BURST_ENTRIES {
        return Err(Status::Malformed);
    }
    let mut out = Encoder::new();
    out.put_u32(count as u32);
    for _ in 0..count {
        let api = ApiId(d.get_u32().map_err(|_| Status::Malformed)?);
        if api.0 & BURST_API_BIT != 0 {
            return Err(Status::Malformed);
        }
        let entry = d.get_bytes().map_err(|_| Status::Malformed)?;
        let (status, body) = match dispatch(handler, staging, counters, api, entry) {
            Ok(bytes) => (Status::Ok, bytes),
            Err(status) => (status, Bytes::new()),
        };
        out.put_u32(status.to_u32());
        out.put_bytes(&body);
    }
    d.finish().map_err(|_| Status::Malformed)?;
    Ok(out.finish())
}

/// Splits a burst response body back into one `Result` per entry.
///
/// # Errors
///
/// Returns [`RpcError::Wire`] when the body does not decode as a burst of
/// exactly `expected` entries.
pub(crate) fn decode_burst_response(
    body: &[u8],
    expected: usize,
) -> Result<Vec<Result<Bytes, Status>>, RpcError> {
    let mut d = Decoder::new(body);
    let count = d.get_u32()? as usize;
    if count != expected {
        return Err(RpcError::Wire(WireError::BadLength { declared: count, remaining: expected }));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let status = Status::from_u32(d.get_u32()?);
        let bytes = d.get_bytes()?;
        out.push(if status.is_ok() { Ok(Bytes::copy_from_slice(bytes)) } else { Err(status) });
    }
    d.finish()?;
    Ok(out)
}

/// Responses remembered by [`serve`] for at-most-once execution.
pub(crate) const SERVE_DEDUP_WINDOW: usize = 128;

/// Runs the daemon dispatch loop over `endpoint` until the peer
/// disconnects: receive command, decode, execute, respond. This is
/// `lakeD`'s main loop.
///
/// Robustness:
///
/// * Undecodable frames are answered `Malformed` with the sequence number
///   recovered from the frame header when it survived, or the reserved
///   [`SEQ_UNMATCHED`] sentinel otherwise — never a fabricated seq a
///   pipelined caller could mis-match.
/// * Recently executed commands are remembered by seq
///   (a [`SERVE_DEDUP_WINDOW`]-deep window): a duplicated or retried
///   command is answered from the cache instead of re-executed, giving
///   retries at-most-once semantics.
pub fn serve<C: Channel + ?Sized>(endpoint: &C, handler: &dyn ApiHandler) {
    serve_loop(endpoint, handler, &AtomicU64::new(0), None, None);
}

/// [`serve`] for a supervised daemon: every response is stamped with the
/// current value of `epoch`, the daemon's incarnation number. A supervisor
/// bumps the atomic on restart; stubs fence out responses stamped by dead
/// incarnations. (`serve` itself is this loop pinned to epoch 0.)
pub fn serve_with_epoch<C: Channel + ?Sized>(
    endpoint: &C,
    handler: &dyn ApiHandler,
    epoch: &AtomicU64,
) {
    serve_loop(endpoint, handler, epoch, None, None);
}

/// [`serve_with_epoch`] for a daemon that shares a staging region with its
/// stubs: staged commands are unwrapped and the handler executes against a
/// borrowed view of the shm bytes (see [`CallEngine::with_staging`]).
pub fn serve_with_staging<C: Channel + ?Sized>(
    endpoint: &C,
    handler: &dyn ApiHandler,
    epoch: &AtomicU64,
    staging: &ShmRegion,
) {
    serve_loop(endpoint, handler, epoch, Some(staging), None);
}

/// [`serve_with_staging`] with copy accounting attributed to an engine's
/// [`PerfCounters`] (shared with the stub-side [`CallEngine::with_perf`])
/// instead of the anonymous process-wide rollup — the entry point for
/// deployments that run several daemons in one process and must not
/// double-count each other's traffic. `staging` is optional here so one
/// signature covers both inline-only and staged daemons.
pub fn serve_engine<C: Channel + ?Sized>(
    endpoint: &C,
    handler: &dyn ApiHandler,
    epoch: &AtomicU64,
    staging: Option<&ShmRegion>,
    counters: &PerfCounters,
) {
    serve_loop(endpoint, handler, epoch, staging, Some(counters));
}

fn serve_loop<C: Channel + ?Sized>(
    endpoint: &C,
    handler: &dyn ApiHandler,
    epoch: &AtomicU64,
    staging: Option<&ShmRegion>,
    counters: Option<&PerfCounters>,
) {
    serve_serial(endpoint, handler, epoch, staging, counters, None);
}

pub(crate) fn serve_serial<C: Channel + ?Sized>(
    endpoint: &C,
    handler: &dyn ApiHandler,
    epoch: &AtomicU64,
    staging: Option<&ShmRegion>,
    counters: Option<&PerfCounters>,
    stats: Option<&ExecutorStats>,
) {
    // Dedup entries remember the epoch they were computed under: a cached
    // answer from a previous incarnation must NOT be replayed — the new
    // incarnation never ran that command (crash_reset wiped its state), and
    // the caller would fence the stale stamp forever, wedging the retry.
    // The table is the same seq-sharded window the parallel executor uses,
    // sized to the historical SERVE_DEDUP_WINDOW.
    let dedup = DedupTable::new();
    while let Ok(frame) = endpoint.recv() {
        if let Some(s) = stats {
            s.note_frame();
        }
        let now_epoch = epoch.load(Ordering::Relaxed);
        let response = match Command::decode_borrowed(&frame) {
            Ok(cmd) => {
                if let Some(prior) = dedup.replay(cmd.seq, now_epoch) {
                    // Retried or duplicated command, same incarnation:
                    // replay, don't re-run.
                    if let Some(s) = stats {
                        s.note_replay();
                    }
                    prior
                } else {
                    // Borrowed dispatch: the payload stays inside the
                    // received frame (or in shm, for staged commands).
                    match counters {
                        Some(c) => c.note_zero_copy(cmd.payload.len()),
                        None => perf::note_zero_copy(cmd.payload.len()),
                    }
                    let response = match dispatch(handler, staging, counters, cmd.api, cmd.payload)
                    {
                        Ok(payload) => {
                            Response { seq: cmd.seq, epoch: now_epoch, status: Status::Ok, payload }
                        }
                        Err(status) => Response {
                            seq: cmd.seq,
                            epoch: now_epoch,
                            status,
                            payload: Bytes::new(),
                        },
                    };
                    if dedup.record(cmd.seq, now_epoch, &response) {
                        if let Some(s) = stats {
                            s.note_eviction();
                        }
                    }
                    if let Some(s) = stats {
                        s.note_executed();
                    }
                    response
                }
            }
            // Never executed, so never cached: a retry of the same seq with
            // an intact frame must run for real.
            Err(_) => {
                if let Some(s) = stats {
                    s.note_malformed();
                }
                Response {
                    seq: Command::peek_seq(&frame).unwrap_or(SEQ_UNMATCHED),
                    epoch: now_epoch,
                    status: Status::Malformed,
                    payload: Bytes::new(),
                }
            }
        };
        if endpoint.send(response.encode()).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Decoder, Encoder};
    use lake_transport::Link;

    const API_ADD: ApiId = ApiId(1);
    const API_FAIL: ApiId = ApiId(2);

    fn adder() -> Arc<dyn ApiHandler> {
        Arc::new(|api: ApiId, payload: &[u8]| -> Result<Bytes, Status> {
            match api {
                API_ADD => {
                    let mut d = Decoder::new(payload);
                    let a = d.get_u64().map_err(|_| Status::Malformed)?;
                    let b = d.get_u64().map_err(|_| Status::Malformed)?;
                    let mut e = Encoder::new();
                    e.put_u64(a + b);
                    Ok(e.finish())
                }
                API_FAIL => Err(Status::VendorError(13)),
                _ => Err(Status::UnknownApi),
            }
        })
    }

    fn encode_pair(a: u64, b: u64) -> Bytes {
        let mut e = Encoder::new();
        e.put_u64(a).put_u64(b);
        e.finish()
    }

    #[test]
    fn in_process_call_roundtrip() {
        let clock = SharedClock::new();
        let engine = CallEngine::in_process(Mechanism::Netlink, clock.clone(), adder());
        let out = engine.call(API_ADD, encode_pair(2, 40)).unwrap();
        let mut d = Decoder::new(&out);
        assert_eq!(d.get_u64().unwrap(), 42);
        // Netlink: 11us call + ~28us round trip payload cost
        assert!(clock.now().as_micros() >= 30);
        let stats = engine.stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.failures, 0);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
    }

    #[test]
    fn vendor_error_is_forwarded() {
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), adder());
        let err = engine.call(API_FAIL, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Remote(Status::VendorError(13)));
        assert_eq!(engine.stats().failures, 1);
    }

    #[test]
    fn unknown_api_is_reported() {
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), adder());
        let err = engine.call(ApiId(999), Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Remote(Status::UnknownApi));
    }

    #[test]
    fn linked_mode_with_real_daemon_thread() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock.clone());
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve(&user, handler.as_ref());
        });
        let engine = CallEngine::linked(kernel);
        for i in 0..10u64 {
            let out = engine.call(API_ADD, encode_pair(i, i)).unwrap();
            let mut d = Decoder::new(&out);
            assert_eq!(d.get_u64().unwrap(), 2 * i);
        }
        let err = engine.call(API_FAIL, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Remote(Status::VendorError(13)));
        drop(engine); // closes the link; daemon loop exits
        daemon.join().unwrap();
        assert!(clock.now().as_micros() > 0);
    }

    #[test]
    fn larger_payloads_cost_more_time() {
        let small_clock = SharedClock::new();
        let engine = CallEngine::in_process(Mechanism::Netlink, small_clock.clone(), adder());
        let _ = engine.call(API_ADD, encode_pair(1, 1));
        let small_elapsed = small_clock.now();

        let big_clock = SharedClock::new();
        let engine = CallEngine::in_process(
            Mechanism::Netlink,
            big_clock.clone(),
            Arc::new(|_: ApiId, _: &[u8]| Ok(Bytes::new())),
        );
        let payload = Bytes::from(vec![0u8; 32 * 1024]);
        let _ = engine.call(ApiId(1), payload);
        assert!(big_clock.now().as_nanos() > small_elapsed.as_nanos() * 3);
    }

    #[test]
    fn handler_clock_advance_is_included() {
        // The handler simulates GPU time by advancing the shared clock.
        let clock = SharedClock::new();
        let handler_clock = clock.clone();
        let handler = Arc::new(move |_: ApiId, _: &[u8]| -> Result<Bytes, Status> {
            handler_clock.advance(lake_sim::Duration::from_micros(500));
            Ok(Bytes::new())
        });
        let engine = CallEngine::in_process(Mechanism::Netlink, clock.clone(), handler);
        engine.call(ApiId(1), Bytes::new()).unwrap();
        assert!(clock.now().as_micros() >= 500 + 30);
    }

    /// Regression (seq desync): the daemon must recover the seq of an
    /// undecodable frame from its header, and fall back to SEQ_UNMATCHED —
    /// never `seq: 0`, which a pipelined caller could own.
    #[test]
    fn serve_recovers_seq_for_undecodable_frames() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve(&user, handler.as_ref());
        });

        // Corrupt a valid frame's payload length: decode fails, header survives.
        let cmd = Command { api: API_ADD, seq: 7777, payload: encode_pair(1, 2) };
        let mut frame = cmd.encode();
        frame[13] ^= 0xFF;
        kernel.send(frame).unwrap();
        let resp = Response::decode(&kernel.recv().unwrap()).unwrap();
        assert_eq!(resp.seq, 7777, "seq must be recovered from the intact header");
        assert_eq!(resp.status, Status::Malformed);

        // Fully garbled frame (magic destroyed): sentinel, not 0.
        kernel.send(vec![0x00, 0x01, 0x02]).unwrap();
        let resp = Response::decode(&kernel.recv().unwrap()).unwrap();
        assert_eq!(resp.seq, SEQ_UNMATCHED);
        assert_eq!(resp.status, Status::Malformed);

        drop(kernel);
        daemon.join().unwrap();
    }

    /// Regression (seq routing): two concurrent callers whose responses
    /// arrive out of order must each get their own response. The old
    /// engine dropped mismatched-seq frames, losing one caller's reply.
    #[test]
    fn concurrent_callers_get_seq_routed_responses() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        // A daemon that answers every batch of two commands in reverse order.
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            while let (Ok(f1), Ok(f2)) = (user.recv(), user.recv()) {
                for frame in [f2, f1] {
                    let cmd = Command::decode(&frame).unwrap();
                    let resp = match handler.handle(cmd.api, &cmd.payload) {
                        Ok(p) => {
                            Response { seq: cmd.seq, epoch: 0, status: Status::Ok, payload: p }
                        }
                        Err(s) => {
                            Response { seq: cmd.seq, epoch: 0, status: s, payload: Bytes::new() }
                        }
                    };
                    if user.send(resp.encode()).is_err() {
                        return;
                    }
                }
            }
        });

        let engine = Arc::new(CallEngine::linked(kernel));
        let mut workers = Vec::new();
        for w in 0..2u64 {
            let engine = engine.clone();
            workers.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let out = engine.call(API_ADD, encode_pair(w * 1000, i)).unwrap();
                    let mut d = Decoder::new(&out);
                    assert_eq!(
                        d.get_u64().unwrap(),
                        w * 1000 + i,
                        "caller got someone else's reply"
                    );
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    fn idempotent_calls_retry_through_frame_loss_in_process() {
        use lake_sim::{FaultPlan, FaultSpec};
        let clock = SharedClock::new();
        let plan = Arc::new(FaultPlan::new(FaultSpec { drop_prob: 0.3, ..Default::default() }, 17));
        let engine = CallEngine::in_process(Mechanism::Netlink, clock, adder())
            .with_policy(CallPolicy {
                deadline: Duration::from_micros(300),
                max_attempts: 8,
                backoff: Duration::from_micros(20),
                recv_patience: None,
            })
            .with_faults(plan);
        engine.register_api(API_ADD, true);
        let mut ok = 0;
        for i in 0..200u64 {
            if let Ok(out) = engine.call(API_ADD, encode_pair(i, 1)) {
                let mut d = Decoder::new(&out);
                assert_eq!(d.get_u64().unwrap(), i + 1);
                ok += 1;
            }
        }
        let stats = engine.stats();
        assert!(stats.retries > 0, "30% drop must force retries");
        assert!(stats.timeouts > 0);
        // 8 attempts vs 30% per-direction drop: effectively everything lands.
        assert!(ok >= 195, "only {ok}/200 idempotent calls survived");
    }

    #[test]
    fn idempotent_calls_retry_through_lossy_link() {
        use lake_sim::{FaultPlan, FaultSpec};
        let clock = SharedClock::new();
        let plan = Arc::new(FaultPlan::new(
            FaultSpec { drop_prob: 0.15, corrupt_prob: 0.1, ..Default::default() },
            23,
        ));
        let (kernel, user) = Link::pair_with_faults(Mechanism::Netlink, clock, plan);
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve(&user, handler.as_ref());
        });
        let engine = CallEngine::linked(kernel).with_policy(CallPolicy {
            deadline: Duration::from_micros(300),
            max_attempts: 8,
            backoff: Duration::from_micros(20),
            recv_patience: Some(std::time::Duration::from_millis(25)),
        });
        engine.register_api(API_ADD, true);
        let mut ok = 0;
        for i in 0..60u64 {
            if let Ok(out) = engine.call(API_ADD, encode_pair(i, i)) {
                let mut d = Decoder::new(&out);
                assert_eq!(d.get_u64().unwrap(), 2 * i, "retry returned a wrong result");
                ok += 1;
            }
        }
        let stats = engine.stats();
        assert!(stats.retries > 0, "lossy link must force retries");
        assert!(ok >= 55, "only {ok}/60 idempotent calls survived the lossy link");
        drop(engine);
        daemon.join().unwrap();
    }

    /// A scripted lifecycle: crashes at fixed virtual instants, restart
    /// bumps the epoch. The real supervisor lives in lake-core; this
    /// double only exercises the engine's fencing/failover contract.
    struct ScriptedLifecycle {
        crashes: Mutex<Vec<Instant>>,
        epoch: AtomicU64,
        dead: std::sync::atomic::AtomicBool,
    }

    impl ScriptedLifecycle {
        fn new(crashes: Vec<Instant>) -> Arc<Self> {
            Arc::new(ScriptedLifecycle {
                crashes: Mutex::new(crashes),
                epoch: AtomicU64::new(0),
                dead: std::sync::atomic::AtomicBool::new(false),
            })
        }
    }

    impl DaemonLifecycle for ScriptedLifecycle {
        fn epoch(&self) -> u64 {
            self.epoch.load(Ordering::Relaxed)
        }
        fn ensure_up(&self) -> u64 {
            if self.dead.swap(false, Ordering::Relaxed) {
                self.epoch.fetch_add(1, Ordering::Relaxed);
            }
            self.epoch()
        }
        fn crashed_between(&self, start: Instant, end: Instant) -> bool {
            let mut crashes = self.crashes.lock().unwrap();
            if let Some(pos) = crashes.iter().position(|&c| start < c && c <= end) {
                crashes.remove(pos);
                self.dead.store(true, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn idempotent_call_fails_over_across_a_crash() {
        let clock = SharedClock::new();
        let lifecycle = ScriptedLifecycle::new(vec![Instant::from_nanos(1)]);
        let engine = CallEngine::in_process(Mechanism::Netlink, clock, adder())
            .with_lifecycle(lifecycle.clone());
        engine.register_api(API_ADD, true);
        let out = engine.call(API_ADD, encode_pair(20, 22)).unwrap();
        let mut d = Decoder::new(&out);
        assert_eq!(d.get_u64().unwrap(), 42, "failover must return the new epoch's answer");
        let stats = engine.stats();
        assert_eq!(stats.stale_epochs, 1, "the dead incarnation's answer must be fenced");
        assert_eq!(stats.failed_over, 1);
        assert_eq!(stats.daemon_restarts, 0);
        assert_eq!(lifecycle.epoch(), 1, "the retry must run under the new incarnation");
    }

    #[test]
    fn non_idempotent_call_surfaces_daemon_restarted() {
        let clock = SharedClock::new();
        let lifecycle = ScriptedLifecycle::new(vec![Instant::from_nanos(1)]);
        let engine = CallEngine::in_process(Mechanism::Netlink, clock, adder())
            .with_lifecycle(lifecycle.clone());
        // API_ADD deliberately NOT registered idempotent.
        let err = engine.call(API_ADD, encode_pair(1, 2)).unwrap_err();
        assert_eq!(err, RpcError::DaemonRestarted { epoch: 0 });
        let stats = engine.stats();
        assert_eq!(stats.daemon_restarts, 1);
        assert_eq!(stats.stale_epochs, 1);
        // The next call finds the restarted daemon and succeeds under epoch 1.
        let out = engine.call(API_ADD, encode_pair(2, 2)).unwrap();
        let mut d = Decoder::new(&out);
        assert_eq!(d.get_u64().unwrap(), 4);
        assert_eq!(lifecycle.epoch(), 1);
    }

    #[test]
    fn serve_with_epoch_stamps_responses() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let epoch = Arc::new(AtomicU64::new(5));
        let daemon_epoch = epoch.clone();
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve_with_epoch(&user, handler.as_ref(), &daemon_epoch);
        });
        let cmd = Command { api: API_ADD, seq: 1, payload: encode_pair(1, 1) };
        kernel.send(cmd.encode()).unwrap();
        let resp = Response::decode(&kernel.recv().unwrap()).unwrap();
        assert_eq!(resp.epoch, 5, "responses must carry the serving incarnation");
        drop(kernel);
        daemon.join().unwrap();
    }

    #[test]
    fn linked_mode_fences_stale_epoch_responses() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        // A daemon that answers each command twice: first with a stale
        // incarnation's stamp, then with the live one. The stale answer
        // carries a *wrong* payload — if fencing fails, the caller sees it.
        let daemon = std::thread::spawn(move || {
            while let Ok(frame) = user.recv() {
                let cmd = Command::decode(&frame).unwrap();
                let stale = Response {
                    seq: cmd.seq,
                    epoch: 1,
                    status: Status::Ok,
                    payload: Bytes::from_static(b"stale"),
                };
                let live = Response {
                    seq: cmd.seq,
                    epoch: 2,
                    status: Status::Ok,
                    payload: Bytes::from_static(b"live"),
                };
                if user.send(stale.encode()).is_err() || user.send(live.encode()).is_err() {
                    return;
                }
            }
        });
        let engine = CallEngine::linked(kernel);
        // Teach the engine about epoch 2 before the race: floor rises on
        // first accepted response and stays up.
        engine.epoch_floor.store(2, Ordering::Relaxed);
        for _ in 0..4 {
            let out = engine.call(ApiId(1), Bytes::new()).unwrap();
            assert_eq!(&out[..], b"live", "stale-epoch answer was delivered");
        }
        assert!(engine.stats().stale_epochs >= 4);
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    fn serve_deduplicates_retried_commands() {
        use std::sync::atomic::AtomicUsize;
        let executions = Arc::new(AtomicUsize::new(0));
        let execs = executions.clone();
        let handler = Arc::new(move |_: ApiId, _: &[u8]| -> Result<Bytes, Status> {
            execs.fetch_add(1, Ordering::SeqCst);
            Ok(Bytes::from_static(b"done"))
        });
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let daemon = std::thread::spawn(move || serve(&user, handler.as_ref()));

        let cmd = Command { api: ApiId(9), seq: 42, payload: Bytes::new() };
        for _ in 0..3 {
            kernel.send(cmd.encode()).unwrap();
            let resp = Response::decode(&kernel.recv().unwrap()).unwrap();
            assert_eq!(resp.seq, 42);
            assert_eq!(resp.payload, Bytes::from_static(b"done"));
        }
        assert_eq!(executions.load(Ordering::SeqCst), 1, "retries must not re-execute");
        drop(kernel);
        daemon.join().unwrap();
    }

    fn echo() -> Arc<dyn ApiHandler> {
        Arc::new(|_: ApiId, payload: &[u8]| -> Result<Bytes, Status> {
            Ok(Bytes::copy_from_slice(payload))
        })
    }

    #[test]
    fn staged_in_process_call_roundtrips_and_frees_the_buffer() {
        let region = ShmRegion::with_capacity(64 * 1024);
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), echo())
            .with_staging(region.clone(), 64);
        let payload: Vec<u8> = (0..8192u32).map(|i| i as u8).collect();
        let out = engine.call(ApiId(3), Bytes::from(payload.clone())).unwrap();
        assert_eq!(&out[..], &payload[..]);
        let stats = engine.stats();
        assert_eq!(stats.staged_calls, 1);
        // The descriptor frame, not the payload, is what crossed the link.
        assert!(stats.bytes_sent < payload.len() as u64);
        assert_eq!(region.stats().in_use, 0, "staged buffer must be freed after the call");
    }

    #[test]
    fn payloads_below_threshold_stay_inline() {
        let region = ShmRegion::with_capacity(4096);
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), echo())
            .with_staging(region, DEFAULT_INLINE_THRESHOLD);
        let out = engine.call(ApiId(3), Bytes::from_static(b"small")).unwrap();
        assert_eq!(&out[..], b"small");
        let stats = engine.stats();
        assert_eq!(stats.staged_calls, 0);
        assert!(stats.bytes_sent > 5);
    }

    #[test]
    fn call_zero_copy_fills_shm_directly_and_falls_back_inline() {
        let region = ShmRegion::with_capacity(64 * 1024);
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), echo())
            .with_staging(region, 64);
        let out = engine
            .call_zero_copy(ApiId(3), 4096, |dst| {
                for (i, b) in dst.iter_mut().enumerate() {
                    *b = i as u8;
                }
            })
            .unwrap();
        assert_eq!(out.len(), 4096);
        assert!(out.iter().enumerate().all(|(i, &b)| b == i as u8));
        assert_eq!(engine.stats().staged_calls, 1);

        // No staging attached: same API, materialized inline.
        let plain = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), echo());
        let out = plain.call_zero_copy(ApiId(3), 100, |dst| dst.fill(7)).unwrap();
        assert_eq!(&out[..], &[7u8; 100][..]);
        assert_eq!(plain.stats().staged_calls, 0);
    }

    #[test]
    fn staged_linked_call_passes_a_handle_not_the_payload() {
        let clock = SharedClock::new();
        let region = ShmRegion::with_capacity(256 * 1024);
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let daemon_region = region.clone();
        let daemon = std::thread::spawn(move || {
            let handler = echo();
            serve_with_staging(&user, handler.as_ref(), &AtomicU64::new(0), &daemon_region);
        });
        let engine =
            CallEngine::linked(kernel).with_staging(region.clone(), DEFAULT_INLINE_THRESHOLD);
        let payload: Vec<u8> = (0..16384u32).map(|i| (i * 7) as u8).collect();
        let before = crate::perf::snapshot();
        for _ in 0..4 {
            let out = engine.call(ApiId(9), Bytes::from(payload.clone())).unwrap();
            assert_eq!(&out[..], &payload[..]);
        }
        let delta = crate::perf::snapshot().since(&before);
        let stats = engine.stats();
        assert_eq!(stats.staged_calls, 4);
        // Each call moved one payload copy into shm; the inline path would
        // have moved it at least twice more (frame encode + send clone).
        assert!(delta.zero_copy_hits >= 4);
        assert_eq!(region.stats().in_use, 0);
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    fn staged_buffer_is_orphaned_when_the_daemon_dies_mid_call() {
        let region = ShmRegion::with_capacity(64 * 1024);
        let lifecycle = ScriptedLifecycle::new(vec![Instant::from_nanos(1)]);
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), echo())
            .with_staging(region.clone(), 64)
            .with_lifecycle(lifecycle);
        // NOT idempotent: the call dies with DaemonRestarted.
        let err = engine.call(ApiId(3), Bytes::from(vec![1u8; 4096])).unwrap_err();
        assert_eq!(err, RpcError::DaemonRestarted { epoch: 0 });
        // The dead incarnation may still hold a mapping: the buffer must be
        // orphaned (not freed, not leaked-forever) until a reclamation sweep.
        assert!(region.stats().orphaned_bytes >= 4096);
        let report = region.reclaim_orphans();
        assert!(report.reclaimed_bytes >= 4096);
        assert_eq!(region.stats().in_use, 0);
    }

    #[test]
    fn staged_command_without_a_region_is_rejected_not_misread() {
        // A staged envelope arriving at a daemon with no staging attached
        // must be rejected as Malformed, not dispatched with the raw
        // descriptor bytes as the payload.
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), echo());
        let err = engine.call(ApiId(3 | STAGED_API_BIT), Bytes::from(vec![0u8; 16])).unwrap_err();
        assert_eq!(err, RpcError::Remote(Status::Malformed));
    }

    #[test]
    fn burst_coalesces_small_commands_over_a_link() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let daemon = std::thread::spawn(move || {
            let handler = echo();
            serve(&user, handler.as_ref());
        });
        let engine = CallEngine::linked(kernel);
        let entries: Vec<(ApiId, Bytes)> =
            (0..8u8).map(|i| (ApiId(3), Bytes::from(vec![i; 16]))).collect();
        let results = engine.call_burst(entries);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap()[..], [i as u8; 16][..], "burst reordered entry {i}");
        }
        let stats = engine.stats();
        assert_eq!(stats.calls, 1, "8 commands must ride one frame");
        assert_eq!(stats.burst_frames, 1);
        assert_eq!(stats.coalesced_commands, 8);
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    fn burst_routes_large_entries_through_staging() {
        let region = ShmRegion::with_capacity(64 * 1024);
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), echo())
            .with_staging(region.clone(), 64);
        let big = Bytes::from(vec![7u8; 4096]);
        let results = engine.call_burst(vec![
            (ApiId(1), Bytes::from_static(b"a")),
            (ApiId(1), big.clone()),
            (ApiId(1), Bytes::from_static(b"b")),
        ]);
        assert_eq!(results[0].as_ref().unwrap(), &Bytes::from_static(b"a"));
        assert_eq!(results[1].as_ref().unwrap(), &big);
        assert_eq!(results[2].as_ref().unwrap(), &Bytes::from_static(b"b"));
        let stats = engine.stats();
        assert_eq!(stats.staged_calls, 1, "the large entry keeps the shm path");
        assert_eq!(stats.burst_frames, 1);
        assert_eq!(stats.coalesced_commands, 2, "only the small entries coalesce");
        assert_eq!(region.stats().in_use, 0);
    }

    #[test]
    fn lone_small_entry_skips_the_burst_envelope() {
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), echo());
        let results = engine.call_burst(vec![(ApiId(1), Bytes::from_static(b"solo"))]);
        assert_eq!(results[0].as_ref().unwrap(), &Bytes::from_static(b"solo"));
        let stats = engine.stats();
        assert_eq!(stats.burst_frames, 0, "a burst of one is just a call");
        assert_eq!(stats.calls, 1);
    }

    #[test]
    fn nested_burst_is_rejected_as_malformed() {
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), echo());
        let mut inner = Encoder::new();
        inner.put_u32(1).put_u32(BURST_API_BIT).put_bytes(b"");
        let err = engine.call(ApiId(BURST_API_BIT), inner.finish()).unwrap_err();
        assert_eq!(err, RpcError::Remote(Status::Malformed));
    }

    #[test]
    fn linked_idempotent_call_fails_over_across_a_crash() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock.clone());
        let lifecycle = ScriptedLifecycle::new(vec![Instant::from_nanos(1)]);
        // The daemon stamps responses with the *lifecycle's* epoch — the
        // same sharing the core supervisor wires up.
        let daemon_lc = lifecycle.clone();
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve_with_epoch(&user, handler.as_ref(), &daemon_lc.epoch);
        });
        let engine =
            CallEngine::linked(kernel).with_lifecycle(lifecycle.clone()).with_policy(CallPolicy {
                recv_patience: Some(std::time::Duration::from_millis(50)),
                ..CallPolicy::default()
            });
        engine.register_api(API_ADD, true);
        let out = engine.call(API_ADD, encode_pair(20, 22)).unwrap();
        let mut d = Decoder::new(&out);
        assert_eq!(d.get_u64().unwrap(), 42);
        let stats = engine.stats();
        assert_eq!(stats.stale_epochs, 1, "the dead incarnation's answer must be fenced");
        assert_eq!(stats.failed_over, 1);
        assert_eq!(stats.daemon_restarts, 0);
        assert_eq!(stats.timeouts, 1, "the crash costs one discovery deadline");
        assert_eq!(lifecycle.epoch(), 1, "the retry must run under the new incarnation");
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    fn linked_non_idempotent_call_surfaces_daemon_restarted() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock.clone());
        let lifecycle = ScriptedLifecycle::new(vec![Instant::from_nanos(1)]);
        let daemon_lc = lifecycle.clone();
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve_with_epoch(&user, handler.as_ref(), &daemon_lc.epoch);
        });
        let engine = CallEngine::linked(kernel).with_lifecycle(lifecycle.clone());
        // API_ADD deliberately NOT registered idempotent.
        let err = engine.call(API_ADD, encode_pair(1, 2)).unwrap_err();
        assert_eq!(err, RpcError::DaemonRestarted { epoch: 0 });
        let stats = engine.stats();
        assert_eq!(stats.daemon_restarts, 1);
        assert_eq!(stats.stale_epochs, 1);
        // The next call runs under the restarted incarnation; the serve
        // loop must re-execute the retried seq instead of replaying the
        // dead incarnation's cached answer.
        let out = engine.call(API_ADD, encode_pair(2, 2)).unwrap();
        let mut d = Decoder::new(&out);
        assert_eq!(d.get_u64().unwrap(), 4);
        assert_eq!(lifecycle.epoch(), 1);
        drop(engine);
        daemon.join().unwrap();
    }

    /// Regression (epoch-aware dedup): a retried seq must not be answered
    /// from a dead incarnation's cache — the new incarnation never ran it.
    /// Without eviction the caller fences the stale stamp forever and the
    /// retry wedges.
    #[test]
    fn serve_reexecutes_cached_seq_after_an_epoch_bump() {
        use std::sync::atomic::AtomicUsize;
        let executions = Arc::new(AtomicUsize::new(0));
        let execs = executions.clone();
        let handler = Arc::new(move |_: ApiId, _: &[u8]| -> Result<Bytes, Status> {
            execs.fetch_add(1, Ordering::SeqCst);
            Ok(Bytes::from_static(b"done"))
        });
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let epoch = Arc::new(AtomicU64::new(0));
        let daemon_epoch = epoch.clone();
        let daemon =
            std::thread::spawn(move || serve_with_epoch(&user, handler.as_ref(), &daemon_epoch));

        let cmd = Command { api: ApiId(9), seq: 77, payload: Bytes::new() };
        kernel.send(cmd.encode()).unwrap();
        let first = Response::decode(&kernel.recv().unwrap()).unwrap();
        assert_eq!(first.epoch, 0);
        // Same seq, same epoch: replayed from cache, not re-executed.
        kernel.send(cmd.encode()).unwrap();
        let replay = Response::decode(&kernel.recv().unwrap()).unwrap();
        assert_eq!(replay.epoch, 0);
        assert_eq!(executions.load(Ordering::SeqCst), 1);
        // Epoch bump (supervised restart): the retry must run for real and
        // carry the live incarnation's stamp.
        epoch.store(1, Ordering::Relaxed);
        kernel.send(cmd.encode()).unwrap();
        let reexec = Response::decode(&kernel.recv().unwrap()).unwrap();
        assert_eq!(reexec.epoch, 1, "stale cached stamp would wedge the caller");
        assert_eq!(executions.load(Ordering::SeqCst), 2, "new incarnation must re-execute");
        drop(kernel);
        daemon.join().unwrap();
    }

    /// Regression (pending-table leak): before the waiter registry, every
    /// response routed for a seq nobody was waiting on — late answers to
    /// timed-out or failed-over attempts — was stashed forever.
    #[test]
    fn unclaimed_routed_responses_expire_instead_of_leaking() {
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), adder());
        let orphan =
            |seq: u64| Response { seq, epoch: 0, status: Status::Ok, payload: Bytes::new() };

        // No registered waiter: the stash is refused and counted.
        engine.route_response(orphan(99));
        assert_eq!(engine.pending_len(), 0, "orphan response must not be stashed");
        assert_eq!(engine.stats().pending_expired, 1);

        // A registered waiter's response parks and is claimable once.
        engine.register_waiter(7);
        engine.route_response(orphan(7));
        assert_eq!(engine.pending_len(), 1);
        assert_eq!(engine.stats().pending_high_water, 1);
        assert!(engine.take_routed(7).is_some());
        engine.deregister_waiter(7);

        // Deregistering expires a stash the caller never claimed (it gave
        // up and left) — the exact shape of the leak.
        engine.register_waiter(8);
        engine.route_response(orphan(8));
        engine.deregister_waiter(8);
        assert_eq!(engine.pending_len(), 0, "abandoned stash must be expired");
        assert!(engine.take_routed(8).is_none());
        assert_eq!(engine.stats().pending_expired, 2);

        // And the deadline-path sweep catches anything the gates missed.
        engine.register_waiter(9);
        engine.route_response(orphan(9));
        engine.waiters.lock().unwrap().remove(&9); // waiter vanishes without expiry
        engine.sweep_pending();
        assert_eq!(engine.pending_len(), 0, "sweep must clear orphaned stashes");
        assert_eq!(engine.stats().pending_expired, 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::wire::Encoder;
    use lake_sim::{FaultPlan, FaultSpec};
    use proptest::prelude::*;
    use std::sync::atomic::AtomicUsize;

    proptest! {
        /// Retry-with-backoff never duplicates a non-idempotent call: no
        /// matter what the link drops or corrupts, the handler executes at
        /// most once per issued call.
        #[test]
        fn non_idempotent_calls_never_execute_twice(
            seed: u64,
            drop_prob in 0.0f64..0.5,
            corrupt_prob in 0.0f64..0.3,
        ) {
            let executions = Arc::new(AtomicUsize::new(0));
            let execs = executions.clone();
            let handler = Arc::new(move |_: ApiId, _: &[u8]| -> Result<Bytes, Status> {
                execs.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            });
            let plan = Arc::new(FaultPlan::new(
                FaultSpec { drop_prob, corrupt_prob, ..Default::default() },
                seed,
            ));
            let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), handler)
                .with_policy(CallPolicy {
                    deadline: Duration::from_micros(100),
                    max_attempts: 6,
                    backoff: Duration::from_micros(10),
                    recv_patience: None,
                })
                .with_faults(plan);
            // NOT registered idempotent.
            const CALLS: usize = 40;
            for i in 0..CALLS {
                let mut e = Encoder::new();
                e.put_u64(i as u64);
                let _ = engine.call(ApiId(77), e.finish());
            }
            let executed = executions.load(Ordering::SeqCst);
            prop_assert!(
                executed <= CALLS,
                "non-idempotent handler ran {executed} times for {CALLS} calls"
            );
            // And every execution is accounted: calls that returned Ok did run.
            let stats = engine.stats();
            prop_assert_eq!(stats.calls as usize, CALLS);
        }

        /// Idempotent registration is what unlocks retries: the same fault
        /// pattern with idempotent registration may execute more than once
        /// but must never lose a result silently (every Ok is a real
        /// execution's result).
        #[test]
        fn idempotent_retries_execute_at_least_once_per_ok(
            seed: u64,
            drop_prob in 0.0f64..0.4,
        ) {
            let executions = Arc::new(AtomicUsize::new(0));
            let execs = executions.clone();
            let handler = Arc::new(move |_: ApiId, _: &[u8]| -> Result<Bytes, Status> {
                execs.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            });
            let plan = Arc::new(FaultPlan::new(
                FaultSpec { drop_prob, ..Default::default() },
                seed,
            ));
            let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), handler)
                .with_policy(CallPolicy {
                    deadline: Duration::from_micros(100),
                    max_attempts: 6,
                    backoff: Duration::from_micros(10),
                    recv_patience: None,
                })
                .with_faults(plan);
            engine.register_api(ApiId(88), true);
            let mut oks = 0usize;
            for _ in 0..40 {
                if engine.call(ApiId(88), Bytes::new()).is_ok() {
                    oks += 1;
                }
            }
            prop_assert!(executions.load(Ordering::SeqCst) >= oks);
        }

        /// Burst encode → daemon decode → per-entry dispatch → response
        /// decode is a lossless round trip for arbitrary entry counts and
        /// payload shapes: every entry comes back in order with its own
        /// payload, regardless of how the batch is sliced into frames.
        #[test]
        fn burst_roundtrip_preserves_order_and_payloads(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..96),
                1..24,
            ),
        ) {
            let engine = CallEngine::in_process(
                Mechanism::Mmap,
                SharedClock::new(),
                Arc::new(|api: ApiId, payload: &[u8]| -> Result<Bytes, Status> {
                    // Echo payload tagged with the api id so a cross-wired
                    // entry is detectable.
                    let mut e = Encoder::new();
                    e.put_u32(api.0);
                    e.put_bytes(payload);
                    Ok(e.finish())
                }),
            );
            let entries: Vec<(ApiId, Bytes)> = payloads
                .iter()
                .enumerate()
                .map(|(i, p)| (ApiId(i as u32 + 1), Bytes::from(p.clone())))
                .collect();
            let results = engine.call_burst(entries);
            prop_assert_eq!(results.len(), payloads.len());
            for (i, (result, want)) in results.into_iter().zip(&payloads).enumerate() {
                let got = result.expect("echo entry failed");
                let mut d = crate::wire::Decoder::new(&got);
                prop_assert_eq!(d.get_u32().unwrap() as usize, i + 1, "entry cross-wired");
                prop_assert_eq!(d.get_bytes().unwrap(), &want[..]);
            }
        }
    }
}
