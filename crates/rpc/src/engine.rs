//! The synchronous call path: stub side ([`CallEngine`]) and daemon side
//! ([`serve`]).
//!
//! Two deployment modes mirror how the artifact can be run:
//!
//! * **In-process** — the handler is invoked directly on the caller's
//!   thread with transport costs charged to the virtual clock. This is the
//!   deterministic fast path used by the experiment harnesses.
//! * **Linked** — commands travel over a real [`lake_transport::Link`] to a
//!   daemon thread running [`serve`], exercising actual cross-thread
//!   queueing like the real `lakeD` process.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use lake_sim::SharedClock;
use lake_transport::{LinkEndpoint, Mechanism};

use crate::command::{ApiId, Command, Response, Status};
use crate::wire::WireError;

/// Error returned by [`CallEngine::call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The daemon reported a non-OK status.
    Remote(Status),
    /// A frame failed to decode.
    Wire(WireError),
    /// The daemon is gone (link closed).
    Disconnected,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Remote(s) => write!(f, "remote call failed with status {s:?}"),
            RpcError::Wire(e) => write!(f, "wire error: {e}"),
            RpcError::Disconnected => f.write_str("daemon disconnected"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Wire(e)
    }
}

/// Daemon-side API implementation.
///
/// `lakeD` "deserializes them and executes the requested APIs" (§4) — a
/// handler is the table of those implementations. Handlers are invoked with
/// the decoded command payload and return the encoded response payload.
pub trait ApiHandler: Send + Sync {
    /// Executes `api` with `payload`-encoded arguments.
    ///
    /// # Errors
    ///
    /// Return a non-[`Status::Ok`] status to signal vendor-library failure;
    /// it is forwarded verbatim to the kernel caller.
    fn handle(&self, api: ApiId, payload: &[u8]) -> Result<Bytes, Status>;
}

impl<F> ApiHandler for F
where
    F: Fn(ApiId, &[u8]) -> Result<Bytes, Status> + Send + Sync,
{
    fn handle(&self, api: ApiId, payload: &[u8]) -> Result<Bytes, Status> {
        self(api, payload)
    }
}

/// Aggregate statistics about remoted calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallStats {
    /// Total remoted calls issued.
    pub calls: u64,
    /// Total command bytes sent.
    pub bytes_sent: u64,
    /// Total response bytes received.
    pub bytes_received: u64,
    /// Calls that returned a non-OK status.
    pub failures: u64,
}

enum Mode {
    InProcess(Arc<dyn ApiHandler>),
    Linked(LinkEndpoint),
}

impl fmt::Debug for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::InProcess(_) => f.write_str("InProcess"),
            Mode::Linked(_) => f.write_str("Linked"),
        }
    }
}

/// The stub side of LAKE's remoting: serialize, transmit, wait (§4.1).
#[derive(Debug)]
pub struct CallEngine {
    mechanism: Mechanism,
    clock: SharedClock,
    mode: Mode,
    next_seq: AtomicU64,
    calls: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    failures: AtomicU64,
}

impl CallEngine {
    /// Creates an engine that dispatches directly to `handler` on the
    /// calling thread, charging `mechanism` costs to `clock`.
    pub fn in_process(
        mechanism: Mechanism,
        clock: SharedClock,
        handler: Arc<dyn ApiHandler>,
    ) -> Self {
        CallEngine {
            mechanism,
            clock,
            mode: Mode::InProcess(handler),
            next_seq: AtomicU64::new(1),
            calls: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// Creates an engine that sends commands over `endpoint` to a daemon
    /// thread running [`serve`]. The endpoint's mechanism and clock are
    /// reused for cost accounting.
    pub fn linked(endpoint: LinkEndpoint) -> Self {
        CallEngine {
            mechanism: endpoint.mechanism(),
            clock: endpoint.clock().clone(),
            mode: Mode::Linked(endpoint),
            next_seq: AtomicU64::new(1),
            calls: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// The channel mechanism in use.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// The virtual clock charged by calls.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Issues a remoted API call and waits for its response payload.
    ///
    /// Cost accounting (in-process mode): the caller's clock advances by
    /// the mechanism round-trip for `max(command, response)` frame size,
    /// split around the handler execution — which itself may advance the
    /// clock (GPU time, daemon compute).
    ///
    /// # Errors
    ///
    /// Returns [`RpcError::Remote`] when the daemon reports failure,
    /// [`RpcError::Wire`] on framing corruption, [`RpcError::Disconnected`]
    /// if the daemon thread is gone.
    pub fn call(&self, api: ApiId, payload: Bytes) -> Result<Bytes, RpcError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let cmd = Command { api, seq, payload };
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(cmd.encoded_len() as u64, Ordering::Relaxed);

        match &self.mode {
            Mode::InProcess(handler) => {
                // Outbound: call time + half the payload round trip.
                self.clock.advance(self.mechanism.call_time());
                self.clock.advance(self.mechanism.one_way(cmd.encoded_len()));
                let result = handler.handle(cmd.api, &cmd.payload);
                let response = match result {
                    Ok(bytes) => Response { seq, status: Status::Ok, payload: bytes },
                    Err(status) => Response { seq, status, payload: Bytes::new() },
                };
                // Inbound: half the response round trip.
                self.clock.advance(self.mechanism.one_way(response.encoded_len()));
                self.bytes_received.fetch_add(response.encoded_len() as u64, Ordering::Relaxed);
                if response.status.is_ok() {
                    Ok(response.payload)
                } else {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    Err(RpcError::Remote(response.status))
                }
            }
            Mode::Linked(endpoint) => {
                endpoint.send(cmd.encode()).map_err(|_| RpcError::Disconnected)?;
                loop {
                    let frame = endpoint.recv().map_err(|_| RpcError::Disconnected)?;
                    let response = Response::decode(&frame)?;
                    if response.seq != seq {
                        // Response to an older cancelled call; drop it.
                        continue;
                    }
                    self.bytes_received.fetch_add(response.encoded_len() as u64, Ordering::Relaxed);
                    return if response.status.is_ok() {
                        Ok(response.payload)
                    } else {
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        Err(RpcError::Remote(response.status))
                    };
                }
            }
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CallStats {
        CallStats {
            calls: self.calls.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }
}

/// Runs the daemon dispatch loop over `endpoint` until the peer
/// disconnects: receive command, decode, execute, respond. This is
/// `lakeD`'s main loop.
pub fn serve(endpoint: &LinkEndpoint, handler: &dyn ApiHandler) {
    while let Ok(frame) = endpoint.recv() {
        let response = match Command::decode(&frame) {
            Ok(cmd) => match handler.handle(cmd.api, &cmd.payload) {
                Ok(payload) => Response { seq: cmd.seq, status: Status::Ok, payload },
                Err(status) => Response { seq: cmd.seq, status, payload: Bytes::new() },
            },
            Err(_) => Response { seq: 0, status: Status::Malformed, payload: Bytes::new() },
        };
        if endpoint.send(response.encode()).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Decoder, Encoder};
    use lake_transport::Link;

    const API_ADD: ApiId = ApiId(1);
    const API_FAIL: ApiId = ApiId(2);

    fn adder() -> Arc<dyn ApiHandler> {
        Arc::new(|api: ApiId, payload: &[u8]| -> Result<Bytes, Status> {
            match api {
                API_ADD => {
                    let mut d = Decoder::new(payload);
                    let a = d.get_u64().map_err(|_| Status::Malformed)?;
                    let b = d.get_u64().map_err(|_| Status::Malformed)?;
                    let mut e = Encoder::new();
                    e.put_u64(a + b);
                    Ok(e.finish())
                }
                API_FAIL => Err(Status::VendorError(13)),
                _ => Err(Status::UnknownApi),
            }
        })
    }

    fn encode_pair(a: u64, b: u64) -> Bytes {
        let mut e = Encoder::new();
        e.put_u64(a).put_u64(b);
        e.finish()
    }

    #[test]
    fn in_process_call_roundtrip() {
        let clock = SharedClock::new();
        let engine = CallEngine::in_process(Mechanism::Netlink, clock.clone(), adder());
        let out = engine.call(API_ADD, encode_pair(2, 40)).unwrap();
        let mut d = Decoder::new(&out);
        assert_eq!(d.get_u64().unwrap(), 42);
        // Netlink: 11us call + ~28us round trip payload cost
        assert!(clock.now().as_micros() >= 30);
        let stats = engine.stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.failures, 0);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
    }

    #[test]
    fn vendor_error_is_forwarded() {
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), adder());
        let err = engine.call(API_FAIL, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Remote(Status::VendorError(13)));
        assert_eq!(engine.stats().failures, 1);
    }

    #[test]
    fn unknown_api_is_reported() {
        let engine = CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), adder());
        let err = engine.call(ApiId(999), Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Remote(Status::UnknownApi));
    }

    #[test]
    fn linked_mode_with_real_daemon_thread() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock.clone());
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve(&user, handler.as_ref());
        });
        let engine = CallEngine::linked(kernel);
        for i in 0..10u64 {
            let out = engine.call(API_ADD, encode_pair(i, i)).unwrap();
            let mut d = Decoder::new(&out);
            assert_eq!(d.get_u64().unwrap(), 2 * i);
        }
        let err = engine.call(API_FAIL, Bytes::new()).unwrap_err();
        assert_eq!(err, RpcError::Remote(Status::VendorError(13)));
        drop(engine); // closes the link; daemon loop exits
        daemon.join().unwrap();
        assert!(clock.now().as_micros() > 0);
    }

    #[test]
    fn larger_payloads_cost_more_time() {
        let small_clock = SharedClock::new();
        let engine = CallEngine::in_process(Mechanism::Netlink, small_clock.clone(), adder());
        let _ = engine.call(API_ADD, encode_pair(1, 1));
        let small_elapsed = small_clock.now();

        let big_clock = SharedClock::new();
        let engine = CallEngine::in_process(
            Mechanism::Netlink,
            big_clock.clone(),
            Arc::new(|_: ApiId, _: &[u8]| Ok(Bytes::new())),
        );
        let payload = Bytes::from(vec![0u8; 32 * 1024]);
        let _ = engine.call(ApiId(1), payload);
        assert!(big_clock.now().as_nanos() > small_elapsed.as_nanos() * 3);
    }

    #[test]
    fn handler_clock_advance_is_included() {
        // The handler simulates GPU time by advancing the shared clock.
        let clock = SharedClock::new();
        let handler_clock = clock.clone();
        let handler = Arc::new(move |_: ApiId, _: &[u8]| -> Result<Bytes, Status> {
            handler_clock.advance(lake_sim::Duration::from_micros(500));
            Ok(Bytes::new())
        });
        let engine = CallEngine::in_process(Mechanism::Netlink, clock.clone(), handler);
        engine.call(ApiId(1), Bytes::new()).unwrap();
        assert!(clock.now().as_micros() >= 500 + 30);
    }
}
