//! Framed command / response messages.
//!
//! A command is "a buffer ... large enough to hold the API function
//! identifier (e.g. a number) and all function arguments" (§4.1). The frame
//! adds a magic byte, a sequence number for response matching, and the API
//! identifier; the payload is opaque to this layer.

use bytes::Bytes;

use crate::perf;
use crate::wire::{Decoder, WireError};

/// Numeric identifier of a remoted API ("e.g. a number" — §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApiId(pub u32);

impl std::fmt::Display for ApiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "api#{}", self.0)
    }
}

/// Result status of a remoted call. "Errors caused when executing an API
/// are forwarded to the application, which must do its own error checking"
/// (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The call succeeded.
    Ok,
    /// The daemon does not implement the requested API.
    UnknownApi,
    /// The daemon could not decode the command payload.
    Malformed,
    /// The underlying library (simulated CUDA, ML runtime, ...) failed;
    /// the code is vendor-specific.
    VendorError(u32),
}

impl Status {
    pub(crate) fn to_u32(self) -> u32 {
        match self {
            Status::Ok => 0,
            Status::UnknownApi => 1,
            Status::Malformed => 2,
            Status::VendorError(code) => 0x1000 + code,
        }
    }

    pub(crate) fn from_u32(v: u32) -> Status {
        match v {
            0 => Status::Ok,
            1 => Status::UnknownApi,
            2 => Status::Malformed,
            v => Status::VendorError(v.saturating_sub(0x1000)),
        }
    }

    /// True for [`Status::Ok`].
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }
}

const COMMAND_MAGIC: u8 = 0xC5;
const RESPONSE_MAGIC: u8 = 0x5C;

/// FNV-1a over the frame body; appended as a little-endian u32 trailer so a
/// corrupted frame is *detected* at decode instead of silently delivering a
/// garbled payload. Real Netlink rides on checksummed lower layers; a frame
/// that survives this check is treated as intact.
fn frame_checksum(body: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in body {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Verifies and strips the checksum trailer, returning the frame body.
fn checked_body(frame: &[u8]) -> Result<&[u8], WireError> {
    let Some(split) = frame.len().checked_sub(4) else {
        return Err(WireError::Truncated { wanted: "frame checksum", remaining: frame.len() });
    };
    let (body, trailer) = frame.split_at(split);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = frame_checksum(body);
    if computed != stored {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    Ok(body)
}

/// Seals the frame body accumulated in `out` by appending its checksum,
/// computed in place over the assembled bytes — no intermediate copy (the
/// old `seal_frame(Vec)` took the body by value out of an `Encoder`'s
/// `finish().to_vec()`, costing two extra payload-sized copies per frame).
fn seal_in_place(out: &mut Vec<u8>) {
    let sum = frame_checksum(out);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Reserved response sequence number for frames whose command could not be
/// attributed to any caller (the header itself was unreadable). Callers
/// never allocate this value, so a pipelined stub can't mis-match it.
pub const SEQ_UNMATCHED: u64 = u64::MAX;

/// A serialized API invocation traveling kernel → daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Which API to execute.
    pub api: ApiId,
    /// Sequence number echoed by the response.
    pub seq: u64,
    /// Encoded arguments.
    pub payload: Bytes,
}

/// Borrowed view of a decoded command: the payload points into the
/// received frame instead of being copied out of it.
///
/// This is the zero-copy decode path for transports that keep the frame
/// alive while the handler runs (the daemon's serve loop holds the frame
/// across dispatch). [`CommandRef::to_owned`] is the copying fallback for
/// callers that must outlive the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRef<'a> {
    /// Which API to execute.
    pub api: ApiId,
    /// Sequence number echoed by the response.
    pub seq: u64,
    /// Encoded arguments, borrowed from the frame.
    pub payload: &'a [u8],
}

impl CommandRef<'_> {
    /// Copying fallback: detaches the payload from the frame.
    pub fn to_owned(&self) -> Command {
        perf::note_copy(self.payload.len());
        Command { api: self.api, seq: self.seq, payload: Bytes::copy_from_slice(self.payload) }
    }
}

impl Command {
    /// Encodes the command into a transmittable frame (checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Encodes into `out`, reusing its allocation across calls: the buffer
    /// is cleared and the frame written directly — header, length-prefixed
    /// payload, checksum computed in place. One payload memcpy total; the
    /// old `Encoder` → `finish()` → `to_vec()` chain cost three.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len = u32::try_from(self.payload.len()).expect("command payload too large");
        out.clear();
        out.reserve(self.encoded_len());
        out.push(COMMAND_MAGIC);
        out.extend_from_slice(&self.api.0.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.payload);
        perf::note_copy(self.payload.len());
        seal_in_place(out);
    }

    /// Decodes a frame back into an owned command (copying fallback of
    /// [`Command::decode_borrowed`], same validation).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is truncated, corrupted
    /// (checksum mismatch), has the wrong magic, or carries trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Command, WireError> {
        Ok(Self::decode_borrowed(frame)?.to_owned())
    }

    /// Decodes a frame into a borrowed view — full checksum, magic, and
    /// trailing-bytes validation, but the payload stays in the frame.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Command::decode`].
    pub fn decode_borrowed(frame: &[u8]) -> Result<CommandRef<'_>, WireError> {
        let body = checked_body(frame)?;
        let mut d = Decoder::new(body);
        let magic = d.get_u8()?;
        if magic != COMMAND_MAGIC {
            return Err(WireError::Truncated { wanted: "command magic", remaining: frame.len() });
        }
        let api = ApiId(d.get_u32()?);
        let seq = d.get_u64()?;
        let payload = d.get_bytes()?;
        d.finish()?;
        Ok(CommandRef { api, seq, payload })
    }

    /// Size of the encoded frame, used for transport cost accounting.
    pub fn encoded_len(&self) -> usize {
        1 + 4 + 8 + 4 + self.payload.len() + 4
    }

    /// Best-effort recovery of the sequence number from a frame that may
    /// fail full decoding (e.g. a corrupted payload): the header
    /// `magic | api | seq` must be intact. Lets the daemon route a
    /// `Malformed` response back to the caller that sent the frame instead
    /// of desyncing a pipelined stub.
    pub fn peek_seq(frame: &[u8]) -> Option<u64> {
        if frame.len() < 13 || frame[0] != COMMAND_MAGIC {
            return None;
        }
        let mut d = Decoder::new(&frame[5..13]);
        d.get_u64().ok()
    }
}

/// A serialized result traveling daemon → kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the command's sequence number.
    pub seq: u64,
    /// Incarnation epoch of the daemon that produced this response.
    ///
    /// The daemon stamps every frame with the epoch it was serving under;
    /// after a crash/restart the supervisor bumps the epoch, and the call
    /// engine discards any response carrying a stale incarnation so an
    /// answer computed against dead user-space state can never be
    /// delivered. Epoch `0` is the primordial (never-restarted) daemon.
    pub epoch: u64,
    /// Call status.
    pub status: Status,
    /// Encoded results ("the return code and the pointer returned by the
    /// API call" — §4).
    pub payload: Bytes,
}

/// Borrowed view of a decoded response; see [`CommandRef`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseRef<'a> {
    /// Echo of the command's sequence number.
    pub seq: u64,
    /// Incarnation epoch of the responding daemon.
    pub epoch: u64,
    /// Call status.
    pub status: Status,
    /// Encoded results, borrowed from the frame.
    pub payload: &'a [u8],
}

impl ResponseRef<'_> {
    /// Copying fallback: detaches the payload from the frame.
    pub fn to_owned(&self) -> Response {
        perf::note_copy(self.payload.len());
        Response {
            seq: self.seq,
            epoch: self.epoch,
            status: self.status,
            payload: Bytes::copy_from_slice(self.payload),
        }
    }
}

impl Response {
    /// Encodes the response into a transmittable frame (checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Encodes into `out`, reusing its allocation; see
    /// [`Command::encode_into`].
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len = u32::try_from(self.payload.len()).expect("response payload too large");
        out.clear();
        out.reserve(self.encoded_len());
        out.push(RESPONSE_MAGIC);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.status.to_u32().to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.payload);
        perf::note_copy(self.payload.len());
        seal_in_place(out);
    }

    /// Decodes a frame back into an owned response (copying fallback of
    /// [`Response::decode_borrowed`], same validation).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is truncated, corrupted
    /// (checksum mismatch), has the wrong magic, or carries trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Response, WireError> {
        Ok(Self::decode_borrowed(frame)?.to_owned())
    }

    /// Decodes a frame into a borrowed view — full validation, payload
    /// stays in the frame.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Response::decode`].
    pub fn decode_borrowed(frame: &[u8]) -> Result<ResponseRef<'_>, WireError> {
        let body = checked_body(frame)?;
        let mut d = Decoder::new(body);
        let magic = d.get_u8()?;
        if magic != RESPONSE_MAGIC {
            return Err(WireError::Truncated { wanted: "response magic", remaining: frame.len() });
        }
        let seq = d.get_u64()?;
        let epoch = d.get_u64()?;
        let status = Status::from_u32(d.get_u32()?);
        let payload = d.get_bytes()?;
        d.finish()?;
        Ok(ResponseRef { seq, epoch, status, payload })
    }

    /// Size of the encoded frame.
    pub fn encoded_len(&self) -> usize {
        1 + 8 + 8 + 4 + 4 + self.payload.len() + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        let cmd = Command { api: ApiId(42), seq: 7, payload: Bytes::from_static(b"args") };
        let frame = cmd.encode();
        assert_eq!(frame.len(), cmd.encoded_len());
        assert_eq!(Command::decode(&frame).unwrap(), cmd);
    }

    #[test]
    fn response_roundtrip_all_statuses() {
        for status in [Status::Ok, Status::UnknownApi, Status::Malformed, Status::VendorError(3)] {
            let r = Response { seq: 9, epoch: 3, status, payload: Bytes::from_static(&[1, 2]) };
            let frame = r.encode();
            assert_eq!(frame.len(), r.encoded_len());
            assert_eq!(Response::decode(&frame).unwrap(), r);
        }
    }

    #[test]
    fn response_epoch_survives_roundtrip() {
        for epoch in [0u64, 1, 42, u64::MAX] {
            let r = Response { seq: 1, epoch, status: Status::Ok, payload: Bytes::new() };
            assert_eq!(Response::decode(&r.encode()).unwrap().epoch, epoch);
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let cmd = Command { api: ApiId(1), seq: 1, payload: Bytes::new() };
        let frame = cmd.encode();
        assert!(Response::decode(&frame).is_err());
        let resp = Response { seq: 1, epoch: 0, status: Status::Ok, payload: Bytes::new() };
        assert!(Command::decode(&resp.encode()).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let cmd = Command { api: ApiId(1), seq: 1, payload: Bytes::from_static(&[0; 32]) };
        let frame = cmd.encode();
        assert!(Command::decode(&frame[..frame.len() - 1]).is_err());
        assert!(Command::decode(&[]).is_err());
    }

    #[test]
    fn status_vendor_code_roundtrip() {
        let s = Status::VendorError(77);
        assert_eq!(Status::from_u32(s.to_u32()), s);
        assert!(!s.is_ok());
        assert!(Status::Ok.is_ok());
    }

    #[test]
    fn corrupted_frame_is_detected_by_checksum() {
        let cmd = Command { api: ApiId(5), seq: 99, payload: Bytes::from_static(&[1, 2, 3, 4]) };
        let mut frame = cmd.encode();
        // Flip one payload bit: without the trailer this decoded "cleanly"
        // into a garbled command; now it is classified as corruption.
        frame[15] ^= 0x01;
        assert!(matches!(Command::decode(&frame), Err(WireError::ChecksumMismatch { .. })));

        let resp = Response {
            seq: 99,
            epoch: 1,
            status: Status::Ok,
            payload: Bytes::from_static(&[9, 9]),
        };
        let mut rframe = resp.encode();
        rframe[14] ^= 0x80;
        assert!(matches!(Response::decode(&rframe), Err(WireError::ChecksumMismatch { .. })));
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let mut buf = Vec::new();
        // Shrinking payloads exercise the clear-then-write path: stale bytes
        // from a longer earlier frame must never leak into a shorter one.
        for len in [64usize, 7, 0, 33] {
            let cmd =
                Command { api: ApiId(9), seq: len as u64, payload: Bytes::from(vec![0xAB; len]) };
            cmd.encode_into(&mut buf);
            assert_eq!(buf, cmd.encode());
            assert_eq!(buf.len(), cmd.encoded_len());

            let resp = Response {
                seq: len as u64,
                epoch: 2,
                status: Status::Ok,
                payload: Bytes::from(vec![0xCD; len]),
            };
            resp.encode_into(&mut buf);
            assert_eq!(buf, resp.encode());
            assert_eq!(buf.len(), resp.encoded_len());
        }
    }

    #[test]
    fn borrowed_decode_matches_owned_and_points_into_frame() {
        let cmd = Command { api: ApiId(17), seq: 5, payload: Bytes::from_static(b"payload!") };
        let frame = cmd.encode();
        let view = Command::decode_borrowed(&frame).unwrap();
        assert_eq!(view.to_owned(), cmd);
        // The borrowed payload aliases the frame, not a copy.
        let frame_range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
        assert!(frame_range.contains(&(view.payload.as_ptr() as usize)));

        let resp = Response {
            seq: 5,
            epoch: 1,
            status: Status::VendorError(2),
            payload: Bytes::from_static(b"ret"),
        };
        let rframe = resp.encode();
        let rview = Response::decode_borrowed(&rframe).unwrap();
        assert_eq!(rview.to_owned(), resp);
        let rframe_range = rframe.as_ptr() as usize..rframe.as_ptr() as usize + rframe.len();
        assert!(rframe_range.contains(&(rview.payload.as_ptr() as usize)));
    }

    #[test]
    fn borrowed_decode_rejects_corrupt_frames_like_owned() {
        let cmd = Command { api: ApiId(5), seq: 99, payload: Bytes::from_static(&[1, 2, 3, 4]) };
        let mut frame = cmd.encode();
        frame[15] ^= 0x01;
        assert!(matches!(
            Command::decode_borrowed(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
        assert!(Command::decode_borrowed(&frame[..3]).is_err());

        let resp =
            Response { seq: 9, epoch: 0, status: Status::Ok, payload: Bytes::from_static(&[8; 8]) };
        let mut rframe = resp.encode();
        rframe[14] ^= 0x80;
        assert!(matches!(
            Response::decode_borrowed(&rframe),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn peek_seq_recovers_from_payload_corruption() {
        let cmd =
            Command { api: ApiId(3), seq: 0xDEAD_BEEF, payload: Bytes::from_static(&[7; 16]) };
        let mut frame = cmd.encode();
        // Garble the payload length prefix: full decode fails, header survives.
        frame[13] ^= 0xFF;
        assert!(Command::decode(&frame).is_err());
        assert_eq!(Command::peek_seq(&frame), Some(0xDEAD_BEEF));
        // A frame too short for the header, or with the wrong magic, yields None.
        assert_eq!(Command::peek_seq(&frame[..12]), None);
        let mut bad_magic = cmd.encode();
        bad_magic[0] = 0x00;
        assert_eq!(Command::peek_seq(&bad_magic), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_command() -> impl Strategy<Value = Command> {
        (any::<u32>(), 0..u64::MAX, proptest::collection::vec(any::<u8>(), 0..128)).prop_map(
            |(api, seq, payload)| Command { api: ApiId(api), seq, payload: Bytes::from(payload) },
        )
    }

    fn arb_response() -> impl Strategy<Value = Response> {
        (0..u64::MAX, any::<u64>(), 0u32..0x2000, proptest::collection::vec(any::<u8>(), 0..128))
            .prop_map(|(seq, epoch, status, payload)| Response {
                seq,
                epoch,
                status: Status::from_u32(status),
                payload: Bytes::from(payload),
            })
    }

    proptest! {
        /// Bit-flipping a valid command frame never panics the decoder,
        /// and the result is classified correctly: with the checksum
        /// trailer, essentially every flip is rejected as a WireError; in
        /// the (astronomically unlikely) event a mutated frame is accepted,
        /// it must at least be self-consistent.
        #[test]
        fn command_decode_survives_bit_flips(cmd in arb_command(), bit in 0usize..4096) {
            let mut frame = cmd.encode();
            let bit = bit % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            match Command::decode(&frame) {
                Err(_) => {} // rejected: fine
                Ok(got) => {
                    // Accepted frames must re-encode to exactly the mutated
                    // bytes — no silent reinterpretation.
                    prop_assert_eq!(got.encode(), frame);
                }
            }
        }

        /// Truncating a valid command frame at any point is always an error
        /// (never a panic, never a short-but-accepted decode).
        #[test]
        fn command_decode_rejects_truncation(cmd in arb_command(), cut in 0usize..4096) {
            let frame = cmd.encode();
            let cut = cut % frame.len();
            prop_assert!(Command::decode(&frame[..cut]).is_err());
        }

        /// Same bit-flip robustness for responses.
        #[test]
        fn response_decode_survives_bit_flips(resp in arb_response(), bit in 0usize..4096) {
            let mut frame = resp.encode();
            let bit = bit % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            match Response::decode(&frame) {
                Err(_) => {}
                // The status mapping is lossy (unknown codes collapse into
                // VendorError), so exact byte re-encode isn't guaranteed —
                // but one decode/encode round trip must be a fixpoint.
                Ok(got) => {
                    let redecoded = Response::decode(&got.encode()).unwrap();
                    prop_assert_eq!(redecoded, got);
                }
            }
        }

        /// Same truncation robustness for responses.
        #[test]
        fn response_decode_rejects_truncation(resp in arb_response(), cut in 0usize..4096) {
            let frame = resp.encode();
            let cut = cut % frame.len();
            prop_assert!(Response::decode(&frame[..cut]).is_err());
        }

        /// peek_seq agrees with full decode whenever full decode succeeds.
        #[test]
        fn peek_seq_consistent_with_decode(cmd in arb_command()) {
            let frame = cmd.encode();
            prop_assert_eq!(Command::peek_seq(&frame), Some(cmd.seq));
        }

        /// Borrowed and owned decode agree verdict-for-verdict on arbitrary
        /// frames (valid or bit-flipped), and encode_into is byte-identical
        /// to encode even when the buffer carries a stale longer frame.
        #[test]
        fn borrowed_decode_equals_owned(cmd in arb_command(), bit in 0usize..4096) {
            let mut frame = cmd.encode();
            let bit = bit % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            match (Command::decode_borrowed(&frame), Command::decode(&frame)) {
                (Ok(view), Ok(owned)) => prop_assert_eq!(view.to_owned(), owned),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "decode disagreement: {:?} vs {:?}", a, b),
            }
            let mut buf = vec![0xEE; 4096];
            cmd.encode_into(&mut buf);
            prop_assert_eq!(buf, cmd.encode());
        }

        /// Same borrowed/owned agreement for responses.
        #[test]
        fn response_borrowed_decode_equals_owned(resp in arb_response(), bit in 0usize..4096) {
            let mut frame = resp.encode();
            let bit = bit % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            match (Response::decode_borrowed(&frame), Response::decode(&frame)) {
                (Ok(view), Ok(owned)) => prop_assert_eq!(view.to_owned(), owned),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "decode disagreement: {:?} vs {:?}", a, b),
            }
            let mut buf = vec![0xEE; 4096];
            resp.encode_into(&mut buf);
            prop_assert_eq!(buf, resp.encode());
        }
    }
}
