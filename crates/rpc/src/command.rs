//! Framed command / response messages.
//!
//! A command is "a buffer ... large enough to hold the API function
//! identifier (e.g. a number) and all function arguments" (§4.1). The frame
//! adds a magic byte, a sequence number for response matching, and the API
//! identifier; the payload is opaque to this layer.

use bytes::Bytes;

use crate::wire::{Decoder, Encoder, WireError};

/// Numeric identifier of a remoted API ("e.g. a number" — §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApiId(pub u32);

impl std::fmt::Display for ApiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "api#{}", self.0)
    }
}

/// Result status of a remoted call. "Errors caused when executing an API
/// are forwarded to the application, which must do its own error checking"
/// (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The call succeeded.
    Ok,
    /// The daemon does not implement the requested API.
    UnknownApi,
    /// The daemon could not decode the command payload.
    Malformed,
    /// The underlying library (simulated CUDA, ML runtime, ...) failed;
    /// the code is vendor-specific.
    VendorError(u32),
}

impl Status {
    fn to_u32(self) -> u32 {
        match self {
            Status::Ok => 0,
            Status::UnknownApi => 1,
            Status::Malformed => 2,
            Status::VendorError(code) => 0x1000 + code,
        }
    }

    fn from_u32(v: u32) -> Status {
        match v {
            0 => Status::Ok,
            1 => Status::UnknownApi,
            2 => Status::Malformed,
            v => Status::VendorError(v.saturating_sub(0x1000)),
        }
    }

    /// True for [`Status::Ok`].
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }
}

const COMMAND_MAGIC: u8 = 0xC5;
const RESPONSE_MAGIC: u8 = 0x5C;

/// A serialized API invocation traveling kernel → daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Which API to execute.
    pub api: ApiId,
    /// Sequence number echoed by the response.
    pub seq: u64,
    /// Encoded arguments.
    pub payload: Bytes,
}

impl Command {
    /// Encodes the command into a transmittable frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(COMMAND_MAGIC).put_u32(self.api.0).put_u64(self.seq).put_bytes(&self.payload);
        e.finish().to_vec()
    }

    /// Decodes a frame back into a command.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is truncated, has the wrong
    /// magic, or carries trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Command, WireError> {
        let mut d = Decoder::new(frame);
        let magic = d.get_u8()?;
        if magic != COMMAND_MAGIC {
            return Err(WireError::Truncated { wanted: "command magic", remaining: frame.len() });
        }
        let api = ApiId(d.get_u32()?);
        let seq = d.get_u64()?;
        let payload = Bytes::copy_from_slice(d.get_bytes()?);
        d.finish()?;
        Ok(Command { api, seq, payload })
    }

    /// Size of the encoded frame, used for transport cost accounting.
    pub fn encoded_len(&self) -> usize {
        1 + 4 + 8 + 4 + self.payload.len()
    }
}

/// A serialized result traveling daemon → kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the command's sequence number.
    pub seq: u64,
    /// Call status.
    pub status: Status,
    /// Encoded results ("the return code and the pointer returned by the
    /// API call" — §4).
    pub payload: Bytes,
}

impl Response {
    /// Encodes the response into a transmittable frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(RESPONSE_MAGIC)
            .put_u64(self.seq)
            .put_u32(self.status.to_u32())
            .put_bytes(&self.payload);
        e.finish().to_vec()
    }

    /// Decodes a frame back into a response.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is truncated, has the wrong
    /// magic, or carries trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Response, WireError> {
        let mut d = Decoder::new(frame);
        let magic = d.get_u8()?;
        if magic != RESPONSE_MAGIC {
            return Err(WireError::Truncated { wanted: "response magic", remaining: frame.len() });
        }
        let seq = d.get_u64()?;
        let status = Status::from_u32(d.get_u32()?);
        let payload = Bytes::copy_from_slice(d.get_bytes()?);
        d.finish()?;
        Ok(Response { seq, status, payload })
    }

    /// Size of the encoded frame.
    pub fn encoded_len(&self) -> usize {
        1 + 8 + 4 + 4 + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        let cmd = Command { api: ApiId(42), seq: 7, payload: Bytes::from_static(b"args") };
        let frame = cmd.encode();
        assert_eq!(frame.len(), cmd.encoded_len());
        assert_eq!(Command::decode(&frame).unwrap(), cmd);
    }

    #[test]
    fn response_roundtrip_all_statuses() {
        for status in [Status::Ok, Status::UnknownApi, Status::Malformed, Status::VendorError(3)] {
            let r = Response { seq: 9, status, payload: Bytes::from_static(&[1, 2]) };
            let frame = r.encode();
            assert_eq!(frame.len(), r.encoded_len());
            assert_eq!(Response::decode(&frame).unwrap(), r);
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let cmd = Command { api: ApiId(1), seq: 1, payload: Bytes::new() };
        let frame = cmd.encode();
        assert!(Response::decode(&frame).is_err());
        let resp = Response { seq: 1, status: Status::Ok, payload: Bytes::new() };
        assert!(Command::decode(&resp.encode()).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let cmd = Command { api: ApiId(1), seq: 1, payload: Bytes::from_static(&[0; 32]) };
        let frame = cmd.encode();
        assert!(Command::decode(&frame[..frame.len() - 1]).is_err());
        assert!(Command::decode(&[]).is_err());
    }

    #[test]
    fn status_vendor_code_roundtrip() {
        let s = Status::VendorError(77);
        assert_eq!(Status::from_u32(s.to_u32()), s);
        assert!(!s.is_ok());
        assert!(Status::Ok.is_ok());
    }
}
