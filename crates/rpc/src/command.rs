//! Framed command / response messages.
//!
//! A command is "a buffer ... large enough to hold the API function
//! identifier (e.g. a number) and all function arguments" (§4.1). The frame
//! adds a magic byte, a sequence number for response matching, and the API
//! identifier; the payload is opaque to this layer.

use bytes::Bytes;

use crate::wire::{Decoder, Encoder, WireError};

/// Numeric identifier of a remoted API ("e.g. a number" — §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApiId(pub u32);

impl std::fmt::Display for ApiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "api#{}", self.0)
    }
}

/// Result status of a remoted call. "Errors caused when executing an API
/// are forwarded to the application, which must do its own error checking"
/// (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The call succeeded.
    Ok,
    /// The daemon does not implement the requested API.
    UnknownApi,
    /// The daemon could not decode the command payload.
    Malformed,
    /// The underlying library (simulated CUDA, ML runtime, ...) failed;
    /// the code is vendor-specific.
    VendorError(u32),
}

impl Status {
    fn to_u32(self) -> u32 {
        match self {
            Status::Ok => 0,
            Status::UnknownApi => 1,
            Status::Malformed => 2,
            Status::VendorError(code) => 0x1000 + code,
        }
    }

    fn from_u32(v: u32) -> Status {
        match v {
            0 => Status::Ok,
            1 => Status::UnknownApi,
            2 => Status::Malformed,
            v => Status::VendorError(v.saturating_sub(0x1000)),
        }
    }

    /// True for [`Status::Ok`].
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }
}

const COMMAND_MAGIC: u8 = 0xC5;
const RESPONSE_MAGIC: u8 = 0x5C;

/// FNV-1a over the frame body; appended as a little-endian u32 trailer so a
/// corrupted frame is *detected* at decode instead of silently delivering a
/// garbled payload. Real Netlink rides on checksummed lower layers; a frame
/// that survives this check is treated as intact.
fn frame_checksum(body: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in body {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Verifies and strips the checksum trailer, returning the frame body.
fn checked_body(frame: &[u8]) -> Result<&[u8], WireError> {
    let Some(split) = frame.len().checked_sub(4) else {
        return Err(WireError::Truncated { wanted: "frame checksum", remaining: frame.len() });
    };
    let (body, trailer) = frame.split_at(split);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = frame_checksum(body);
    if computed != stored {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    Ok(body)
}

/// Appends the checksum trailer to an encoded frame body.
fn seal_frame(mut body: Vec<u8>) -> Vec<u8> {
    let sum = frame_checksum(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    body
}

/// Reserved response sequence number for frames whose command could not be
/// attributed to any caller (the header itself was unreadable). Callers
/// never allocate this value, so a pipelined stub can't mis-match it.
pub const SEQ_UNMATCHED: u64 = u64::MAX;

/// A serialized API invocation traveling kernel → daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Which API to execute.
    pub api: ApiId,
    /// Sequence number echoed by the response.
    pub seq: u64,
    /// Encoded arguments.
    pub payload: Bytes,
}

impl Command {
    /// Encodes the command into a transmittable frame (checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(COMMAND_MAGIC).put_u32(self.api.0).put_u64(self.seq).put_bytes(&self.payload);
        seal_frame(e.finish().to_vec())
    }

    /// Decodes a frame back into a command.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is truncated, corrupted
    /// (checksum mismatch), has the wrong magic, or carries trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Command, WireError> {
        let body = checked_body(frame)?;
        let mut d = Decoder::new(body);
        let magic = d.get_u8()?;
        if magic != COMMAND_MAGIC {
            return Err(WireError::Truncated { wanted: "command magic", remaining: frame.len() });
        }
        let api = ApiId(d.get_u32()?);
        let seq = d.get_u64()?;
        let payload = Bytes::copy_from_slice(d.get_bytes()?);
        d.finish()?;
        Ok(Command { api, seq, payload })
    }

    /// Size of the encoded frame, used for transport cost accounting.
    pub fn encoded_len(&self) -> usize {
        1 + 4 + 8 + 4 + self.payload.len() + 4
    }

    /// Best-effort recovery of the sequence number from a frame that may
    /// fail full decoding (e.g. a corrupted payload): the header
    /// `magic | api | seq` must be intact. Lets the daemon route a
    /// `Malformed` response back to the caller that sent the frame instead
    /// of desyncing a pipelined stub.
    pub fn peek_seq(frame: &[u8]) -> Option<u64> {
        if frame.len() < 13 || frame[0] != COMMAND_MAGIC {
            return None;
        }
        let mut d = Decoder::new(&frame[5..13]);
        d.get_u64().ok()
    }
}

/// A serialized result traveling daemon → kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the command's sequence number.
    pub seq: u64,
    /// Incarnation epoch of the daemon that produced this response.
    ///
    /// The daemon stamps every frame with the epoch it was serving under;
    /// after a crash/restart the supervisor bumps the epoch, and the call
    /// engine discards any response carrying a stale incarnation so an
    /// answer computed against dead user-space state can never be
    /// delivered. Epoch `0` is the primordial (never-restarted) daemon.
    pub epoch: u64,
    /// Call status.
    pub status: Status,
    /// Encoded results ("the return code and the pointer returned by the
    /// API call" — §4).
    pub payload: Bytes,
}

impl Response {
    /// Encodes the response into a transmittable frame (checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(RESPONSE_MAGIC)
            .put_u64(self.seq)
            .put_u64(self.epoch)
            .put_u32(self.status.to_u32())
            .put_bytes(&self.payload);
        seal_frame(e.finish().to_vec())
    }

    /// Decodes a frame back into a response.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame is truncated, corrupted
    /// (checksum mismatch), has the wrong magic, or carries trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Response, WireError> {
        let body = checked_body(frame)?;
        let mut d = Decoder::new(body);
        let magic = d.get_u8()?;
        if magic != RESPONSE_MAGIC {
            return Err(WireError::Truncated { wanted: "response magic", remaining: frame.len() });
        }
        let seq = d.get_u64()?;
        let epoch = d.get_u64()?;
        let status = Status::from_u32(d.get_u32()?);
        let payload = Bytes::copy_from_slice(d.get_bytes()?);
        d.finish()?;
        Ok(Response { seq, epoch, status, payload })
    }

    /// Size of the encoded frame.
    pub fn encoded_len(&self) -> usize {
        1 + 8 + 8 + 4 + 4 + self.payload.len() + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        let cmd = Command { api: ApiId(42), seq: 7, payload: Bytes::from_static(b"args") };
        let frame = cmd.encode();
        assert_eq!(frame.len(), cmd.encoded_len());
        assert_eq!(Command::decode(&frame).unwrap(), cmd);
    }

    #[test]
    fn response_roundtrip_all_statuses() {
        for status in [Status::Ok, Status::UnknownApi, Status::Malformed, Status::VendorError(3)] {
            let r = Response { seq: 9, epoch: 3, status, payload: Bytes::from_static(&[1, 2]) };
            let frame = r.encode();
            assert_eq!(frame.len(), r.encoded_len());
            assert_eq!(Response::decode(&frame).unwrap(), r);
        }
    }

    #[test]
    fn response_epoch_survives_roundtrip() {
        for epoch in [0u64, 1, 42, u64::MAX] {
            let r = Response { seq: 1, epoch, status: Status::Ok, payload: Bytes::new() };
            assert_eq!(Response::decode(&r.encode()).unwrap().epoch, epoch);
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let cmd = Command { api: ApiId(1), seq: 1, payload: Bytes::new() };
        let frame = cmd.encode();
        assert!(Response::decode(&frame).is_err());
        let resp = Response { seq: 1, epoch: 0, status: Status::Ok, payload: Bytes::new() };
        assert!(Command::decode(&resp.encode()).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let cmd = Command { api: ApiId(1), seq: 1, payload: Bytes::from_static(&[0; 32]) };
        let frame = cmd.encode();
        assert!(Command::decode(&frame[..frame.len() - 1]).is_err());
        assert!(Command::decode(&[]).is_err());
    }

    #[test]
    fn status_vendor_code_roundtrip() {
        let s = Status::VendorError(77);
        assert_eq!(Status::from_u32(s.to_u32()), s);
        assert!(!s.is_ok());
        assert!(Status::Ok.is_ok());
    }

    #[test]
    fn corrupted_frame_is_detected_by_checksum() {
        let cmd = Command { api: ApiId(5), seq: 99, payload: Bytes::from_static(&[1, 2, 3, 4]) };
        let mut frame = cmd.encode();
        // Flip one payload bit: without the trailer this decoded "cleanly"
        // into a garbled command; now it is classified as corruption.
        frame[15] ^= 0x01;
        assert!(matches!(Command::decode(&frame), Err(WireError::ChecksumMismatch { .. })));

        let resp = Response {
            seq: 99,
            epoch: 1,
            status: Status::Ok,
            payload: Bytes::from_static(&[9, 9]),
        };
        let mut rframe = resp.encode();
        rframe[14] ^= 0x80;
        assert!(matches!(Response::decode(&rframe), Err(WireError::ChecksumMismatch { .. })));
    }

    #[test]
    fn peek_seq_recovers_from_payload_corruption() {
        let cmd =
            Command { api: ApiId(3), seq: 0xDEAD_BEEF, payload: Bytes::from_static(&[7; 16]) };
        let mut frame = cmd.encode();
        // Garble the payload length prefix: full decode fails, header survives.
        frame[13] ^= 0xFF;
        assert!(Command::decode(&frame).is_err());
        assert_eq!(Command::peek_seq(&frame), Some(0xDEAD_BEEF));
        // A frame too short for the header, or with the wrong magic, yields None.
        assert_eq!(Command::peek_seq(&frame[..12]), None);
        let mut bad_magic = cmd.encode();
        bad_magic[0] = 0x00;
        assert_eq!(Command::peek_seq(&bad_magic), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_command() -> impl Strategy<Value = Command> {
        (any::<u32>(), 0..u64::MAX, proptest::collection::vec(any::<u8>(), 0..128)).prop_map(
            |(api, seq, payload)| Command { api: ApiId(api), seq, payload: Bytes::from(payload) },
        )
    }

    fn arb_response() -> impl Strategy<Value = Response> {
        (0..u64::MAX, any::<u64>(), 0u32..0x2000, proptest::collection::vec(any::<u8>(), 0..128))
            .prop_map(|(seq, epoch, status, payload)| Response {
                seq,
                epoch,
                status: Status::from_u32(status),
                payload: Bytes::from(payload),
            })
    }

    proptest! {
        /// Bit-flipping a valid command frame never panics the decoder,
        /// and the result is classified correctly: with the checksum
        /// trailer, essentially every flip is rejected as a WireError; in
        /// the (astronomically unlikely) event a mutated frame is accepted,
        /// it must at least be self-consistent.
        #[test]
        fn command_decode_survives_bit_flips(cmd in arb_command(), bit in 0usize..4096) {
            let mut frame = cmd.encode();
            let bit = bit % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            match Command::decode(&frame) {
                Err(_) => {} // rejected: fine
                Ok(got) => {
                    // Accepted frames must re-encode to exactly the mutated
                    // bytes — no silent reinterpretation.
                    prop_assert_eq!(got.encode(), frame);
                }
            }
        }

        /// Truncating a valid command frame at any point is always an error
        /// (never a panic, never a short-but-accepted decode).
        #[test]
        fn command_decode_rejects_truncation(cmd in arb_command(), cut in 0usize..4096) {
            let frame = cmd.encode();
            let cut = cut % frame.len();
            prop_assert!(Command::decode(&frame[..cut]).is_err());
        }

        /// Same bit-flip robustness for responses.
        #[test]
        fn response_decode_survives_bit_flips(resp in arb_response(), bit in 0usize..4096) {
            let mut frame = resp.encode();
            let bit = bit % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            match Response::decode(&frame) {
                Err(_) => {}
                // The status mapping is lossy (unknown codes collapse into
                // VendorError), so exact byte re-encode isn't guaranteed —
                // but one decode/encode round trip must be a fixpoint.
                Ok(got) => {
                    let redecoded = Response::decode(&got.encode()).unwrap();
                    prop_assert_eq!(redecoded, got);
                }
            }
        }

        /// Same truncation robustness for responses.
        #[test]
        fn response_decode_rejects_truncation(resp in arb_response(), cut in 0usize..4096) {
            let frame = resp.encode();
            let cut = cut % frame.len();
            prop_assert!(Response::decode(&frame[..cut]).is_err());
        }

        /// peek_seq agrees with full decode whenever full decode succeeds.
        #[test]
        fn peek_seq_consistent_with_decode(cmd in arb_command()) {
            let frame = cmd.encode();
            prop_assert_eq!(Command::peek_seq(&frame), Some(cmd.seq));
        }
    }
}
