//! Copy accounting for the zero-copy data path.
//!
//! LAKE's Fig 6 argument is that above ~4KB the cost of a remoted call is
//! dominated by memcpys, so the win of the shm path is best expressed as
//! *bytes copied per call*. These counters are bumped at every
//! payload-scale memcpy on the RPC data path (frame assembly, owned decode,
//! retry-buffer clones, staging writes) and at every hand-off that *avoided*
//! one (borrowed decode, shm handle-passing), so a bench — or
//! `Lake::perf_report()` — can difference two snapshots and report exactly
//! how many bytes moved on behalf of a workload.
//!
//! Accounting is two-level. Each [`super::CallEngine`] owns a
//! [`PerfCounters`] instance so a multi-shard deployment can attribute
//! copies to the engine that performed them without double-counting, and
//! every instance bump also rolls up into a process-wide set of atomics
//! (readable via [`snapshot`]) for backward compatibility with callers
//! that predate per-engine accounting. Copies recorded below any engine
//! (frame codecs, standalone serve loops) go through the free functions
//! [`note_copy`]/[`note_zero_copy`] and land in the rollup only. Tests
//! that assert on the rollup should compare snapshot *deltas* and
//! tolerate unrelated traffic from concurrently running tests.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);
static COPIES: AtomicU64 = AtomicU64::new(0);
static ZERO_COPY_HITS: AtomicU64 = AtomicU64::new(0);
static BYTES_ZERO_COPIED: AtomicU64 = AtomicU64::new(0);

/// Records one memcpy of `bytes` on the RPC data path (process-wide
/// rollup only — engine-attributed sites use [`PerfCounters::note_copy`]).
#[inline]
pub fn note_copy(bytes: usize) {
    BYTES_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
    COPIES.fetch_add(1, Ordering::Relaxed);
}

/// Records one payload hand-off of `bytes` that avoided a memcpy
/// (borrowed decode, shm handle-passing). Rollup only.
#[inline]
pub fn note_zero_copy(bytes: usize) {
    ZERO_COPY_HITS.fetch_add(1, Ordering::Relaxed);
    BYTES_ZERO_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Per-engine copy counters. Every bump also feeds the process-wide
/// rollup, so summing engine snapshots never exceeds [`snapshot`] and a
/// single-engine process sees identical numbers through either lens.
#[derive(Debug, Default)]
pub struct PerfCounters {
    bytes_copied: AtomicU64,
    copies: AtomicU64,
    zero_copy_hits: AtomicU64,
    bytes_zero_copied: AtomicU64,
}

impl PerfCounters {
    /// A fresh, zeroed counter set.
    pub const fn new() -> Self {
        PerfCounters {
            bytes_copied: AtomicU64::new(0),
            copies: AtomicU64::new(0),
            zero_copy_hits: AtomicU64::new(0),
            bytes_zero_copied: AtomicU64::new(0),
        }
    }

    /// Records one memcpy of `bytes` against this engine (and the rollup).
    #[inline]
    pub fn note_copy(&self, bytes: usize) {
        self.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
        self.copies.fetch_add(1, Ordering::Relaxed);
        note_copy(bytes);
    }

    /// Records one avoided memcpy of `bytes` against this engine (and the
    /// rollup).
    #[inline]
    pub fn note_zero_copy(&self, bytes: usize) {
        self.zero_copy_hits.fetch_add(1, Ordering::Relaxed);
        self.bytes_zero_copied.fetch_add(bytes as u64, Ordering::Relaxed);
        note_zero_copy(bytes);
    }

    /// Reads this engine's counters.
    pub fn snapshot(&self) -> PerfSnapshot {
        PerfSnapshot {
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            copies: self.copies.load(Ordering::Relaxed),
            zero_copy_hits: self.zero_copy_hits.load(Ordering::Relaxed),
            bytes_zero_copied: self.bytes_zero_copied.load(Ordering::Relaxed),
        }
    }

    /// Zeroes this engine's counters. The process-wide rollup is left
    /// untouched: it is a monotonic history, not a sum of live engines.
    pub fn reset(&self) {
        self.bytes_copied.store(0, Ordering::Relaxed);
        self.copies.store(0, Ordering::Relaxed);
        self.zero_copy_hits.store(0, Ordering::Relaxed);
        self.bytes_zero_copied.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of the copy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfSnapshot {
    /// Total bytes memcpy'd on the RPC data path.
    pub bytes_copied: u64,
    /// Number of memcpys behind `bytes_copied`.
    pub copies: u64,
    /// Payload hand-offs that avoided a copy.
    pub zero_copy_hits: u64,
    /// Bytes delivered through those zero-copy hand-offs.
    pub bytes_zero_copied: u64,
}

impl PerfSnapshot {
    /// Counter-wise `self - earlier`, for before/after measurements.
    pub fn since(&self, earlier: &PerfSnapshot) -> PerfSnapshot {
        PerfSnapshot {
            bytes_copied: self.bytes_copied.wrapping_sub(earlier.bytes_copied),
            copies: self.copies.wrapping_sub(earlier.copies),
            zero_copy_hits: self.zero_copy_hits.wrapping_sub(earlier.zero_copy_hits),
            bytes_zero_copied: self.bytes_zero_copied.wrapping_sub(earlier.bytes_zero_copied),
        }
    }

    /// Counter-wise difference against a later snapshot — the measurement
    /// taken *after* `self`. `a.delta(&b)` reads as "what happened between
    /// a and b"; equivalent to `b.since(&a)`.
    pub fn delta(&self, later: &PerfSnapshot) -> PerfSnapshot {
        later.since(self)
    }

    /// Counter-wise `self + other`, for aggregating per-engine snapshots
    /// into a fleet total.
    pub fn merged(&self, other: &PerfSnapshot) -> PerfSnapshot {
        PerfSnapshot {
            bytes_copied: self.bytes_copied.wrapping_add(other.bytes_copied),
            copies: self.copies.wrapping_add(other.copies),
            zero_copy_hits: self.zero_copy_hits.wrapping_add(other.zero_copy_hits),
            bytes_zero_copied: self.bytes_zero_copied.wrapping_add(other.bytes_zero_copied),
        }
    }
}

/// Reads the current process-wide rollup values.
pub fn snapshot() -> PerfSnapshot {
    PerfSnapshot {
        bytes_copied: BYTES_COPIED.load(Ordering::Relaxed),
        copies: COPIES.load(Ordering::Relaxed),
        zero_copy_hits: ZERO_COPY_HITS.load(Ordering::Relaxed),
        bytes_zero_copied: BYTES_ZERO_COPIED.load(Ordering::Relaxed),
    }
}

/// Zeroes every rollup counter — for bench harnesses that want absolute
/// numbers per run instead of differencing snapshots.
///
/// Resets are racy against concurrent traffic by construction (the
/// counters are process-wide); tests must keep using snapshot deltas.
pub fn reset() {
    BYTES_COPIED.store(0, Ordering::Relaxed);
    COPIES.store(0, Ordering::Relaxed);
    ZERO_COPY_HITS.store(0, Ordering::Relaxed);
    BYTES_ZERO_COPIED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate() {
        let before = snapshot();
        note_copy(100);
        note_copy(28);
        note_zero_copy(4096);
        let d = snapshot().since(&before);
        // Other tests may run concurrently; deltas are lower bounds.
        assert!(d.bytes_copied >= 128);
        assert!(d.copies >= 2);
        assert!(d.zero_copy_hits >= 1);
        assert!(d.bytes_zero_copied >= 4096);
    }

    #[test]
    fn delta_is_since_reversed() {
        let before = snapshot();
        note_copy(64);
        let after = snapshot();
        assert_eq!(before.delta(&after), after.since(&before));
        assert!(before.delta(&after).bytes_copied >= 64);
    }

    #[test]
    fn reset_rebases_the_counters() {
        note_copy(1);
        reset();
        // Concurrent tests may bump the counters between reset() and
        // snapshot(); all we can assert is that the total dropped to (near)
        // zero rather than keeping its full history. Generous bound: the
        // whole suite copies far more than 16 MiB overall.
        let s = snapshot();
        assert!(s.bytes_copied < 16 * 1024 * 1024, "reset must rebase, got {s:?}");
    }

    #[test]
    fn instance_counters_are_isolated_but_roll_up() {
        let a = PerfCounters::new();
        let b = PerfCounters::new();
        let global_before = snapshot();
        a.note_copy(512);
        a.note_zero_copy(4096);
        b.note_copy(8);
        // Instance views are exact — no cross-talk between engines.
        let sa = a.snapshot();
        assert_eq!((sa.bytes_copied, sa.copies), (512, 1));
        assert_eq!((sa.zero_copy_hits, sa.bytes_zero_copied), (1, 4096));
        assert_eq!(b.snapshot().bytes_copied, 8);
        // Both fed the rollup (lower bounds: other tests run concurrently).
        let d = snapshot().since(&global_before);
        assert!(d.bytes_copied >= 520);
        assert!(d.zero_copy_hits >= 1);
        // Instance reset rebases the instance only.
        a.reset();
        assert_eq!(a.snapshot(), PerfSnapshot::default());
        assert!(snapshot().since(&global_before).bytes_copied >= 520);
    }

    #[test]
    fn merged_sums_counterwise() {
        let a =
            PerfSnapshot { bytes_copied: 1, copies: 2, zero_copy_hits: 3, bytes_zero_copied: 4 };
        let b = PerfSnapshot {
            bytes_copied: 10,
            copies: 20,
            zero_copy_hits: 30,
            bytes_zero_copied: 40,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            PerfSnapshot {
                bytes_copied: 11,
                copies: 22,
                zero_copy_hits: 33,
                bytes_zero_copied: 44
            }
        );
    }
}
