//! Copy accounting for the zero-copy data path.
//!
//! LAKE's Fig 6 argument is that above ~4KB the cost of a remoted call is
//! dominated by memcpys, so the win of the shm path is best expressed as
//! *bytes copied per call*. These process-wide counters are bumped at every
//! payload-scale memcpy on the RPC data path (frame assembly, owned decode,
//! retry-buffer clones, staging writes) and at every hand-off that *avoided*
//! one (borrowed decode, shm handle-passing), so a bench — or
//! `Lake::perf_report()` — can difference two snapshots and report exactly
//! how many bytes moved on behalf of a workload.
//!
//! The counters are global atomics rather than per-engine state because the
//! copies worth counting happen below the engine too (frame codecs, the
//! daemon's serve loop) where no engine handle is in scope. Tests that
//! assert on them should compare snapshot *deltas* and tolerate unrelated
//! traffic from concurrently running tests.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);
static COPIES: AtomicU64 = AtomicU64::new(0);
static ZERO_COPY_HITS: AtomicU64 = AtomicU64::new(0);
static BYTES_ZERO_COPIED: AtomicU64 = AtomicU64::new(0);

/// Records one memcpy of `bytes` on the RPC data path.
#[inline]
pub fn note_copy(bytes: usize) {
    BYTES_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
    COPIES.fetch_add(1, Ordering::Relaxed);
}

/// Records one payload hand-off of `bytes` that avoided a memcpy
/// (borrowed decode, shm handle-passing).
#[inline]
pub fn note_zero_copy(bytes: usize) {
    ZERO_COPY_HITS.fetch_add(1, Ordering::Relaxed);
    BYTES_ZERO_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Point-in-time view of the copy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfSnapshot {
    /// Total bytes memcpy'd on the RPC data path.
    pub bytes_copied: u64,
    /// Number of memcpys behind `bytes_copied`.
    pub copies: u64,
    /// Payload hand-offs that avoided a copy.
    pub zero_copy_hits: u64,
    /// Bytes delivered through those zero-copy hand-offs.
    pub bytes_zero_copied: u64,
}

impl PerfSnapshot {
    /// Counter-wise `self - earlier`, for before/after measurements.
    pub fn since(&self, earlier: &PerfSnapshot) -> PerfSnapshot {
        PerfSnapshot {
            bytes_copied: self.bytes_copied.wrapping_sub(earlier.bytes_copied),
            copies: self.copies.wrapping_sub(earlier.copies),
            zero_copy_hits: self.zero_copy_hits.wrapping_sub(earlier.zero_copy_hits),
            bytes_zero_copied: self.bytes_zero_copied.wrapping_sub(earlier.bytes_zero_copied),
        }
    }

    /// Counter-wise difference against a later snapshot — the measurement
    /// taken *after* `self`. `a.delta(&b)` reads as "what happened between
    /// a and b"; equivalent to `b.since(&a)`.
    pub fn delta(&self, later: &PerfSnapshot) -> PerfSnapshot {
        later.since(self)
    }
}

/// Reads the current counter values.
pub fn snapshot() -> PerfSnapshot {
    PerfSnapshot {
        bytes_copied: BYTES_COPIED.load(Ordering::Relaxed),
        copies: COPIES.load(Ordering::Relaxed),
        zero_copy_hits: ZERO_COPY_HITS.load(Ordering::Relaxed),
        bytes_zero_copied: BYTES_ZERO_COPIED.load(Ordering::Relaxed),
    }
}

/// Zeroes every counter — for bench harnesses that want absolute numbers
/// per run instead of differencing snapshots.
///
/// Resets are racy against concurrent traffic by construction (the
/// counters are process-wide); tests must keep using snapshot deltas.
pub fn reset() {
    BYTES_COPIED.store(0, Ordering::Relaxed);
    COPIES.store(0, Ordering::Relaxed);
    ZERO_COPY_HITS.store(0, Ordering::Relaxed);
    BYTES_ZERO_COPIED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate() {
        let before = snapshot();
        note_copy(100);
        note_copy(28);
        note_zero_copy(4096);
        let d = snapshot().since(&before);
        // Other tests may run concurrently; deltas are lower bounds.
        assert!(d.bytes_copied >= 128);
        assert!(d.copies >= 2);
        assert!(d.zero_copy_hits >= 1);
        assert!(d.bytes_zero_copied >= 4096);
    }

    #[test]
    fn delta_is_since_reversed() {
        let before = snapshot();
        note_copy(64);
        let after = snapshot();
        assert_eq!(before.delta(&after), after.since(&before));
        assert!(before.delta(&after).bytes_copied >= 64);
    }

    #[test]
    fn reset_rebases_the_counters() {
        note_copy(1);
        reset();
        // Concurrent tests may bump the counters between reset() and
        // snapshot(); all we can assert is that the total dropped to (near)
        // zero rather than keeping its full history. Generous bound: the
        // whole suite copies far more than 16 MiB overall.
        let s = snapshot();
        assert!(s.bytes_copied < 16 * 1024 * 1024, "reset must rebase, got {s:?}");
    }
}
