//! Binary argument serialization for remoted commands.
//!
//! Hand-rolled little-endian encoding, mirroring the paper's description of
//! stubs that "serialize an API identifier and all of API parameters into a
//! command". A [`Decoder`] is strict: every read is bounds-checked and the
//! daemon rejects malformed commands instead of trusting the other side.

use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};

/// Error produced when decoding a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the expected field.
    Truncated {
        /// What was being decoded.
        wanted: &'static str,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A length prefix exceeded the remaining buffer.
    BadLength {
        /// The declared length.
        declared: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
    /// A slice was too long for its `u32` length prefix (≥ 4 GiB): encoding
    /// it would silently truncate the length and corrupt the payload.
    TooLarge {
        /// The slice length that overflowed the prefix.
        declared: usize,
    },
    /// A frame's checksum trailer did not match its body: the frame was
    /// corrupted in flight.
    ChecksumMismatch {
        /// The checksum the frame carried.
        stored: u32,
        /// The checksum computed over the received body.
        computed: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { wanted, remaining } => {
                write!(f, "truncated message: wanted {wanted}, {remaining} bytes remain")
            }
            WireError::BadLength { declared, remaining } => {
                write!(f, "bad length prefix: declared {declared}, {remaining} bytes remain")
            }
            WireError::BadUtf8 => f.write_str("string field held invalid utf-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            WireError::TooLarge { declared } => {
                write!(
                    f,
                    "slice of {declared} bytes overflows the u32 length prefix (max {})",
                    u32::MAX
                )
            }
            WireError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Validates that a slice of `len` elements fits a `u32` length prefix.
///
/// # Errors
///
/// Returns [`WireError::TooLarge`] when `len > u32::MAX` — the condition
/// under which the old `len as u32` cast silently wrapped.
pub fn checked_slice_len(len: usize) -> Result<u32, WireError> {
    u32::try_from(len).map_err(|_| WireError::TooLarge { declared: len })
}

/// Builds the payload of a command.
///
/// # Example
///
/// ```
/// use lake_rpc::{Encoder, Decoder};
///
/// let mut enc = Encoder::new();
/// enc.put_u64(0xdead_beef).put_str("cuMemAlloc").put_f32_slice(&[1.0, 2.0]);
/// let bytes = enc.finish();
///
/// let mut dec = Decoder::new(&bytes);
/// assert_eq!(dec.get_u64().unwrap(), 0xdead_beef);
/// assert_eq!(dec.get_str().unwrap(), "cuMemAlloc");
/// assert_eq!(dec.get_f32_slice().unwrap(), vec![1.0, 2.0]);
/// dec.finish().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: BytesMut::with_capacity(64) }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a `u32` (little endian).
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Appends a `u64` (little endian).
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Appends an `i64` (little endian).
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.put_i64_le(v);
        self
    }

    /// Appends an `f32` (little endian bits).
    pub fn put_f32(&mut self, v: f32) -> &mut Self {
        self.buf.put_f32_le(v);
        self
    }

    /// Appends an `f64` (little endian bits).
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Appends a length-prefixed byte slice.
    ///
    /// # Panics
    ///
    /// Panics with a [`WireError::TooLarge`] message if the slice exceeds
    /// `u32::MAX` bytes; the old behaviour wrapped the length prefix and
    /// silently corrupted the payload. Use [`Encoder::try_put_bytes`] to
    /// handle untrusted sizes without panicking.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.try_put_bytes(v).unwrap_or_else(|e| panic!("Encoder::put_bytes: {e}"))
    }

    /// Fallible [`Encoder::put_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TooLarge`] if the slice exceeds `u32::MAX`
    /// bytes; nothing is appended in that case.
    pub fn try_put_bytes(&mut self, v: &[u8]) -> Result<&mut Self, WireError> {
        let len = checked_slice_len(v.len())?;
        self.buf.put_u32_le(len);
        self.buf.put_slice(v);
        Ok(self)
    }

    /// Appends a length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds `u32::MAX` bytes (see
    /// [`Encoder::put_bytes`]).
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Appends a length-prefixed `f32` slice (count, then raw values).
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds `u32::MAX` elements (see
    /// [`Encoder::put_bytes`]).
    pub fn put_f32_slice(&mut self, v: &[f32]) -> &mut Self {
        let len =
            checked_slice_len(v.len()).unwrap_or_else(|e| panic!("Encoder::put_f32_slice: {e}"));
        self.buf.put_u32_le(len);
        for &x in v {
            self.buf.put_f32_le(x);
        }
        self
    }

    /// Appends a length-prefixed `u64` slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds `u32::MAX` elements (see
    /// [`Encoder::put_bytes`]).
    pub fn put_u64_slice(&mut self, v: &[u64]) -> &mut Self {
        let len =
            checked_slice_len(v.len()).unwrap_or_else(|e| panic!("Encoder::put_u64_slice: {e}"));
        self.buf.put_u32_le(len);
        for &x in v {
            self.buf.put_u64_le(x);
        }
        self
    }

    /// Current encoded size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded payload.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Strict reader over an encoded payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    fn take(&mut self, n: usize, wanted: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated { wanted, remaining: self.buf.len() });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().expect("8 bytes")))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().expect("8 bytes")))
    }

    /// Reads an `f32`.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4, "f32")?.try_into().expect("4 bytes")))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, "f64")?.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte slice (borrowed).
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        if self.buf.len() < len {
            return Err(WireError::BadLength { declared: len, remaining: self.buf.len() });
        }
        self.take(len, "bytes body")
    }

    /// Reads a length-prefixed UTF-8 string (borrowed).
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn get_f32_slice(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.get_u32()? as usize;
        let need = n
            .checked_mul(4)
            .ok_or(WireError::BadLength { declared: n, remaining: self.buf.len() })?;
        if self.buf.len() < need {
            return Err(WireError::BadLength { declared: need, remaining: self.buf.len() });
        }
        let raw = self.take(need, "f32 slice body")?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.get_u32()? as usize;
        let need = n
            .checked_mul(8)
            .ok_or(WireError::BadLength { declared: n, remaining: self.buf.len() })?;
        if self.buf.len() < need {
            return Err(WireError::BadLength { declared: need, remaining: self.buf.len() });
        }
        let raw = self.take(need, "u64 slice body")?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Asserts the payload was fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7).put_u32(0x1234_5678).put_u64(u64::MAX).put_i64(-42).put_f32(3.5).put_f64(-2.25);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0x1234_5678);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f32().unwrap(), 3.5);
        assert_eq!(d.get_f64().unwrap(), -2.25);
        d.finish().unwrap();
    }

    #[test]
    fn slices_and_strings_roundtrip() {
        let mut e = Encoder::new();
        e.put_str("nvmlGetUtilization")
            .put_bytes(&[1, 2, 3])
            .put_f32_slice(&[0.5, -1.5])
            .put_u64_slice(&[9, 8, 7]);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.get_str().unwrap(), "nvmlGetUtilization");
        assert_eq!(d.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(d.get_f32_slice().unwrap(), vec![0.5, -1.5]);
        assert_eq!(d.get_u64_slice().unwrap(), vec![9, 8, 7]);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_scalar_detected() {
        let mut e = Encoder::new();
        e.put_u32(1);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert!(matches!(d.get_u64(), Err(WireError::Truncated { wanted: "u64", .. })));
    }

    #[test]
    fn bad_length_prefix_detected() {
        let mut e = Encoder::new();
        e.put_u32(1000); // claims 1000 bytes follow
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert!(matches!(d.get_bytes(), Err(WireError::BadLength { declared: 1000, .. })));
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.get_str(), Err(WireError::BadUtf8));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.put_u8(1).put_u8(2);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        d.get_u8().unwrap();
        assert_eq!(d.finish(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn slice_len_boundary() {
        // Exactly u32::MAX fits the prefix; one more overflows it. The old
        // code cast with `as u32`, wrapping 0x1_0000_0000 to 0 and silently
        // corrupting every later field.
        assert_eq!(checked_slice_len(u32::MAX as usize), Ok(u32::MAX));
        assert_eq!(
            checked_slice_len(u32::MAX as usize + 1),
            Err(WireError::TooLarge { declared: u32::MAX as usize + 1 })
        );
        assert_eq!(checked_slice_len(0), Ok(0));
    }

    #[test]
    fn try_put_bytes_rejects_oversized_without_appending() {
        // A 4 GiB zeroed Vec is a lazy mapping on Linux: the length check
        // fires before any byte is copied, so this test stays cheap.
        let huge = vec![0u8; u32::MAX as usize + 1];
        let mut e = Encoder::new();
        let err = e.try_put_bytes(&huge).unwrap_err();
        assert!(matches!(err, WireError::TooLarge { .. }));
        assert!(e.is_empty(), "failed put must not leave a partial prefix");
    }

    #[test]
    #[should_panic(expected = "overflows the u32 length prefix")]
    fn put_bytes_panics_clearly_on_oversized() {
        let huge = vec![0u8; u32::MAX as usize + 1];
        let mut e = Encoder::new();
        e.put_bytes(&huge);
    }

    #[test]
    fn empty_slices_roundtrip() {
        let mut e = Encoder::new();
        e.put_f32_slice(&[]).put_bytes(&[]).put_str("");
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert!(d.get_f32_slice().unwrap().is_empty());
        assert!(d.get_bytes().unwrap().is_empty());
        assert_eq!(d.get_str().unwrap(), "");
        d.finish().unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_scalars_roundtrip(a: u8, b: u32, c: u64, d: i64, e in proptest::num::f32::NORMAL, f in proptest::num::f64::NORMAL) {
            let mut enc = Encoder::new();
            enc.put_u8(a).put_u32(b).put_u64(c).put_i64(d).put_f32(e).put_f64(f);
            let buf = enc.finish();
            let mut dec = Decoder::new(&buf);
            prop_assert_eq!(dec.get_u8().unwrap(), a);
            prop_assert_eq!(dec.get_u32().unwrap(), b);
            prop_assert_eq!(dec.get_u64().unwrap(), c);
            prop_assert_eq!(dec.get_i64().unwrap(), d);
            prop_assert_eq!(dec.get_f32().unwrap(), e);
            prop_assert_eq!(dec.get_f64().unwrap(), f);
            dec.finish().unwrap();
        }

        #[test]
        fn arbitrary_payloads_roundtrip(s in ".{0,64}", bytes in proptest::collection::vec(any::<u8>(), 0..256), floats in proptest::collection::vec(proptest::num::f32::ANY, 0..64)) {
            let mut enc = Encoder::new();
            enc.put_str(&s).put_bytes(&bytes).put_f32_slice(&floats);
            let buf = enc.finish();
            let mut dec = Decoder::new(&buf);
            prop_assert_eq!(dec.get_str().unwrap(), s);
            prop_assert_eq!(dec.get_bytes().unwrap(), &bytes[..]);
            let got = dec.get_f32_slice().unwrap();
            prop_assert_eq!(got.len(), floats.len());
            for (g, w) in got.iter().zip(&floats) {
                prop_assert!(g.to_bits() == w.to_bits());
            }
            dec.finish().unwrap();
        }

        /// Decoding arbitrary garbage never panics.
        #[test]
        fn decoder_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..128)) {
            let mut dec = Decoder::new(&garbage);
            let _ = dec.get_u64();
            let _ = dec.get_bytes();
            let _ = dec.get_f32_slice();
            let _ = dec.get_str();
        }
    }
}
