//! LAKE's API-remoting layer.
//!
//! The paper (§4, §6): "The implementation of LAKE's API remoting system
//! resembles an RPC system: lakeLib exports symbols (stubs) to the kernel
//! and lakeD is the user space process that handles incoming requests.
//! Commands sent between these two are transmitted through Netlink sockets."
//!
//! Each stub "does three things: serialize an API identifier and all of API
//! parameters into a command, transmit commands through some communication
//! channel for remote execution in user space and, finally, wait for a
//! response."
//!
//! This crate provides exactly those pieces, vendor-agnostic:
//!
//! * [`wire`] — a compact binary encoder/decoder for API arguments.
//! * [`command`] — the framed `Command` / `Response` messages.
//! * [`engine`] — [`CallEngine`], the synchronous call path charging
//!   transport costs to the virtual clock, in-process or across a real
//!   daemon thread; and [`serve`], the daemon-side dispatch loop.
//!
//! The CUDA/NVML/TensorFlow API surface built on top lives in `lake-core`.

#![warn(missing_docs)]

pub mod coalesce;
pub mod command;
pub mod engine;
pub mod executor;
pub mod perf;
pub mod queue;
pub mod wire;

pub use coalesce::{CoalescePolicy, Coalescer, DEFAULT_BURST_MAX, DEFAULT_BURST_WINDOW};
pub use command::{ApiId, Command, CommandRef, Response, ResponseRef, Status, SEQ_UNMATCHED};
pub use engine::{
    serve, serve_engine, serve_with_epoch, serve_with_staging, ApiHandler, CallEngine, CallPolicy,
    CallStats, DaemonLifecycle, RpcError, StagingConfig, BURST_API_BIT, DEFAULT_INLINE_THRESHOLD,
    MAX_BURST_ENTRIES, STAGED_API_BIT,
};
pub use executor::{serve_executor, CommandClass, ExecutorSnapshot, ExecutorStats};
pub use perf::{PerfCounters, PerfSnapshot};
pub use queue::{CmdId, Completion, QueuePair, QueueStats, DEFAULT_QUEUE_DEPTH};
pub use wire::{checked_slice_len, Decoder, Encoder, WireError};
