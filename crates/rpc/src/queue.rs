//! NVMe-style submission/completion queue pairs over the call engine.
//!
//! The synchronous [`CallEngine::call`](crate::CallEngine::call) path is
//! one-request-per-caller: serialize, send, spin on the reply. That keeps
//! the daemon starved — the ring transport answers a command in a couple
//! of microseconds, but the client pays a full doorbell round trip per
//! call. [`QueuePair`] changes the wire mode instead of the API surface:
//!
//! * [`QueuePair::submit`] is **non-blocking** — it appends the command to
//!   a submission queue (SQ) and returns a [`CmdId`] ticket immediately.
//! * [`QueuePair::flush`] drains the whole SQ in one shot: consecutive
//!   same-idempotency commands are coalesced into
//!   [`BURST_API_BIT`](crate::BURST_API_BIT) frames (the PR 5 burst wire
//!   format, generalized from an API call into the native transmit mode)
//!   and every frame of the drain goes out through
//!   [`Channel::send_batch`] under a **single doorbell**.
//! * [`QueuePair::poll`] harvests completions **out of order**: responses
//!   are matched to in-flight frames by seq, and responses that belong to
//!   other callers are routed through the engine's shared pending table —
//!   the same table the sync path uses, so sync and queued callers can
//!   share one engine.
//!
//! Fault semantics mirror the sync path exactly, per frame: epoch fencing
//! drops stale incarnations' answers, `Malformed` naks retry any API (the
//! daemon never executed), crash windows fail over idempotent frames to
//! the next incarnation and surface typed
//! [`RpcError::DaemonRestarted`] otherwise, and real-time silence past
//! [`CallPolicy::recv_patience`](crate::CallPolicy) charges the virtual
//! deadline and retries idempotent frames. Retries reuse the frame's seq,
//! so the daemon's dedup window keeps execution at-most-once — every
//! submitted command completes exactly once, with no duplicates, no
//! matter how the frame fared.
//!
//! A queue pair is a **per-client** structure (one SQ/CQ per submitter,
//! as in NVMe); it is `Sync` and internally locked, but concurrent
//! submitters should each own a pair rather than contend on one.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use lake_sim::Instant;
use lake_transport::Channel;

use crate::command::{ApiId, Command, Response, Status, SEQ_UNMATCHED};
use crate::engine::{
    decode_burst_response, CallEngine, Mode, RpcError, MAX_BURST_ENTRIES, ROUTE_POLL,
};
use crate::wire::Encoder;

/// Default submission-queue depth when none is configured: the sync wire
/// mode (every submit flushes immediately).
pub const DEFAULT_QUEUE_DEPTH: usize = 1;

/// Ticket identifying one submitted command within its [`QueuePair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmdId(pub u64);

/// One harvested completion: the submission ticket, the API it answered,
/// and the call's result — exactly what the sync path would have returned.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Ticket returned by [`QueuePair::submit`].
    pub id: CmdId,
    /// The submitted API (without envelope bits).
    pub api: ApiId,
    /// The response payload or the typed error the sync path would raise.
    pub result: Result<Bytes, RpcError>,
}

/// Counters for one queue pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Commands accepted by [`QueuePair::submit`].
    pub submitted: u64,
    /// Commands whose completion was produced (harvested or pending in
    /// the CQ).
    pub completed: u64,
    /// SQ drains that sent at least one frame.
    pub flushes: u64,
    /// Frames sent across all drains (burst or single-command).
    pub frames_sent: u64,
    /// Frames re-sent after a loss, nak, or crash window.
    pub frame_retries: u64,
    /// High-water mark of commands in flight at once.
    pub inflight_high_water: u64,
}

/// An entry sitting in the submission queue.
struct SqEntry {
    id: CmdId,
    api: ApiId,
    payload: Bytes,
}

/// One wire frame in flight: its encoded bytes (reused verbatim on retry,
/// so the seq — and the daemon's dedup — survive), the commands riding in
/// it, and the attempt bookkeeping the sync path keeps on its stack.
struct InflightFrame {
    wire: Vec<u8>,
    entries: Vec<(CmdId, ApiId)>,
    burst: bool,
    idempotent: bool,
    attempts: u32,
    /// Virtual send instant of the current attempt (crash-window lower
    /// bound).
    sent_at: Instant,
    /// Wall-clock silence accrued toward `recv_patience`.
    waited: std::time::Duration,
    /// Incarnation that was serving when the current attempt was sent.
    serving_epoch: u64,
}

struct QpState {
    sq: VecDeque<SqEntry>,
    inflight: HashMap<u64, InflightFrame>,
    cq: VecDeque<Completion>,
}

/// A per-client SQ/CQ pair over a [`CallEngine`]. See the module docs.
pub struct QueuePair {
    engine: Arc<CallEngine>,
    depth: usize,
    state: Mutex<QpState>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    flushes: AtomicU64,
    frames_sent: AtomicU64,
    frame_retries: AtomicU64,
    inflight_high_water: AtomicU64,
}

impl std::fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuePair")
            .field("depth", &self.depth)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl QueuePair {
    /// Creates a queue pair of the given SQ depth over `engine`. Depth 1
    /// degenerates to the sync wire mode (every submit flushes).
    pub fn new(engine: Arc<CallEngine>, depth: usize) -> Self {
        QueuePair {
            engine,
            depth: depth.max(1),
            state: Mutex::new(QpState {
                sq: VecDeque::new(),
                inflight: HashMap::new(),
                cq: VecDeque::new(),
            }),
            next_id: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            frame_retries: AtomicU64::new(0),
            inflight_high_water: AtomicU64::new(0),
        }
    }

    /// The configured SQ depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The engine this pair submits through.
    pub fn engine(&self) -> &Arc<CallEngine> {
        &self.engine
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frame_retries: self.frame_retries.load(Ordering::Relaxed),
            inflight_high_water: self.inflight_high_water.load(Ordering::Relaxed),
        }
    }

    /// Commands submitted but not yet completed (in the SQ or in flight).
    pub fn outstanding(&self) -> usize {
        let st = self.state.lock().expect("queue pair poisoned");
        st.sq.len() + st.inflight.values().map(|f| f.entries.len()).sum::<usize>()
    }

    /// Non-blocking submit: appends the command to the SQ and returns its
    /// ticket. The SQ drains automatically once `depth` commands are
    /// queued; call [`QueuePair::flush`] to drain earlier.
    pub fn submit(&self, api: ApiId, payload: Bytes) -> CmdId {
        let id = CmdId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().expect("queue pair poisoned");
        st.sq.push_back(SqEntry { id, api, payload });
        if st.sq.len() >= self.depth {
            self.flush_locked(&mut st);
        }
        id
    }

    /// Drains the SQ onto the wire: coalesce, send every frame of the
    /// drain under one doorbell, mark in flight.
    pub fn flush(&self) {
        let mut st = self.state.lock().expect("queue pair poisoned");
        self.flush_locked(&mut st);
    }

    /// Non-blocking harvest: services arrived responses (and the shared
    /// routing table) and returns every completion produced so far, in
    /// completion order.
    pub fn poll(&self) -> Vec<Completion> {
        let mut st = self.state.lock().expect("queue pair poisoned");
        self.pump(&mut st, false);
        st.cq.drain(..).collect()
    }

    /// Blocks until the command behind `id` completes and returns its
    /// result, leaving every other completion in the CQ for
    /// [`QueuePair::poll`]. Flushes the SQ first so a submitted-but-unsent
    /// command cannot wedge the wait.
    ///
    /// # Errors
    ///
    /// Exactly the sync path's errors — [`RpcError::TimedOut`],
    /// [`RpcError::DaemonRestarted`], [`RpcError::Remote`],
    /// [`RpcError::Disconnected`] — for this command's frame.
    pub fn wait(&self, id: CmdId) -> Result<Bytes, RpcError> {
        let mut st = self.state.lock().expect("queue pair poisoned");
        self.flush_locked(&mut st);
        loop {
            if let Some(at) = st.cq.iter().position(|c| c.id == id) {
                return st.cq.remove(at).expect("indexed completion").result;
            }
            assert!(
                st.inflight.values().any(|f| f.entries.iter().any(|(eid, _)| *eid == id)),
                "ticket {id:?} is neither in flight nor in the CQ — \
                 already harvested by poll()?"
            );
            self.pump(&mut st, true);
        }
    }

    /// Flushes, then blocks until every in-flight command completes;
    /// returns the entire CQ.
    pub fn drain(&self) -> Vec<Completion> {
        let mut st = self.state.lock().expect("queue pair poisoned");
        self.flush_locked(&mut st);
        while !st.inflight.is_empty() {
            self.pump(&mut st, true);
        }
        st.cq.drain(..).collect()
    }

    fn flush_locked(&self, st: &mut QpState) {
        if st.sq.is_empty() {
            return;
        }
        let entries: Vec<SqEntry> = st.sq.drain(..).collect();
        match &self.engine.mode {
            Mode::InProcess(_) => {
                // In-process mode has no wire to pipeline: each command
                // runs through the engine's own dispatch (keeping every
                // fault/lifecycle/accounting behaviour) and completes at
                // flush time.
                for e in entries {
                    let idempotent = self.engine.is_idempotent(e.api);
                    let result = self.engine.call_framed(e.api, e.payload, idempotent);
                    st.cq.push_back(Completion { id: e.id, api: e.api, result });
                    self.completed.fetch_add(1, Ordering::Relaxed);
                }
                self.flushes.fetch_add(1, Ordering::Relaxed);
            }
            Mode::Linked(endpoint) => {
                self.flush_linked(st, endpoint.as_ref(), entries);
            }
        }
    }

    fn flush_linked(&self, st: &mut QpState, endpoint: &dyn Channel, entries: Vec<SqEntry>) {
        // One supervised-restart check for the whole drain, as the sync
        // path does once per attempt.
        let serving_epoch = match &self.engine.lifecycle {
            Some(l) => l.ensure_up(),
            None => 0,
        };
        // Coalesce: consecutive same-idempotency commands share a burst
        // frame (retries must stay all-or-nothing safe), lone commands go
        // out as plain frames.
        let mut frames: Vec<(u64, InflightFrame)> = Vec::new();
        let mut run: Vec<SqEntry> = Vec::new();
        let mut run_idempotent = false;
        let mut close_run = |run: &mut Vec<SqEntry>, idempotent: bool| {
            for chunk in run.chunks(MAX_BURST_ENTRIES) {
                let seq = self.engine.next_seq.fetch_add(1, Ordering::Relaxed);
                let burst = chunk.len() > 1;
                let cmd = if burst {
                    let mut e = Encoder::new();
                    e.put_u32(chunk.len() as u32);
                    for entry in chunk {
                        e.put_u32(entry.api.0);
                        e.put_bytes(&entry.payload);
                    }
                    self.engine.burst_frames.fetch_add(1, Ordering::Relaxed);
                    self.engine.coalesced_commands.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    Command { api: ApiId(crate::engine::BURST_API_BIT), seq, payload: e.finish() }
                } else {
                    let entry = &chunk[0];
                    Command { api: entry.api, seq, payload: entry.payload.clone() }
                };
                // Matches the sync path's per-frame accounting: one call,
                // its encoded bytes.
                self.engine.calls.fetch_add(1, Ordering::Relaxed);
                self.engine.bytes_sent.fetch_add(cmd.encoded_len() as u64, Ordering::Relaxed);
                frames.push((
                    seq,
                    InflightFrame {
                        wire: cmd.encode(),
                        entries: chunk.iter().map(|e| (e.id, e.api)).collect(),
                        burst,
                        idempotent,
                        attempts: 1,
                        sent_at: self.engine.clock.now(),
                        waited: std::time::Duration::ZERO,
                        serving_epoch,
                    },
                ));
            }
            run.clear();
        };
        for entry in entries {
            let idempotent = self.engine.is_idempotent(entry.api);
            if !run.is_empty() && idempotent != run_idempotent {
                close_run(&mut run, run_idempotent);
            }
            run_idempotent = idempotent;
            run.push(entry);
        }
        if !run.is_empty() {
            close_run(&mut run, run_idempotent);
        }

        // The whole drain ships under a single doorbell: the transport
        // amortizes its per-send wakeup across every frame.
        let mut wire = Vec::with_capacity(frames.len());
        for (_, frame) in &frames {
            // Each (re)send clones the retry buffer, as in the sync path.
            self.engine.perf.note_copy(frame.wire.len());
            wire.push(frame.wire.clone());
        }
        let sent = endpoint.send_batch(wire).is_ok();
        self.flushes.fetch_add(1, Ordering::Relaxed);
        for (seq, frame) in frames {
            if sent {
                self.frames_sent.fetch_add(1, Ordering::Relaxed);
                self.engine.register_waiter(seq);
                st.inflight.insert(seq, frame);
            } else {
                self.complete_frame(st, &frame, |_| Err(RpcError::Disconnected));
            }
        }
        let inflight: u64 = st.inflight.values().map(|f| f.entries.len() as u64).sum();
        self.inflight_high_water.fetch_max(inflight, Ordering::Relaxed);
    }

    /// Services the wire: claims responses stashed for us by sync callers,
    /// drains everything already arrived, and (when `block`) waits one
    /// [`ROUTE_POLL`] slice for more, charging silence toward patience.
    fn pump(&self, st: &mut QpState, block: bool) {
        let Mode::Linked(endpoint) = &self.engine.mode else {
            return;
        };
        if st.inflight.is_empty() {
            return;
        }
        let endpoint = endpoint.as_ref();
        let mut progressed = false;
        let seqs: Vec<u64> = st.inflight.keys().copied().collect();
        for seq in seqs {
            if let Some(resp) = self.engine.take_routed(seq) {
                progressed |= self.on_response(st, endpoint, seq, resp);
            }
        }
        loop {
            match endpoint.try_recv() {
                Err(_) => return self.fail_all(st, RpcError::Disconnected),
                Ok(Some(raw)) => progressed |= self.on_raw(st, endpoint, &raw),
                Ok(None) => break,
            }
        }
        if progressed || !block || st.inflight.is_empty() {
            return;
        }
        match endpoint.recv_timeout(ROUTE_POLL) {
            Err(_) => self.fail_all(st, RpcError::Disconnected),
            Ok(Some(raw)) => {
                self.on_raw(st, endpoint, &raw);
            }
            Ok(None) => self.note_silence(st, endpoint, ROUTE_POLL),
        }
    }

    /// Routes one raw frame exactly as the sync receive loop does.
    fn on_raw(&self, st: &mut QpState, endpoint: &dyn Channel, raw: &[u8]) -> bool {
        match Response::decode(raw) {
            Err(_) => {
                // A garbled frame for someone; if it was ours the patience
                // timer will catch the loss.
                self.engine.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                false
            }
            Ok(resp) if self.engine.is_stale_epoch(&resp) => {
                // A dead incarnation's answer: fence it out. If it was
                // ours, patience (or the crash window) retries under the
                // new epoch.
                self.engine.stale_epochs.fetch_add(1, Ordering::Relaxed);
                false
            }
            Ok(resp) if st.inflight.contains_key(&resp.seq) => {
                self.on_response(st, endpoint, resp.seq, resp)
            }
            Ok(resp) if resp.seq == SEQ_UNMATCHED => {
                self.engine.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                false
            }
            Ok(resp) => {
                // A sync caller's response: route, don't drop.
                self.engine.route_response(resp);
                false
            }
        }
    }

    /// Handles a (non-stale) response for one of our frames. Returns true
    /// — the frame always either completes or is retried.
    fn on_response(
        &self,
        st: &mut QpState,
        endpoint: &dyn Channel,
        seq: u64,
        resp: Response,
    ) -> bool {
        let frame = st.inflight.remove(&seq).expect("routed to an in-flight seq");
        if resp.status == Status::Malformed {
            // The daemon could not decode our frame — it never executed,
            // so any API may retry without a crash check.
            self.engine.corrupt_frames.fetch_add(1, Ordering::Relaxed);
            if frame.attempts < self.engine.policy.max_attempts {
                self.engine.retry_backoff(frame.attempts);
                self.resend(st, endpoint, seq, frame);
                return true;
            }
            self.engine.deregister_waiter(seq);
            // finish_response semantics for the nak, fanned out per entry.
            self.engine.epoch_floor.fetch_max(resp.epoch, Ordering::Relaxed);
            self.engine.bytes_received.fetch_add(resp.encoded_len() as u64, Ordering::Relaxed);
            self.engine.failures.fetch_add(1, Ordering::Relaxed);
            self.complete_frame(st, &frame, |_| Err(RpcError::Remote(Status::Malformed)));
            return true;
        }
        // Did the daemon die inside this frame's window? Then the response
        // was computed by a dead incarnation: fence it out, charge the
        // deadline for discovering the silence, and fail over or surface
        // the typed restart error — the sync path's exact accounting.
        if let Some(l) = &self.engine.lifecycle {
            if l.crashed_between(frame.sent_at, self.engine.clock.now()) {
                self.engine.stale_epochs.fetch_add(1, Ordering::Relaxed);
                self.engine.timeouts.fetch_add(1, Ordering::Relaxed);
                self.engine.clock.advance(self.engine.policy.deadline);
                if frame.idempotent && frame.attempts < self.engine.policy.max_attempts {
                    self.engine.failed_over.fetch_add(1, Ordering::Relaxed);
                    self.engine.retry_backoff(frame.attempts);
                    self.resend(st, endpoint, seq, frame);
                    return true;
                }
                self.engine.failures.fetch_add(1, Ordering::Relaxed);
                self.engine.daemon_restarts.fetch_add(1, Ordering::Relaxed);
                let epoch = frame.serving_epoch;
                self.engine.deregister_waiter(seq);
                self.complete_frame(st, &frame, |_| Err(RpcError::DaemonRestarted { epoch }));
                return true;
            }
        }
        self.engine.deregister_waiter(seq);
        self.engine.epoch_floor.fetch_max(resp.epoch, Ordering::Relaxed);
        self.engine.bytes_received.fetch_add(resp.encoded_len() as u64, Ordering::Relaxed);
        if frame.burst {
            if !resp.status.is_ok() {
                // The whole frame failed: every rider shares the fate.
                self.engine.failures.fetch_add(1, Ordering::Relaxed);
                self.complete_frame(st, &frame, |_| Err(RpcError::Remote(resp.status)));
                return true;
            }
            match decode_burst_response(&resp.payload, frame.entries.len()) {
                Ok(per_entry) => {
                    for ((id, api), result) in frame.entries.iter().zip(per_entry) {
                        let result = result.map_err(|status| {
                            self.engine.failures.fetch_add(1, Ordering::Relaxed);
                            RpcError::Remote(status)
                        });
                        st.cq.push_back(Completion { id: *id, api: *api, result });
                        self.completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(err) => {
                    self.complete_frame(st, &frame, |_| Err(err.clone()));
                }
            }
        } else if resp.status.is_ok() {
            self.complete_frame(st, &frame, |_| Ok(resp.payload.clone()));
        } else {
            self.engine.failures.fetch_add(1, Ordering::Relaxed);
            self.complete_frame(st, &frame, |_| Err(RpcError::Remote(resp.status)));
        }
        true
    }

    /// Re-sends a frame verbatim (same seq — the daemon dedups) after a
    /// loss, nak, or crash window. Mirrors the top of the sync attempt
    /// loop: supervised restart first, then the retry-buffer clone.
    fn resend(&self, st: &mut QpState, endpoint: &dyn Channel, seq: u64, mut frame: InflightFrame) {
        frame.attempts += 1;
        frame.serving_epoch = match &self.engine.lifecycle {
            Some(l) => l.ensure_up(),
            None => 0,
        };
        frame.sent_at = self.engine.clock.now();
        frame.waited = std::time::Duration::ZERO;
        self.engine.perf.note_copy(frame.wire.len());
        if endpoint.send(frame.wire.clone()).is_err() {
            self.engine.deregister_waiter(seq);
            self.complete_frame(st, &frame, |_| Err(RpcError::Disconnected));
            return;
        }
        self.frame_retries.fetch_add(1, Ordering::Relaxed);
        st.inflight.insert(seq, frame);
    }

    /// Charges one slice of real-time silence to every in-flight frame
    /// and expires those past patience — the sync path's loss detection,
    /// amortized over the queue.
    fn note_silence(&self, st: &mut QpState, endpoint: &dyn Channel, slice: std::time::Duration) {
        let Some(patience) = self.engine.policy.recv_patience else {
            return;
        };
        let seqs: Vec<u64> = st.inflight.keys().copied().collect();
        for seq in seqs {
            let mut frame = st.inflight.remove(&seq).expect("iterating live seqs");
            frame.waited += slice;
            if frame.waited < patience {
                st.inflight.insert(seq, frame);
                continue;
            }
            // Real-time silence: the attempt is lost. Charge the virtual
            // deadline, expire orphaned stashes, and retry if safe.
            self.engine.timeouts.fetch_add(1, Ordering::Relaxed);
            self.engine.clock.advance(self.engine.policy.deadline);
            self.engine.sweep_pending();
            if frame.idempotent && frame.attempts < self.engine.policy.max_attempts {
                self.engine.retry_backoff(frame.attempts);
                self.resend(st, endpoint, seq, frame);
            } else {
                self.engine.failures.fetch_add(1, Ordering::Relaxed);
                self.engine.deregister_waiter(seq);
                self.complete_frame(st, &frame, |_| Err(RpcError::TimedOut));
            }
        }
    }

    /// Completes every entry of a dead frame with the link error.
    fn fail_all(&self, st: &mut QpState, err: RpcError) {
        let frames: Vec<(u64, InflightFrame)> = st.inflight.drain().collect();
        for (seq, frame) in frames {
            self.engine.deregister_waiter(seq);
            self.complete_frame(st, &frame, |_| Err(err.clone()));
        }
    }

    /// Fans one per-frame outcome out to a completion per rider.
    fn complete_frame(
        &self,
        st: &mut QpState,
        frame: &InflightFrame,
        result: impl Fn(CmdId) -> Result<Bytes, RpcError>,
    ) {
        for (id, api) in &frame.entries {
            st.cq.push_back(Completion { id: *id, api: *api, result: result(*id) });
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{serve, ApiHandler, CallPolicy};
    use crate::wire::Decoder;
    use lake_sim::{Duration, SharedClock};
    use lake_transport::{Link, Mechanism};

    const API_ADD: ApiId = ApiId(1);
    const API_FAIL: ApiId = ApiId(2);

    fn adder() -> Arc<dyn ApiHandler> {
        Arc::new(|api: ApiId, payload: &[u8]| -> Result<Bytes, Status> {
            match api {
                API_ADD => {
                    let mut d = Decoder::new(payload);
                    let a = d.get_u64().map_err(|_| Status::Malformed)?;
                    let b = d.get_u64().map_err(|_| Status::Malformed)?;
                    let mut e = Encoder::new();
                    e.put_u64(a + b);
                    Ok(e.finish())
                }
                API_FAIL => Err(Status::VendorError(13)),
                _ => Err(Status::UnknownApi),
            }
        })
    }

    fn encode_pair(a: u64, b: u64) -> Bytes {
        let mut e = Encoder::new();
        e.put_u64(a).put_u64(b);
        e.finish()
    }

    fn sum_of(c: &Completion) -> u64 {
        let out = c.result.as_ref().expect("completion carries a payload");
        Decoder::new(out).get_u64().unwrap()
    }

    #[test]
    fn in_process_submits_complete_on_flush() {
        let engine =
            Arc::new(CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), adder()));
        let qp = QueuePair::new(engine, 4);
        let ids: Vec<CmdId> = (0..3).map(|i| qp.submit(API_ADD, encode_pair(i, 1))).collect();
        assert!(qp.poll().is_empty(), "depth 4 must not flush at 3 submits");
        assert_eq!(qp.outstanding(), 3);
        qp.flush();
        let done = qp.poll();
        assert_eq!(done.len(), 3);
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.id, ids[i]);
            assert_eq!(sum_of(c), i as u64 + 1);
        }
        let qs = qp.stats();
        assert_eq!((qs.submitted, qs.completed, qs.flushes), (3, 3, 1));
    }

    #[test]
    fn submit_auto_flushes_at_depth() {
        let engine =
            Arc::new(CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), adder()));
        let qp = QueuePair::new(engine, 2);
        qp.submit(API_ADD, encode_pair(1, 1));
        qp.submit(API_ADD, encode_pair(2, 2));
        assert_eq!(qp.poll().len(), 2, "second submit must trip the depth-2 drain");
        assert_eq!(qp.stats().flushes, 1);
    }

    #[test]
    fn linked_drain_coalesces_into_one_burst_frame() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve(&user, handler.as_ref());
        });
        let engine = Arc::new(CallEngine::linked(kernel));
        engine.register_api(API_ADD, true);
        let qp = QueuePair::new(engine.clone(), 64);
        let ids: Vec<CmdId> = (0..16).map(|i| qp.submit(API_ADD, encode_pair(i, i))).collect();
        let done = qp.drain();
        assert_eq!(done.len(), 16);
        for c in &done {
            let i = ids.iter().position(|id| *id == c.id).expect("known ticket") as u64;
            assert_eq!(sum_of(c), 2 * i);
        }
        let es = engine.stats();
        assert_eq!(es.calls, 1, "16 commands must ride one wire frame");
        assert_eq!(es.burst_frames, 1);
        assert_eq!(es.coalesced_commands, 16);
        assert_eq!(es.pending_high_water, 0, "drained queue stashes nothing for itself");
        let qs = qp.stats();
        assert_eq!((qs.frames_sent, qs.flushes), (1, 1));
        assert_eq!(qs.inflight_high_water, 16);
        drop(qp);
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    fn mixed_idempotency_splits_frames_and_fans_out_results() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve(&user, handler.as_ref());
        });
        let engine = Arc::new(CallEngine::linked(kernel));
        engine.register_api(API_ADD, true); // API_FAIL stays non-idempotent
        let qp = QueuePair::new(engine.clone(), 64);
        let a = qp.submit(API_ADD, encode_pair(3, 4));
        let b = qp.submit(API_ADD, encode_pair(5, 6));
        let f = qp.submit(API_FAIL, Bytes::new());
        let c = qp.submit(API_ADD, encode_pair(7, 8));
        let done = qp.drain();
        assert_eq!(done.len(), 4);
        let by_id = |id: CmdId| done.iter().find(|c| c.id == id).expect("completed");
        assert_eq!(sum_of(by_id(a)), 7);
        assert_eq!(sum_of(by_id(b)), 11);
        assert_eq!(sum_of(by_id(c)), 15);
        assert_eq!(
            by_id(f).result.as_ref().unwrap_err(),
            &RpcError::Remote(Status::VendorError(13))
        );
        let es = engine.stats();
        // [a,b] burst, [f] single, [c] single: the non-idempotent command
        // must not share a retryable burst frame.
        assert_eq!(es.calls, 3);
        assert_eq!(es.burst_frames, 1);
        assert_eq!(es.coalesced_commands, 2);
        drop(qp);
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    fn wait_harvests_out_of_order_and_leaves_the_rest() {
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve(&user, handler.as_ref());
        });
        let engine = Arc::new(CallEngine::linked(kernel));
        engine.register_api(API_ADD, true);
        let qp = QueuePair::new(engine.clone(), 64);
        let a = qp.submit(API_ADD, encode_pair(1, 1));
        let b = qp.submit(API_ADD, encode_pair(2, 2));
        let out = qp.wait(b).unwrap();
        assert_eq!(Decoder::new(&out).get_u64().unwrap(), 4);
        let rest = qp.poll();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].id, a);
        assert_eq!(sum_of(&rest[0]), 2);
        drop(qp);
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    fn queued_and_sync_callers_share_one_engine() {
        // A sync call issued while queue commands are in flight: the sync
        // path stashes the queue's responses through the pending table and
        // vice versa; nobody steals anybody's frames.
        let clock = SharedClock::new();
        let (kernel, user) = Link::pair(Mechanism::Netlink, clock);
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve(&user, handler.as_ref());
        });
        let engine = Arc::new(CallEngine::linked(kernel));
        engine.register_api(API_ADD, true);
        let qp = QueuePair::new(engine.clone(), 64);
        let ids: Vec<CmdId> = (0..8).map(|i| qp.submit(API_ADD, encode_pair(i, 100))).collect();
        qp.flush();
        let out = engine.call(API_ADD, encode_pair(500, 500)).unwrap();
        assert_eq!(Decoder::new(&out).get_u64().unwrap(), 1000);
        let done = qp.drain();
        assert_eq!(done.len(), 8);
        for c in &done {
            let i = ids.iter().position(|id| *id == c.id).expect("known ticket") as u64;
            assert_eq!(sum_of(c), i + 100);
        }
        assert_eq!(engine.pending_len(), 0, "no responses left parked in the pending table");
        drop(qp);
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    fn lossy_link_completes_every_command_exactly_once() {
        use lake_sim::{FaultPlan, FaultSpec};
        let clock = SharedClock::new();
        let plan = Arc::new(FaultPlan::new(
            FaultSpec { drop_prob: 0.2, corrupt_prob: 0.1, ..Default::default() },
            23,
        ));
        let (kernel, user) = Link::pair_with_faults(Mechanism::Netlink, clock, plan);
        let daemon = std::thread::spawn(move || {
            let handler = adder();
            serve(&user, handler.as_ref());
        });
        let engine = Arc::new(CallEngine::linked(kernel).with_policy(CallPolicy {
            deadline: Duration::from_micros(300),
            max_attempts: 10,
            backoff: Duration::from_micros(20),
            recv_patience: Some(std::time::Duration::from_millis(25)),
        }));
        engine.register_api(API_ADD, true);
        let qp = QueuePair::new(engine.clone(), 8);
        let ids: Vec<CmdId> = (0..64).map(|i| qp.submit(API_ADD, encode_pair(i, 1))).collect();
        let done = qp.drain();
        assert_eq!(done.len(), 64, "every submitted command must complete: none lost");
        let mut seen = std::collections::HashSet::new();
        for c in &done {
            assert!(seen.insert(c.id), "duplicate completion for {:?}", c.id);
            let i = ids.iter().position(|id| *id == c.id).expect("known ticket") as u64;
            assert_eq!(sum_of(c), i + 1, "retry returned a wrong result");
        }
        assert!(qp.stats().frame_retries > 0, "a 20% drop rate must force frame retries");
        assert_eq!(engine.pending_len(), 0, "no responses left parked in the pending table");
        drop(qp);
        drop(engine);
        daemon.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "already harvested")]
    fn waiting_on_a_harvested_ticket_panics() {
        let engine =
            Arc::new(CallEngine::in_process(Mechanism::Netlink, SharedClock::new(), adder()));
        let qp = QueuePair::new(engine, 1);
        let id = qp.submit(API_ADD, encode_pair(1, 1));
        assert_eq!(qp.poll().len(), 1);
        let _ = qp.wait(id);
    }
}
