//! Committed feature vectors: `<numfeatures, kvpair*, ts_begin, ts_end>`
//! (§5.1).

use lake_sim::Instant;

use crate::schema::Schema;

/// One committed feature vector.
///
/// Values are untyped bytes (§5.2); a feature with `entries` history slots
/// stores `size * entries` bytes, sample 0 (most recent) first.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    ts_begin: Instant,
    ts_end: Instant,
    /// dense storage, one buffer per schema slot
    values: Vec<Vec<u8>>,
    /// schema keys, shared layout (kept as an owned copy of the key list
    /// index; lookups go through the schema order captured at commit)
    keys: Vec<String>,
}

impl FeatureVector {
    pub(crate) fn new(
        ts_begin: Instant,
        ts_end: Instant,
        keys: Vec<String>,
        values: Vec<Vec<u8>>,
    ) -> Self {
        debug_assert_eq!(keys.len(), values.len());
        FeatureVector { ts_begin, ts_end, values, keys }
    }

    /// When capture of this vector began.
    pub fn ts_begin(&self) -> Instant {
        self.ts_begin
    }

    /// When this vector was committed.
    pub fn ts_end(&self) -> Instant {
        self.ts_end
    }

    /// Number of features (`numfeatures`).
    pub fn num_features(&self) -> usize {
        self.values.len()
    }

    /// Whether `ts_begin <= ts <= ts_end` — the `get_features` match rule
    /// (§5.4).
    pub fn covers(&self, ts: Instant) -> bool {
        self.ts_begin <= ts && ts <= self.ts_end
    }

    fn slot(&self, key: &str) -> Option<&Vec<u8>> {
        self.keys.iter().position(|k| k == key).map(|i| &self.values[i])
    }

    /// Raw bytes of a feature (all history samples).
    pub fn get_raw(&self, key: &str) -> Option<&[u8]> {
        self.slot(key).map(|v| v.as_slice())
    }

    /// The most recent sample interpreted as a little-endian `i64`
    /// (zero-extended from the feature's declared size).
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        let raw = self.slot(key)?;
        Some(le_i64(&raw[..raw.len().min(8)]))
    }

    /// History sample `n` (0 = most recent) as `i64`, given the schema
    /// that produced this vector.
    pub fn get_i64_history(&self, schema: &Schema, key: &str, n: usize) -> Option<i64> {
        let spec = schema.spec(key)?;
        if n >= spec.entries {
            return None;
        }
        let raw = self.slot(key)?;
        let start = n * spec.size;
        Some(le_i64(&raw[start..start + spec.size]))
    }

    /// Flattens the vector to f32 model inputs in schema order: every
    /// stored sample becomes one value (ints are converted).
    pub fn to_f32_features(&self, schema: &Schema) -> Vec<f32> {
        let mut out = Vec::with_capacity(schema.flat_width());
        for key in schema.keys() {
            let spec = schema.spec(key).expect("schema key");
            let raw = self.slot(key).map(|v| v.as_slice()).unwrap_or(&[]);
            for n in 0..spec.entries {
                let start = n * spec.size;
                let sample = raw.get(start..start + spec.size).unwrap_or(&[]);
                out.push(le_i64(sample) as f32);
            }
        }
        out
    }
}

/// Little-endian signed interpretation of up to 8 bytes (sign-extended
/// from the top bit of the last byte).
fn le_i64(bytes: &[u8]) -> i64 {
    if bytes.is_empty() {
        return 0;
    }
    let mut buf = if bytes.last().is_some_and(|&b| b & 0x80 != 0) { [0xFFu8; 8] } else { [0u8; 8] };
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    i64::from_le_bytes(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::builder().feature("pend", 8, 1).feature("lat", 4, 3).build()
    }

    fn sample_vector() -> FeatureVector {
        let mut lat = Vec::new();
        for v in [10i32, 20, 30] {
            lat.extend_from_slice(&v.to_le_bytes());
        }
        FeatureVector::new(
            Instant::from_nanos(100),
            Instant::from_nanos(200),
            vec!["pend".into(), "lat".into()],
            vec![5i64.to_le_bytes().to_vec(), lat],
        )
    }

    #[test]
    fn accessors() {
        let fv = sample_vector();
        assert_eq!(fv.num_features(), 2);
        assert_eq!(fv.get_i64("pend"), Some(5));
        assert_eq!(fv.get_i64("missing"), None);
        assert!(fv.covers(Instant::from_nanos(150)));
        assert!(!fv.covers(Instant::from_nanos(250)));
        assert!(fv.covers(Instant::from_nanos(100)));
        assert!(fv.covers(Instant::from_nanos(200)));
    }

    #[test]
    fn history_access() {
        let fv = sample_vector();
        let s = schema();
        assert_eq!(fv.get_i64_history(&s, "lat", 0), Some(10));
        assert_eq!(fv.get_i64_history(&s, "lat", 1), Some(20));
        assert_eq!(fv.get_i64_history(&s, "lat", 2), Some(30));
        assert_eq!(fv.get_i64_history(&s, "lat", 3), None);
    }

    #[test]
    fn flattening_for_model_input() {
        let fv = sample_vector();
        let flat = fv.to_f32_features(&schema());
        assert_eq!(flat, vec![5.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn negative_values_sign_extend() {
        let fv = FeatureVector::new(
            Instant::EPOCH,
            Instant::EPOCH,
            vec!["x".into()],
            vec![(-3i32).to_le_bytes().to_vec()],
        );
        assert_eq!(fv.get_i64("x"), Some(-3));
    }
}
