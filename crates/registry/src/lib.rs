//! The LAKE in-kernel feature registry (paper §5, Table 1).
//!
//! A *registry* is a named combination of an ML model, a feature-vector
//! schema, and a kernel subsystem. It solves the paper's challenge C3:
//! feature data lives behind abstraction layers and module boundaries, so
//! capture must be **asynchronous** (instrumentation calls placed "at the
//! code sites where instrumented data are already maintained") and safe
//! from **any kernel thread** without extra locking discipline.
//!
//! Design choices reproduced from §5:
//!
//! * feature vectors live in a ring buffer sized by the `window`
//!   parameter, with format `<numfeatures, kvpair*, ts_begin, ts_end>`;
//! * values are untyped bytes — the schema records `<size, entries>` per
//!   key, and `entries > 1` turns a feature into a history array where
//!   index 0 is the most recent sample;
//! * the capture path is lock-free: because schemas are fixed at
//!   `create_registry` time, the paper's lock-free hash table reduces to a
//!   fixed table of atomic slots, one per schema key (capture is a single
//!   atomic store or fetch-add);
//! * models are committed to the file system but kept in memory for
//!   inference (§5.1);
//! * batch retrieval (`get_features`) + acknowledgment
//!   (`truncate_features`) expose batch size to the developer, the key
//!   lever for accelerator profitability (§5.4); truncation always
//!   preserves the most recent vector when the schema has history
//!   features.
//!
//! # Example (the §5.5 I/O-latency idiom)
//!
//! ```
//! use lake_registry::{FeatureRegistryService, Schema, RegistryError};
//! use lake_sim::Instant;
//!
//! # fn main() -> Result<(), RegistryError> {
//! let service = FeatureRegistryService::new();
//! let schema = Schema::builder()
//!     .feature("pend_ios", 8, 1)
//!     .feature("io_latency", 8, 4) // last 4 latencies
//!     .build();
//! service.create_registry("sda1", "bio_latency_prediction", schema, 64)?;
//!
//! let t0 = Instant::from_nanos(100);
//! service.begin_fv_capture("sda1", "bio_latency_prediction", t0)?;
//! service.capture_feature_incr("sda1", "bio_latency_prediction", "pend_ios", 1)?;
//! service.capture_feature("sda1", "bio_latency_prediction", "io_latency", &250i64.to_le_bytes())?;
//! service.commit_fv_capture("sda1", "bio_latency_prediction", Instant::from_nanos(200))?;
//!
//! let batch = service.get_features("sda1", "bio_latency_prediction", None)?;
//! assert_eq!(batch.len(), 1);
//! assert_eq!(batch[0].get_i64("pend_ios"), Some(1));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod registry;
pub mod schema;
pub mod service;
pub mod vector;

pub use registry::Registry;
pub use schema::{FeatureSpec, Schema, SchemaBuilder};
pub use service::{Arch, ClassifierFn, FeatureRegistryService, PolicyFn, RegistryError};
pub use vector::FeatureVector;
