//! A single registry: lock-free capture slots + the committed ring
//! buffer.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use parking_lot::Mutex;

use lake_sim::Instant;

use crate::schema::Schema;
use crate::vector::FeatureVector;

/// One atomic capture slot per schema key. `capture_feature` is a store,
/// `capture_feature_incr` a fetch-add — callable from any thread with no
/// additional locking, which is the §5.3 design goal.
struct CaptureSlot {
    value: AtomicI64,
    present: AtomicBool,
}

struct Ring {
    vectors: std::collections::VecDeque<FeatureVector>,
    capacity: usize,
    /// Count of vectors dropped by ring overwrite (observability).
    overwritten: u64,
}

/// A feature registry: schema + capture slots + ring buffer.
pub struct Registry {
    schema: Schema,
    slots: Vec<CaptureSlot>,
    ts_begin: AtomicU64,
    capture_open: AtomicBool,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("features", &self.schema.len())
            .field("window", &self.ring.lock().capacity)
            .field("committed", &self.ring.lock().vectors.len())
            .finish()
    }
}

impl Registry {
    /// Creates a registry with the given schema and ring window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(schema: Schema, window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        let slots = (0..schema.len())
            .map(|_| CaptureSlot { value: AtomicI64::new(0), present: AtomicBool::new(false) })
            .collect();
        Registry {
            schema,
            slots,
            ts_begin: AtomicU64::new(0),
            capture_open: AtomicBool::new(false),
            ring: Mutex::new(Ring {
                vectors: std::collections::VecDeque::with_capacity(window),
                capacity: window,
                overwritten: 0,
            }),
        }
    }

    /// The registry's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Opens capture of a new feature vector at `ts` (§5.3: sets
    /// `ts_begin`). Re-opening an already-open capture resets it.
    pub fn begin_capture(&self, ts: Instant) {
        for slot in &self.slots {
            slot.present.store(false, Ordering::Release);
            slot.value.store(0, Ordering::Release);
        }
        self.ts_begin.store(ts.as_nanos(), Ordering::Release);
        self.capture_open.store(true, Ordering::Release);
    }

    /// True if a capture is currently open.
    pub fn capture_open(&self) -> bool {
        self.capture_open.load(Ordering::Acquire)
    }

    /// Sets feature `key` on the open vector (lock-free; last write
    /// wins, matching "add/overwrite the current value" in Table 1).
    /// Returns `false` for unknown keys.
    pub fn capture(&self, key: &str, value: &[u8]) -> bool {
        let Some(index) = self.schema.index_of(key) else { return false };
        let mut buf = [0u8; 8];
        let n = value.len().min(8);
        buf[..n].copy_from_slice(&value[..n]);
        // Sign handling matches vector::le_i64: stores are raw words; the
        // declared size masks on read.
        self.slots[index].value.store(i64::from_le_bytes(buf), Ordering::Release);
        self.slots[index].present.store(true, Ordering::Release);
        true
    }

    /// Increments feature `key` by `delta` (lock-free fetch-add — the
    /// `capture_feature_incr` idiom of §5.3). Returns `false` for unknown
    /// keys.
    pub fn capture_incr(&self, key: &str, delta: i64) -> bool {
        let Some(index) = self.schema.index_of(key) else { return false };
        self.slots[index].value.fetch_add(delta, Ordering::AcqRel);
        self.slots[index].present.store(true, Ordering::Release);
        true
    }

    /// Commits the open vector at `ts` (sets `ts_end`), materializing
    /// history arrays from the previous committed vector, pushing into
    /// the ring (overwriting the oldest when full), and leaving capture
    /// closed. Incremental features (and any captured value) carry over
    /// as the starting point of the next capture via [`Registry::begin_capture`]
    /// resetting them — per the paper, each `begin` starts fresh.
    ///
    /// Returns `false` if no capture was open.
    pub fn commit(&self, ts: Instant) -> bool {
        if !self.capture_open.swap(false, Ordering::AcqRel) {
            return false;
        }
        let ts_begin = Instant::from_nanos(self.ts_begin.load(Ordering::Acquire));
        let mut ring = self.ring.lock();

        let mut keys = Vec::with_capacity(self.schema.len());
        let mut values = Vec::with_capacity(self.schema.len());
        for index in 0..self.schema.len() {
            let (key, spec) = self.schema.spec_at(index).expect("index in range");
            let current = self.slots[index].value.load(Ordering::Acquire);
            let current_bytes = &current.to_le_bytes()[..spec.size];
            let mut buf = Vec::with_capacity(spec.stored_bytes());
            buf.extend_from_slice(current_bytes);
            if spec.entries > 1 {
                // Shift history: samples 1.. come from the previous
                // vector's samples 0..entries-1 (§5.2).
                let prev = ring.vectors.back().and_then(|fv| fv.get_raw(key));
                for n in 1..spec.entries {
                    let sample_start = (n - 1) * spec.size;
                    match prev.and_then(|p| p.get(sample_start..sample_start + spec.size)) {
                        Some(s) => buf.extend_from_slice(s),
                        None => buf.extend_from_slice(&vec![0u8; spec.size]),
                    }
                }
            }
            keys.push(key.to_owned());
            values.push(buf);
        }

        if ring.vectors.len() == ring.capacity {
            ring.vectors.pop_front();
            ring.overwritten += 1;
        }
        ring.vectors.push_back(FeatureVector::new(ts_begin, ts, keys, values));
        true
    }

    /// `get_features(ts)`: with `Some(ts)`, the first vector covering
    /// `ts`; with `None`, the whole ring (§5.4).
    pub fn get(&self, ts: Option<Instant>) -> Vec<FeatureVector> {
        let ring = self.ring.lock();
        match ts {
            Some(ts) => ring.vectors.iter().find(|fv| fv.covers(ts)).cloned().into_iter().collect(),
            None => ring.vectors.iter().cloned().collect(),
        }
    }

    /// `truncate_features(ts)`: removes vectors with `ts_end` older than
    /// `ts` (`None` = all), but always preserves the most recent vector
    /// when the schema has history features so the next commit can
    /// populate them (§5.4).
    pub fn truncate(&self, ts: Option<Instant>) -> usize {
        let keep_last = self.schema.has_history();
        let mut ring = self.ring.lock();
        let before = ring.vectors.len();
        let last = if keep_last { ring.vectors.pop_back() } else { None };
        match ts {
            Some(ts) => ring.vectors.retain(|fv| fv.ts_end() >= ts),
            None => ring.vectors.clear(),
        }
        if let Some(last) = last {
            ring.vectors.push_back(last);
        }
        before - ring.vectors.len()
    }

    /// Number of committed vectors currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.lock().vectors.len()
    }

    /// True if the ring holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vectors dropped to ring overwrite since creation.
    pub fn overwritten(&self) -> u64 {
        self.ring.lock().overwritten
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn reg() -> Registry {
        Registry::new(Schema::builder().feature("pend", 8, 1).feature("lat", 8, 3).build(), 4)
    }

    fn commit_with(r: &Registry, t: u64, pend: i64, lat: i64) {
        r.begin_capture(Instant::from_nanos(t));
        r.capture("pend", &pend.to_le_bytes());
        r.capture("lat", &lat.to_le_bytes());
        assert!(r.commit(Instant::from_nanos(t + 10)));
    }

    #[test]
    fn capture_commit_get() {
        let r = reg();
        commit_with(&r, 100, 3, 250);
        let got = r.get(None);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get_i64("pend"), Some(3));
        assert_eq!(got[0].ts_begin(), Instant::from_nanos(100));
        assert_eq!(got[0].ts_end(), Instant::from_nanos(110));
    }

    #[test]
    fn history_shifts_across_commits() {
        let r = reg();
        commit_with(&r, 100, 1, 10);
        commit_with(&r, 200, 2, 20);
        commit_with(&r, 300, 3, 30);
        let got = r.get(None);
        let s = r.schema().clone();
        let last = got.last().unwrap();
        assert_eq!(last.get_i64_history(&s, "lat", 0), Some(30));
        assert_eq!(last.get_i64_history(&s, "lat", 1), Some(20));
        assert_eq!(last.get_i64_history(&s, "lat", 2), Some(10));
        // first vector's history back-fills with zeros
        assert_eq!(got[0].get_i64_history(&s, "lat", 1), Some(0));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = reg();
        for i in 0..6 {
            commit_with(&r, 100 * (i + 1), i as i64, 0);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 2);
        let got = r.get(None);
        assert_eq!(got[0].get_i64("pend"), Some(2)); // 0 and 1 overwritten
    }

    #[test]
    fn get_by_timestamp_matches_covering_vector() {
        let r = reg();
        commit_with(&r, 100, 1, 0); // covers 100..=110
        commit_with(&r, 200, 2, 0); // covers 200..=210
        let hit = r.get(Some(Instant::from_nanos(205)));
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].get_i64("pend"), Some(2));
        assert!(r.get(Some(Instant::from_nanos(150))).is_empty());
    }

    #[test]
    fn truncate_preserves_most_recent_with_history() {
        let r = reg();
        commit_with(&r, 100, 1, 10);
        commit_with(&r, 200, 2, 20);
        commit_with(&r, 300, 3, 30);
        let removed = r.truncate(None);
        assert_eq!(removed, 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(None)[0].get_i64("pend"), Some(3));
        // Next commit still sees the preserved history.
        commit_with(&r, 400, 4, 40);
        let s = r.schema().clone();
        let last = r.get(None).last().unwrap().clone();
        assert_eq!(last.get_i64_history(&s, "lat", 1), Some(30));
    }

    #[test]
    fn truncate_without_history_clears_everything() {
        let r = Registry::new(Schema::builder().feature("x", 8, 1).build(), 4);
        r.begin_capture(Instant::from_nanos(1));
        r.capture("x", &1i64.to_le_bytes());
        r.commit(Instant::from_nanos(2));
        assert_eq!(r.truncate(None), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn incr_accumulates_and_unknown_keys_rejected() {
        let r = reg();
        r.begin_capture(Instant::from_nanos(1));
        assert!(r.capture_incr("pend", 1));
        assert!(r.capture_incr("pend", 1));
        assert!(r.capture_incr("pend", -1));
        assert!(!r.capture_incr("nope", 1));
        assert!(!r.capture("nope", &[0; 8]));
        r.commit(Instant::from_nanos(2));
        assert_eq!(r.get(None)[0].get_i64("pend"), Some(1));
    }

    #[test]
    fn commit_without_begin_is_rejected() {
        let r = reg();
        assert!(!r.commit(Instant::from_nanos(5)));
        assert!(r.is_empty());
    }

    #[test]
    fn concurrent_capture_from_many_threads() {
        // The §5.3 property: instrumentation calls on arbitrary threads,
        // no locking discipline. 8 threads each add 1000 increments.
        let r = std::sync::Arc::new(reg());
        r.begin_capture(Instant::from_nanos(1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.capture_incr("pend", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        r.commit(Instant::from_nanos(2));
        assert_eq!(r.get(None)[0].get_i64("pend"), Some(8000));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::schema::Schema;
    use proptest::prelude::*;

    proptest! {
        /// The ring never exceeds its window and commits are ordered by
        /// ts_end.
        #[test]
        fn ring_bounds_and_order(commits in 1usize..40, window in 1usize..8) {
            let r = Registry::new(
                Schema::builder().feature("x", 8, 2).build(),
                window,
            );
            for i in 0..commits {
                let t = (i as u64 + 1) * 100;
                r.begin_capture(Instant::from_nanos(t));
                r.capture("x", &(i as i64).to_le_bytes());
                r.commit(Instant::from_nanos(t + 1));
                prop_assert!(r.len() <= window);
            }
            let got = r.get(None);
            for w in got.windows(2) {
                prop_assert!(w[0].ts_end() < w[1].ts_end());
            }
            prop_assert_eq!(r.len(), commits.min(window));
        }

        /// History sample n of commit k equals the scalar captured at
        /// commit k-n.
        #[test]
        fn history_is_shifted_scalars(values in proptest::collection::vec(-1000i64..1000, 3..12)) {
            let r = Registry::new(
                Schema::builder().feature("v", 8, 3).build(),
                64,
            );
            for (i, &v) in values.iter().enumerate() {
                let t = (i as u64 + 1) * 10;
                r.begin_capture(Instant::from_nanos(t));
                r.capture("v", &v.to_le_bytes());
                r.commit(Instant::from_nanos(t + 1));
            }
            let got = r.get(None);
            let schema = r.schema().clone();
            for (k, fv) in got.iter().enumerate() {
                for n in 0..3usize {
                    let expected = if n <= k { values[k - n] } else { 0 };
                    prop_assert_eq!(fv.get_i64_history(&schema, "v", n), Some(expected));
                }
            }
        }
    }
}
