//! Feature-vector schemas (§5.2).
//!
//! "The schema is a map from feature key (name) to a tuple of
//! `<size, entries>`, where size is the number of bytes required by the
//! feature type ... and entries provides array support for feature vectors
//! that include historical values."

use std::collections::HashMap;

/// Per-feature layout: `<size, entries>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSpec {
    /// Bytes per sample (e.g. 4 for an `int`, 8 for a timestamp). The
    /// lock-free capture path stores samples in a single atomic word, so
    /// `size` is limited to 8.
    pub size: usize,
    /// Samples kept: 1 for a scalar; N > 1 keeps the last N values with
    /// index 0 the most recent (§5.2).
    pub entries: usize,
}

impl FeatureSpec {
    /// Total bytes a committed vector stores for this feature.
    pub fn stored_bytes(&self) -> usize {
        self.size * self.entries
    }
}

/// An ordered feature schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Keys in declaration order (stable order ⇒ stable model input
    /// layout).
    keys: Vec<String>,
    specs: HashMap<String, (usize, FeatureSpec)>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { keys: Vec::new(), specs: HashMap::new() }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the schema has no features (never produced by the
    /// builder).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Keys in declaration order.
    pub fn keys(&self) -> &[String] {
        &self.keys
    }

    /// Spec for `key`.
    pub fn spec(&self, key: &str) -> Option<FeatureSpec> {
        self.specs.get(key).map(|&(_, s)| s)
    }

    /// Dense slot index for `key` (used by the lock-free capture table).
    pub fn index_of(&self, key: &str) -> Option<usize> {
        self.specs.get(key).map(|&(i, _)| i)
    }

    /// Spec at a dense index.
    pub fn spec_at(&self, index: usize) -> Option<(&str, FeatureSpec)> {
        self.keys.get(index).map(|k| (k.as_str(), self.specs[k].1))
    }

    /// Whether any feature keeps history (`entries > 1`) — controls the
    /// truncation guarantee of §5.4.
    pub fn has_history(&self) -> bool {
        self.specs.values().any(|&(_, s)| s.entries > 1)
    }

    /// Total f32 values produced when a committed vector is flattened for
    /// model input (each stored sample becomes one value).
    pub fn flat_width(&self) -> usize {
        self.keys.iter().map(|k| self.specs[k].1.entries).sum()
    }
}

/// Builder for [`Schema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    keys: Vec<String>,
    specs: HashMap<String, (usize, FeatureSpec)>,
}

impl SchemaBuilder {
    /// Declares a feature.
    ///
    /// # Panics
    ///
    /// Panics if `key` repeats, `size` is 0 or exceeds 8, or `entries`
    /// is 0.
    pub fn feature(mut self, key: &str, size: usize, entries: usize) -> Self {
        assert!(!self.specs.contains_key(key), "duplicate feature key {key:?}");
        assert!((1..=8).contains(&size), "feature size must be 1..=8 bytes");
        assert!(entries >= 1, "entries must be at least 1");
        let index = self.keys.len();
        self.keys.push(key.to_owned());
        self.specs.insert(key.to_owned(), (index, FeatureSpec { size, entries }));
        self
    }

    /// Finishes the schema.
    ///
    /// # Panics
    ///
    /// Panics if no features were declared.
    pub fn build(self) -> Schema {
        assert!(!self.keys.is_empty(), "schema needs at least one feature");
        Schema { keys: self.keys, specs: self.specs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linnos_schema() -> Schema {
        Schema::builder().feature("pend_ios", 8, 1).feature("io_latency", 8, 4).build()
    }

    #[test]
    fn lookup_and_order() {
        let s = linnos_schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.keys(), &["pend_ios".to_owned(), "io_latency".to_owned()]);
        assert_eq!(s.index_of("pend_ios"), Some(0));
        assert_eq!(s.index_of("io_latency"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.spec("io_latency"), Some(FeatureSpec { size: 8, entries: 4 }));
        assert_eq!(s.spec_at(1).map(|(k, _)| k), Some("io_latency"));
    }

    #[test]
    fn history_and_width() {
        let s = linnos_schema();
        assert!(s.has_history());
        assert_eq!(s.flat_width(), 1 + 4);
        assert_eq!(s.spec("io_latency").unwrap().stored_bytes(), 32);

        let scalar_only = Schema::builder().feature("x", 4, 1).build();
        assert!(!scalar_only.has_history());
    }

    #[test]
    #[should_panic(expected = "duplicate feature key")]
    fn duplicate_key_rejected() {
        Schema::builder().feature("x", 4, 1).feature("x", 4, 1);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn oversized_feature_rejected() {
        Schema::builder().feature("x", 16, 1);
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn empty_schema_rejected() {
        Schema::builder().build();
    }
}
