//! The Table 1 facade: named registries, model management, classifiers,
//! and policies.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::RwLock;

use lake_ml::serialize;
use lake_sim::Instant;

use crate::registry::Registry;
use crate::schema::Schema;
use crate::vector::FeatureVector;

/// Which processor a registered classifier targets (`arch` in Table 1:
/// "CPU / GPU / XPU").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Host processor fallback.
    Cpu,
    /// The LAKE-remoted accelerator.
    Gpu,
    /// Any other accelerator.
    Xpu,
}

/// A classifier callback: scores a batch of feature vectors, one score
/// per vector (`register_classifier`, `score_features`).
pub type ClassifierFn = Arc<dyn Fn(&[FeatureVector]) -> Vec<f32> + Send + Sync>;

/// A policy callback deciding which registered arch runs a batch
/// (`register_policy`; realized with eBPF in the paper, a closure here).
pub type PolicyFn = Arc<dyn Fn(usize) -> Arch + Send + Sync>;

/// Errors from the feature-registry service.
#[derive(Debug)]
pub enum RegistryError {
    /// No registry under `(name, subsystem)`.
    UnknownRegistry(String, String),
    /// `create_registry` on an existing `(name, subsystem)`.
    DuplicateRegistry(String, String),
    /// The feature key is not in the registry's schema.
    UnknownFeature(String),
    /// `commit_fv_capture` without an open capture.
    NoCaptureOpen,
    /// `score_features` with no classifier registered for the arch the
    /// policy picked.
    NoClassifier(Arch),
    /// No model under `(name, subsystem)`.
    UnknownModel(String, String),
    /// Model file/codec failure.
    Model(serialize::ModelCodecError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownRegistry(n, s) => write!(f, "no registry {n:?}/{s:?}"),
            RegistryError::DuplicateRegistry(n, s) => {
                write!(f, "registry {n:?}/{s:?} already exists")
            }
            RegistryError::UnknownFeature(k) => write!(f, "feature {k:?} not in schema"),
            RegistryError::NoCaptureOpen => f.write_str("no feature-vector capture is open"),
            RegistryError::NoClassifier(arch) => {
                write!(f, "no classifier registered for {arch:?}")
            }
            RegistryError::UnknownModel(n, s) => write!(f, "no model {n:?}/{s:?}"),
            RegistryError::Model(e) => write!(f, "model failure: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<serialize::ModelCodecError> for RegistryError {
    fn from(e: serialize::ModelCodecError) -> Self {
        RegistryError::Model(e)
    }
}

struct Entry {
    registry: Arc<Registry>,
    classifiers: HashMap<Arch, ClassifierFn>,
    policy: Option<PolicyFn>,
}

struct ModelEntry {
    path: PathBuf,
    /// in-memory copy — "at inference time, having the model in memory is
    /// critical to performance" (§5.1)
    blob: Option<Vec<u8>>,
}

/// The global feature-registry service (Table 1).
#[derive(Default)]
pub struct FeatureRegistryService {
    entries: RwLock<HashMap<(String, String), Entry>>,
    models: RwLock<HashMap<(String, String), ModelEntry>>,
}

impl fmt::Debug for FeatureRegistryService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FeatureRegistryService")
            .field("registries", &self.entries.read().len())
            .field("models", &self.models.read().len())
            .finish()
    }
}

fn key(name: &str, sys: &str) -> (String, String) {
    (name.to_owned(), sys.to_owned())
}

impl FeatureRegistryService {
    /// Creates an empty service.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_entry<R>(
        &self,
        name: &str,
        sys: &str,
        f: impl FnOnce(&Entry) -> R,
    ) -> Result<R, RegistryError> {
        let entries = self.entries.read();
        entries
            .get(&key(name, sys))
            .map(f)
            .ok_or_else(|| RegistryError::UnknownRegistry(name.to_owned(), sys.to_owned()))
    }

    // -- registry lifecycle -------------------------------------------------

    /// `create_registry(name, sys, schema, window)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DuplicateRegistry`] if it already exists.
    pub fn create_registry(
        &self,
        name: &str,
        sys: &str,
        schema: Schema,
        window: usize,
    ) -> Result<(), RegistryError> {
        let mut entries = self.entries.write();
        if entries.contains_key(&key(name, sys)) {
            return Err(RegistryError::DuplicateRegistry(name.to_owned(), sys.to_owned()));
        }
        entries.insert(
            key(name, sys),
            Entry {
                registry: Arc::new(Registry::new(schema, window)),
                classifiers: HashMap::new(),
                policy: None,
            },
        );
        Ok(())
    }

    /// `destroy_registry(name, sys)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownRegistry`] if absent.
    pub fn destroy_registry(&self, name: &str, sys: &str) -> Result<(), RegistryError> {
        self.entries
            .write()
            .remove(&key(name, sys))
            .map(|_| ())
            .ok_or_else(|| RegistryError::UnknownRegistry(name.to_owned(), sys.to_owned()))
    }

    /// Every registered `(name, subsystem)` pair, sorted — the schema
    /// catalog a daemon supervisor shadows and re-announces to each new
    /// `lakeD` incarnation after a crash.
    pub fn catalog(&self) -> Vec<(String, String)> {
        let mut keys: Vec<_> = self.entries.read().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Direct handle to a registry (for hot paths that want to skip the
    /// name lookup).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownRegistry`] if absent.
    pub fn registry(&self, name: &str, sys: &str) -> Result<Arc<Registry>, RegistryError> {
        self.with_entry(name, sys, |e| Arc::clone(&e.registry))
    }

    // -- model management (§5.1) ---------------------------------------------

    /// `create_model(name, sys, path)`: registers a model slot persisted
    /// at `path` and writes `blob` there.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Model`] on filesystem failure.
    pub fn create_model(
        &self,
        name: &str,
        sys: &str,
        path: &Path,
        blob: &[u8],
    ) -> Result<(), RegistryError> {
        serialize::save_blob(path, blob)?;
        self.models.write().insert(
            key(name, sys),
            ModelEntry { path: path.to_owned(), blob: Some(blob.to_vec()) },
        );
        Ok(())
    }

    /// `update_model(name, sys, path)`: commits a changed model to the
    /// file system (and refreshes the in-memory copy).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownModel`] if the slot does not exist,
    /// [`RegistryError::Model`] on filesystem failure.
    pub fn update_model(&self, name: &str, sys: &str, blob: &[u8]) -> Result<(), RegistryError> {
        let mut models = self.models.write();
        let entry = models
            .get_mut(&key(name, sys))
            .ok_or_else(|| RegistryError::UnknownModel(name.to_owned(), sys.to_owned()))?;
        serialize::save_blob(&entry.path, blob)?;
        entry.blob = Some(blob.to_vec());
        Ok(())
    }

    /// `load_model(name, sys, path)`: loads a model from `path` into
    /// memory (normally done at boot).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Model`] if the file is unreadable or not
    /// a model blob.
    pub fn load_model(&self, name: &str, sys: &str, path: &Path) -> Result<(), RegistryError> {
        let blob = serialize::load_blob(path)?;
        self.models
            .write()
            .insert(key(name, sys), ModelEntry { path: path.to_owned(), blob: Some(blob) });
        Ok(())
    }

    /// `delete_model(name, sys, path)`: removes the model from memory and
    /// the file system.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownModel`] if absent.
    pub fn delete_model(&self, name: &str, sys: &str) -> Result<(), RegistryError> {
        let entry = self
            .models
            .write()
            .remove(&key(name, sys))
            .ok_or_else(|| RegistryError::UnknownModel(name.to_owned(), sys.to_owned()))?;
        let _ = std::fs::remove_file(&entry.path);
        Ok(())
    }

    /// The in-memory model blob, if loaded.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownModel`] if the slot is absent or
    /// empty.
    pub fn model_blob(&self, name: &str, sys: &str) -> Result<Vec<u8>, RegistryError> {
        self.models
            .read()
            .get(&key(name, sys))
            .and_then(|e| e.blob.clone())
            .ok_or_else(|| RegistryError::UnknownModel(name.to_owned(), sys.to_owned()))
    }

    // -- classifiers and policies ---------------------------------------------

    /// `register_classifier(name, sys, fn, arch)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownRegistry`] if absent.
    pub fn register_classifier(
        &self,
        name: &str,
        sys: &str,
        arch: Arch,
        classifier: ClassifierFn,
    ) -> Result<(), RegistryError> {
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(&key(name, sys))
            .ok_or_else(|| RegistryError::UnknownRegistry(name.to_owned(), sys.to_owned()))?;
        entry.classifiers.insert(arch, classifier);
        Ok(())
    }

    /// `register_policy(name, sys, fn)` — the contention/batching policy
    /// (§4.3) choosing the arch per batch.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownRegistry`] if absent.
    pub fn register_policy(
        &self,
        name: &str,
        sys: &str,
        policy: PolicyFn,
    ) -> Result<(), RegistryError> {
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(&key(name, sys))
            .ok_or_else(|| RegistryError::UnknownRegistry(name.to_owned(), sys.to_owned()))?;
        entry.policy = Some(policy);
        Ok(())
    }

    /// `score_features(name, sys, fvs)`: runs the registered classifier
    /// over a batch; the registered policy (default: CPU) picks the arch.
    /// Returns `(arch, scores)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::NoClassifier`] if no classifier matches
    /// the chosen arch.
    pub fn score_features(
        &self,
        name: &str,
        sys: &str,
        fvs: &[FeatureVector],
    ) -> Result<(Arch, Vec<f32>), RegistryError> {
        let (arch, classifier) = self.with_entry(name, sys, |e| {
            let arch = e.policy.as_ref().map_or(Arch::Cpu, |p| p(fvs.len()));
            (arch, e.classifiers.get(&arch).cloned())
        })?;
        let classifier = classifier.ok_or(RegistryError::NoClassifier(arch))?;
        Ok((arch, classifier(fvs)))
    }

    // -- capture and batch APIs -------------------------------------------------

    /// `begin_fv_capture(name, sys, ts)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownRegistry`] if absent.
    pub fn begin_fv_capture(
        &self,
        name: &str,
        sys: &str,
        ts: Instant,
    ) -> Result<(), RegistryError> {
        self.with_entry(name, sys, |e| e.registry.begin_capture(ts))
    }

    /// `capture_feature(name, sys, key, val)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownFeature`] for keys outside the
    /// schema.
    pub fn capture_feature(
        &self,
        name: &str,
        sys: &str,
        feature: &str,
        value: &[u8],
    ) -> Result<(), RegistryError> {
        let ok = self.with_entry(name, sys, |e| e.registry.capture(feature, value))?;
        if ok {
            Ok(())
        } else {
            Err(RegistryError::UnknownFeature(feature.to_owned()))
        }
    }

    /// `capture_feature_incr(name, sys, key, incrval)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownFeature`] for keys outside the
    /// schema.
    pub fn capture_feature_incr(
        &self,
        name: &str,
        sys: &str,
        feature: &str,
        delta: i64,
    ) -> Result<(), RegistryError> {
        let ok = self.with_entry(name, sys, |e| e.registry.capture_incr(feature, delta))?;
        if ok {
            Ok(())
        } else {
            Err(RegistryError::UnknownFeature(feature.to_owned()))
        }
    }

    /// `commit_fv_capture(name, sys, ts)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::NoCaptureOpen`] if `begin_fv_capture` was
    /// not called.
    pub fn commit_fv_capture(
        &self,
        name: &str,
        sys: &str,
        ts: Instant,
    ) -> Result<(), RegistryError> {
        let ok = self.with_entry(name, sys, |e| e.registry.commit(ts))?;
        if ok {
            Ok(())
        } else {
            Err(RegistryError::NoCaptureOpen)
        }
    }

    /// `get_features(name, sys, ts)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownRegistry`] if absent.
    pub fn get_features(
        &self,
        name: &str,
        sys: &str,
        ts: Option<Instant>,
    ) -> Result<Vec<FeatureVector>, RegistryError> {
        self.with_entry(name, sys, |e| e.registry.get(ts))
    }

    /// `truncate_features(name, sys, ts)`; returns how many vectors were
    /// removed.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownRegistry`] if absent.
    pub fn truncate_features(
        &self,
        name: &str,
        sys: &str,
        ts: Option<Instant>,
    ) -> Result<usize, RegistryError> {
        self.with_entry(name, sys, |e| e.registry.truncate(ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service_with_registry() -> FeatureRegistryService {
        let s = FeatureRegistryService::new();
        let schema = Schema::builder().feature("pend_ios", 8, 1).feature("lat", 8, 2).build();
        s.create_registry("sda1", "bio", schema, 16).unwrap();
        s
    }

    #[test]
    fn lifecycle() {
        let s = service_with_registry();
        assert!(matches!(
            s.create_registry("sda1", "bio", Schema::builder().feature("x", 4, 1).build(), 4),
            Err(RegistryError::DuplicateRegistry(..))
        ));
        s.destroy_registry("sda1", "bio").unwrap();
        assert!(matches!(
            s.destroy_registry("sda1", "bio"),
            Err(RegistryError::UnknownRegistry(..))
        ));
    }

    #[test]
    fn capture_flow_via_names() {
        let s = service_with_registry();
        s.begin_fv_capture("sda1", "bio", Instant::from_nanos(10)).unwrap();
        s.capture_feature_incr("sda1", "bio", "pend_ios", 2).unwrap();
        s.capture_feature("sda1", "bio", "lat", &99i64.to_le_bytes()).unwrap();
        s.commit_fv_capture("sda1", "bio", Instant::from_nanos(20)).unwrap();
        let fvs = s.get_features("sda1", "bio", None).unwrap();
        assert_eq!(fvs.len(), 1);
        assert_eq!(fvs[0].get_i64("pend_ios"), Some(2));
        assert_eq!(s.truncate_features("sda1", "bio", None).unwrap(), 0); // history keeps last
    }

    #[test]
    fn unknown_names_and_features_error() {
        let s = service_with_registry();
        assert!(matches!(
            s.begin_fv_capture("nvme0", "bio", Instant::EPOCH),
            Err(RegistryError::UnknownRegistry(..))
        ));
        s.begin_fv_capture("sda1", "bio", Instant::EPOCH).unwrap();
        assert!(matches!(
            s.capture_feature("sda1", "bio", "bogus", &[0; 8]),
            Err(RegistryError::UnknownFeature(_))
        ));
        assert!(matches!(
            s.commit_fv_capture("sda1", "bogus", Instant::EPOCH),
            Err(RegistryError::UnknownRegistry(..))
        ));
    }

    #[test]
    fn commit_without_begin_errors() {
        let s = service_with_registry();
        assert!(matches!(
            s.commit_fv_capture("sda1", "bio", Instant::EPOCH),
            Err(RegistryError::NoCaptureOpen)
        ));
    }

    #[test]
    fn classifier_and_policy_dispatch() {
        let s = service_with_registry();
        // CPU classifier scores 0.0, GPU scores 1.0 — so the test can see
        // which one the policy picked.
        s.register_classifier("sda1", "bio", Arch::Cpu, Arc::new(|fvs| vec![0.0; fvs.len()]))
            .unwrap();
        s.register_classifier("sda1", "bio", Arch::Gpu, Arc::new(|fvs| vec![1.0; fvs.len()]))
            .unwrap();
        // Policy: GPU for batches >= 2.
        s.register_policy(
            "sda1",
            "bio",
            Arc::new(|batch| if batch >= 2 { Arch::Gpu } else { Arch::Cpu }),
        )
        .unwrap();

        for i in 0..3u64 {
            s.begin_fv_capture("sda1", "bio", Instant::from_nanos(i * 10)).unwrap();
            s.capture_feature_incr("sda1", "bio", "pend_ios", 1).unwrap();
            s.commit_fv_capture("sda1", "bio", Instant::from_nanos(i * 10 + 5)).unwrap();
        }
        let fvs = s.get_features("sda1", "bio", None).unwrap();
        let (arch, scores) = s.score_features("sda1", "bio", &fvs).unwrap();
        assert_eq!(arch, Arch::Gpu);
        assert_eq!(scores, vec![1.0; 3]);
        let (arch, _) = s.score_features("sda1", "bio", &fvs[..1]).unwrap();
        assert_eq!(arch, Arch::Cpu);
    }

    #[test]
    fn score_without_classifier_errors() {
        let s = service_with_registry();
        let err = s.score_features("sda1", "bio", &[]).unwrap_err();
        assert!(matches!(err, RegistryError::NoClassifier(Arch::Cpu)));
    }

    #[test]
    fn model_lifecycle_via_files() {
        use lake_ml::{Activation, Mlp};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let dir = std::env::temp_dir().join("lake-registry-model-test");
        let path = dir.join("bio.lakeml");
        let s = service_with_registry();

        let mut rng = StdRng::seed_from_u64(1);
        let model = Mlp::new(&[3, 4, 2], Activation::Relu, &mut rng);
        let blob = serialize::encode_mlp(&model);
        s.create_model("sda1", "bio", &path, &blob).unwrap();
        assert_eq!(s.model_blob("sda1", "bio").unwrap(), blob);

        // update: retrain and commit
        let model2 = Mlp::new(&[3, 8, 2], Activation::Relu, &mut rng);
        let blob2 = serialize::encode_mlp(&model2);
        s.update_model("sda1", "bio", &blob2).unwrap();
        assert_eq!(s.model_blob("sda1", "bio").unwrap(), blob2);

        // reload from the file system (a fresh boot)
        let s2 = FeatureRegistryService::new();
        s2.load_model("sda1", "bio", &path).unwrap();
        assert_eq!(s2.model_blob("sda1", "bio").unwrap(), blob2);

        s.delete_model("sda1", "bio").unwrap();
        assert!(matches!(s.model_blob("sda1", "bio"), Err(RegistryError::UnknownModel(..))));
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_device_registries_are_independent() {
        // §5.5: "Each block device needs its own feature registry".
        let s = FeatureRegistryService::new();
        for dev in ["nvme0", "nvme1", "nvme2"] {
            let schema = Schema::builder().feature("pend", 8, 1).build();
            s.create_registry(dev, "bio", schema, 8).unwrap();
            s.begin_fv_capture(dev, "bio", Instant::EPOCH).unwrap();
        }
        s.capture_feature_incr("nvme1", "bio", "pend", 7).unwrap();
        for dev in ["nvme0", "nvme1", "nvme2"] {
            s.commit_fv_capture(dev, "bio", Instant::from_nanos(5)).unwrap();
        }
        assert_eq!(s.get_features("nvme0", "bio", None).unwrap()[0].get_i64("pend"), Some(0));
        assert_eq!(s.get_features("nvme1", "bio", None).unwrap()[0].get_i64("pend"), Some(7));
    }
}
