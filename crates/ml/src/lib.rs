//! From-scratch machine learning for the LAKE reproduction.
//!
//! The paper's workloads use three model families, all reimplemented here
//! with no external ML dependency:
//!
//! * **MLPs** ([`Mlp`]) — LinnOS's I/O latency predictor (2 layers, 256→2,
//!   plus the paper's `+1`/`+2` augmented variants), MLLB's load-balancing
//!   perceptron, and KML's readahead classifier. Trainable with SGD.
//! * **LSTMs** ([`LstmClassifier`]) — Kleio's page-warmth model (two LSTM
//!   layers, realized in the paper through remoted TensorFlow). Trainable
//!   with truncated BPTT.
//! * **k-NN** ([`Knn`]) — the malware detector (16 nearest neighbours over
//!   syscall/PMU feature vectors).
//!
//! [`CpuCostModel`] converts model FLOPs into virtual time for the CPU
//! execution paths, anchored to the paper's "each inference on CPU takes
//! around 15µs" for the base LinnOS model (§7.1). The GPU paths run the
//! same math inside simulated device kernels (see `lake-core`).
//!
//! # Example: train and run a LinnOS-shaped MLP
//!
//! ```
//! use lake_ml::{Activation, Matrix, Mlp, SgdConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut model = Mlp::new(&[4, 16, 2], Activation::Relu, &mut rng);
//! let x = Matrix::from_rows(&[vec![0.0, 0.0, 1.0, 1.0], vec![1.0, 1.0, 0.0, 0.0]]);
//! let y = vec![0, 1];
//! let cfg = SgdConfig { learning_rate: 0.1, ..SgdConfig::default() };
//! for _ in 0..200 {
//!     model.train_batch(&x, &y, &cfg);
//! }
//! assert_eq!(model.classify(&x), vec![0, 1]);
//! ```

#![warn(missing_docs)]

pub mod cost;
mod fastmath;
pub mod gemm;
pub mod knn;
pub mod lstm;
pub mod mlp;
pub mod quant;
pub mod serialize;
pub mod store;
pub mod tensor;

pub use cost::CpuCostModel;
pub use gemm::{
    EngineStats, InferenceEngine, Kernel, ModelFormat, PackedLstm, PackedMatrix, PackedMlp,
    PackedModelCache, WorkerPool, DEFAULT_POOL_MIN_ROWS,
};
pub use knn::Knn;
pub use lstm::{LstmCell, LstmClassifier};
pub use mlp::{Activation, Mlp, SgdConfig};
pub use quant::{PackedQuantLstm, PackedQuantMatrix, PackedQuantMlp, QuantizedLstm, QuantizedMlp};
pub use serialize::{ModelCodecError, ModelKind};
pub use store::{ModelPin, ModelStore, StoreError, StoreStats, MODEL_PAGE_SIZE};
pub use tensor::Matrix;
