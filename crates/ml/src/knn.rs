//! k-nearest-neighbours classification — the malware detector (§7.5).
//!
//! The paper's detector classifies processes "based on feature vectors
//! which can track syscall frequencies and PMU counters", using 16 nearest
//! neighbours over a database of 16,384 reference points. Brute-force L2
//! search, exactly what the CUDA kernel computes, reimplemented here for
//! the CPU path and reused inside the simulated GPU kernel.

use crate::tensor::Matrix;

/// A brute-force k-NN classifier.
#[derive(Debug, Clone)]
pub struct Knn {
    refs: Matrix,
    labels: Vec<u32>,
    k: usize,
}

impl Knn {
    /// Builds a classifier over `refs` (one reference point per row) with
    /// `labels[i]` the class of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != refs.rows()`, `k` is zero, or `k`
    /// exceeds the number of references.
    pub fn new(refs: Matrix, labels: Vec<u32>, k: usize) -> Self {
        assert_eq!(labels.len(), refs.rows(), "one label per reference row");
        assert!(k > 0, "k must be non-zero");
        assert!(k <= refs.rows(), "k cannot exceed the reference count");
        Knn { refs, labels, k }
    }

    /// Number of reference points.
    pub fn num_refs(&self) -> usize {
        self.refs.rows()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.refs.cols()
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// FLOPs for one query: distance computation dominates
    /// (`3 · refs · dims`: sub, square, add per element).
    pub fn flops_per_query(&self) -> f64 {
        3.0 * self.refs.rows() as f64 * self.refs.cols() as f64
    }

    /// Indices and distances of the `k` nearest references to `query`,
    /// nearest first.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != dims()`.
    pub fn nearest(&self, query: &[f32]) -> Vec<(usize, f32)> {
        assert_eq!(query.len(), self.dims(), "query dimensionality mismatch");
        // Selection via a bounded insertion into a k-sized buffer: O(n·k)
        // worst case but k is small (16 in the paper).
        let mut best: Vec<(usize, f32)> = Vec::with_capacity(self.k + 1);
        for r in 0..self.refs.rows() {
            let d = Matrix::sq_l2(query, self.refs.row(r));
            if best.len() < self.k || d < best.last().expect("non-empty").1 {
                let pos = best.partition_point(|&(_, bd)| bd <= d);
                best.insert(pos, (r, d));
                if best.len() > self.k {
                    best.pop();
                }
            }
        }
        best
    }

    /// Majority-vote class for one query (ties break toward the smaller
    /// label, deterministic).
    pub fn classify(&self, query: &[f32]) -> u32 {
        let neighbours = self.nearest(query);
        let mut votes: Vec<(u32, usize)> = Vec::new();
        for (idx, _) in neighbours {
            let label = self.labels[idx];
            match votes.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => votes.push((label, 1)),
            }
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(l, _)| l)
            .expect("k >= 1 guarantees at least one vote")
    }

    /// Classifies a batch of queries (one per row).
    pub fn classify_batch(&self, queries: &Matrix) -> Vec<u32> {
        (0..queries.rows()).map(|r| self.classify(queries.row(r))).collect()
    }

    /// Fraction of queries classified as their true label.
    pub fn accuracy(&self, queries: &Matrix, truth: &[u32]) -> f64 {
        let preds = self.classify_batch(queries);
        let correct = preds.iter().zip(truth).filter(|(p, t)| p == t).count();
        correct as f64 / truth.len() as f64
    }

    /// The reference matrix (for GPU upload).
    pub fn references(&self) -> &Matrix {
        &self.refs
    }

    /// The reference labels (for GPU upload).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_knn(k: usize) -> Knn {
        // Class 0 near the origin, class 1 near (10, 10).
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            rows.push(vec![0.1 * i as f32, 0.05 * i as f32]);
            labels.push(0);
            rows.push(vec![10.0 + 0.1 * i as f32, 10.0 - 0.05 * i as f32]);
            labels.push(1);
        }
        Knn::new(Matrix::from_rows(&rows), labels, k)
    }

    #[test]
    fn classifies_clusters() {
        let knn = two_cluster_knn(3);
        assert_eq!(knn.classify(&[0.2, 0.2]), 0);
        assert_eq!(knn.classify(&[9.5, 10.2]), 1);
    }

    #[test]
    fn nearest_is_sorted_and_correct() {
        let refs = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![5.0]]);
        let knn = Knn::new(refs, vec![0, 1, 2, 3], 3);
        let near = knn.nearest(&[1.1]);
        assert_eq!(near.len(), 3);
        assert_eq!(near[0].0, 1); // 1.0 closest to 1.1 (d=0.01)
        assert_eq!(near[1].0, 2); // 2.0 next (d=0.81)
        assert_eq!(near[2].0, 0); // 0.0 last (d=1.21)
        assert!(near[0].1 <= near[1].1 && near[1].1 <= near[2].1);
    }

    #[test]
    fn batch_matches_single() {
        let knn = two_cluster_knn(5);
        let queries = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 10.0]]);
        assert_eq!(knn.classify_batch(&queries), vec![0, 1]);
        assert_eq!(knn.accuracy(&queries, &[0, 1]), 1.0);
    }

    #[test]
    fn k_equal_refs_uses_global_majority() {
        let refs = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![100.0]]);
        let knn = Knn::new(refs, vec![1, 1, 0], 3);
        assert_eq!(knn.classify(&[50.0]), 1);
    }

    #[test]
    fn flops_scale_with_dims() {
        let knn = two_cluster_knn(1);
        assert_eq!(knn.flops_per_query(), 3.0 * 16.0 * 2.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn k_larger_than_refs_rejected() {
        let refs = Matrix::from_rows(&[vec![0.0]]);
        Knn::new(refs, vec![0], 2);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_query_dims_rejected() {
        let knn = two_cluster_knn(1);
        knn.classify(&[1.0, 2.0, 3.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The nearest list is sorted by distance and has exactly k
        /// entries, and the single nearest neighbour is never farther than
        /// any other reference.
        #[test]
        fn nearest_invariants(
            points in proptest::collection::vec(proptest::collection::vec(-50.0f32..50.0, 3), 5..40),
            query in proptest::collection::vec(-50.0f32..50.0, 3),
            k in 1usize..5,
        ) {
            let n = points.len();
            let labels: Vec<u32> = (0..n as u32).collect();
            let knn = Knn::new(Matrix::from_rows(&points), labels, k.min(n));
            let near = knn.nearest(&query);
            prop_assert_eq!(near.len(), k.min(n));
            for w in near.windows(2) {
                prop_assert!(w[0].1 <= w[1].1);
            }
            let best = near[0].1;
            for p in &points {
                prop_assert!(Matrix::sq_l2(&query, p) >= best - 1e-4);
            }
        }
    }
}
