//! Paged model store: a budgeted, shm-backed weight cache.
//!
//! The paper's lakeD keeps every registered model resident forever; at
//! hundreds of models × shards with online learning continuously minting
//! new versions, that OOMs. This module is the page-cache-style answer
//! (ROADMAP open item 2): weight blobs live in page-granular allocations
//! carved from a dedicated [`ShmRegion`] under a hard byte budget, with
//!
//! * **clock (second-chance) eviction** — unpinned residents are evicted
//!   in reference order when a fault needs room;
//! * **refcounted pinning** — [`ModelStore::acquire`] returns a
//!   [`ModelPin`] guard; pinned weights are never evicted, so in-flight
//!   inference (including queued batcher tickets) cannot lose its model
//!   mid-call;
//! * **versioned hot-swap** — [`ModelStore::install`] retires the old
//!   version in place: new requests see `v+1` immediately while pins on
//!   `v` keep its page alive until the last one drops;
//! * **cold-miss faulting** — a non-resident acquire reloads the blob
//!   through a simulated NVMe ([`NvmeDevice`]) and charges the reload
//!   latency to the shared virtual clock, so profitability policies see
//!   real miss costs;
//! * **crash-safe reset** — [`ModelStore::crash_reset`] bumps the page
//!   region's incarnation epoch and sweeps every dead-version page with
//!   `reclaim_before`, converging the region back to a coalesced free
//!   list; stale pin guards from the dead incarnation become no-ops.
//!
//! The byte budget is a hard ceiling: `resident_bytes <= budget` is
//! asserted after every mutation, not sampled. An eviction storm
//! ([`PressurePlan`]) can tighten the *effective* budget inside
//! virtual-time windows without ever raising the ceiling.

use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use lake_block::{NvmeDevice, NvmeSpec};
use lake_shm::{ShmBuffer, ShmRegion};
use lake_sim::{PressurePlan, SharedClock, SimRng};

/// Page granularity for weight blobs: blobs round up to whole pages so
/// eviction returns clean, coalescible spans to the region.
pub const MODEL_PAGE_SIZE: usize = 4096;

/// Errors returned by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// No model with this id is installed.
    UnknownModel {
        /// The id looked up.
        id: u64,
    },
    /// The budget cannot fit the blob even after evicting every unpinned
    /// resident — either the blob alone exceeds the budget or pinned
    /// weights hold the rest.
    BudgetExhausted {
        /// The id being faulted in.
        id: u64,
        /// Page bytes the fault needs.
        need: usize,
        /// The hard budget in force.
        budget: usize,
        /// Bytes currently held by pinned (unevictable) residents.
        pinned: usize,
    },
    /// The blob failed to decode into a model.
    Decode {
        /// The id whose blob was undecodable.
        id: u64,
    },
    /// An install carried a version at or below the installed one; the
    /// store only moves forward (hot-swap is `v → v+1`).
    StaleVersion {
        /// The id being installed.
        id: u64,
        /// The version offered.
        offered: u64,
        /// The version already installed.
        installed: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownModel { id } => write!(f, "unknown model {id}"),
            StoreError::BudgetExhausted { id, need, budget, pinned } => write!(
                f,
                "model store budget exhausted faulting model {id}: need {need} bytes, \
                 budget {budget}, {pinned} pinned"
            ),
            StoreError::Decode { id } => write!(f, "model {id} blob failed to decode"),
            StoreError::StaleVersion { id, offered, installed } => write!(
                f,
                "stale install for model {id}: offered v{offered}, installed v{installed}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Counter snapshot for [`Lake::perf_report`]-style reporting.
///
/// [`Lake::perf_report`]: https://docs.rs/lake-core
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Hard byte budget (`usize::MAX` means unbounded).
    pub budget_bytes: usize,
    /// Bytes currently resident in pages.
    pub resident_bytes: usize,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: usize,
    /// Bytes currently held by pinned residents (including retired
    /// versions still finishing in-flight work).
    pub pinned_bytes: usize,
    /// Acquires served from a resident page.
    pub hits: u64,
    /// Acquires that faulted the blob back in through the NVMe.
    pub misses: u64,
    /// Unpinned residents evicted to make room.
    pub evictions: u64,
    /// Versions installed (loads, trains, hot-swaps, restores).
    pub installs: u64,
    /// Old versions retired by a hot-swap.
    pub swaps_retired: u64,
    /// Crash resets ([`ModelStore::crash_reset`]).
    pub resets: u64,
    /// Dead-version pages reclaimed by crash resets.
    pub pages_reclaimed: u64,
    /// Total virtual time charged to cold-miss faults, nanoseconds.
    pub fault_ns_total: u64,
}

impl StoreStats {
    /// Hit fraction over all acquires, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

struct Resident<T> {
    page: ShmBuffer,
    bytes: usize,
    model: Arc<T>,
    pins: u32,
    referenced: bool,
}

struct Slot<T> {
    version: u64,
    blob: Arc<Vec<u8>>,
    resident: Option<Resident<T>>,
}

/// An old version still pinned by in-flight work after a hot-swap (or
/// unload); its page is freed when the last pin drops.
struct Retired<T> {
    id: u64,
    version: u64,
    page: ShmBuffer,
    bytes: usize,
    pins: u32,
    _model: Arc<T>,
}

struct State<T> {
    device: NvmeDevice,
    slots: HashMap<u64, Slot<T>>,
    retired: Vec<Retired<T>>,
    /// Clock-order ring of ids that may be resident; lazily pruned.
    ring: Vec<u64>,
    hand: usize,
    resident_bytes: usize,
    pressure: Option<PressurePlan>,
    /// Incarnation serial; pin guards from older serials no-op on drop.
    serial: u64,
}

type DecodeFn<T> = dyn Fn(&[u8]) -> Option<T> + Send + Sync;

struct Shared<T> {
    clock: SharedClock,
    pages: ShmRegion,
    budget: Option<usize>,
    decode: Box<DecodeFn<T>>,
    state: Mutex<State<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    installs: AtomicU64,
    swaps_retired: AtomicU64,
    resets: AtomicU64,
    pages_reclaimed: AtomicU64,
    fault_ns: AtomicU64,
    peak_resident: AtomicUsize,
    fault_lat_us: Mutex<Vec<f64>>,
}

/// A refcounted pin on one installed model version.
///
/// While the guard lives, the pinned version's page cannot be evicted and
/// a hot-swap to a newer version retires (rather than frees) it. Dropping
/// the last pin on a retired version returns its page to the region.
pub struct ModelPin<T> {
    shared: Arc<Shared<T>>,
    id: u64,
    version: u64,
    serial: u64,
    model: Arc<T>,
}

impl<T> ModelPin<T> {
    /// The pinned model id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The pinned version — what the engine cache keys packed weights by.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The pinned model, shareable across threads for the call's duration.
    pub fn model(&self) -> Arc<T> {
        Arc::clone(&self.model)
    }
}

impl<T> Deref for ModelPin<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.model
    }
}

impl<T> fmt::Debug for ModelPin<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelPin").field("id", &self.id).field("version", &self.version).finish()
    }
}

impl<T> Drop for ModelPin<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("store poisoned");
        if st.serial != self.serial {
            // The incarnation this pin belonged to crashed; its pages were
            // already swept.
            return;
        }
        if let Some(slot) = st.slots.get_mut(&self.id) {
            if slot.version == self.version {
                if let Some(res) = slot.resident.as_mut() {
                    res.pins = res.pins.saturating_sub(1);
                }
                return;
            }
        }
        // A retired version: free the page on the last unpin.
        if let Some(idx) =
            st.retired.iter().position(|r| r.id == self.id && r.version == self.version)
        {
            st.retired[idx].pins = st.retired[idx].pins.saturating_sub(1);
            if st.retired[idx].pins == 0 {
                let dead = st.retired.swap_remove(idx);
                st.resident_bytes -= dead.bytes;
                let _ = self.shared.pages.free(dead.page);
            }
        }
    }
}

/// The paged model store. Clones share state (daemon + supervisor views).
pub struct ModelStore<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for ModelStore<T> {
    fn clone(&self) -> Self {
        ModelStore { shared: Arc::clone(&self.shared) }
    }
}

impl<T> fmt::Debug for ModelStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.shared.state.lock().expect("store poisoned");
        f.debug_struct("ModelStore")
            .field("budget", &self.shared.budget)
            .field("resident_bytes", &st.resident_bytes)
            .field("models", &st.slots.len())
            .finish()
    }
}

impl<T: Send + Sync + 'static> ModelStore<T> {
    /// A store over a dedicated page region.
    ///
    /// `budget_bytes: None` is unbounded (every model stays resident —
    /// the paper's original behaviour). The NVMe behind cold misses is
    /// the testbed's Samsung 980 Pro with a deterministic RNG stream.
    pub fn new(
        clock: SharedClock,
        pages: ShmRegion,
        budget_bytes: Option<usize>,
        decode: impl Fn(&[u8]) -> Option<T> + Send + Sync + 'static,
    ) -> Self {
        let device = NvmeDevice::new(NvmeSpec::samsung_980pro(), SimRng::seed(0x1a4e));
        ModelStore {
            shared: Arc::new(Shared {
                clock,
                pages,
                budget: budget_bytes,
                decode: Box::new(decode),
                state: Mutex::new(State {
                    device,
                    slots: HashMap::new(),
                    retired: Vec::new(),
                    ring: Vec::new(),
                    hand: 0,
                    resident_bytes: 0,
                    pressure: None,
                    serial: 0,
                }),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                installs: AtomicU64::new(0),
                swaps_retired: AtomicU64::new(0),
                resets: AtomicU64::new(0),
                pages_reclaimed: AtomicU64::new(0),
                fault_ns: AtomicU64::new(0),
                peak_resident: AtomicUsize::new(0),
                fault_lat_us: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The hard byte budget, if bounded.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.shared.budget
    }

    /// Applies an eviction-storm plan: inside storm windows the effective
    /// budget tightens to `budget / divisor` (never exceeding the hard
    /// ceiling outside them).
    pub fn set_pressure(&self, plan: Option<PressurePlan>) {
        self.state().pressure = plan;
    }

    fn state(&self) -> MutexGuard<'_, State<T>> {
        self.shared.state.lock().expect("store poisoned")
    }

    fn page_len(blob_len: usize) -> usize {
        blob_len.max(1).div_ceil(MODEL_PAGE_SIZE) * MODEL_PAGE_SIZE
    }

    fn effective_budget(&self, st: &State<T>) -> Option<usize> {
        let budget = self.shared.budget?;
        Some(match st.pressure {
            Some(plan) => plan.effective_budget(budget, self.shared.clock.now()),
            None => budget,
        })
    }

    /// The hard ceiling: `resident_bytes <= budget` after every mutation.
    fn assert_budget(&self, st: &State<T>) {
        if let Some(budget) = self.shared.budget {
            assert!(
                st.resident_bytes <= budget,
                "model store over budget: {} resident > {budget}",
                st.resident_bytes
            );
        }
    }

    fn note_peak(&self, resident: usize) {
        self.shared.peak_resident.fetch_max(resident, Ordering::Relaxed);
    }

    /// Second-chance eviction until `need` more bytes fit under the
    /// effective budget. Pinned residents are never touched.
    fn make_room(&self, st: &mut State<T>, id: u64, need: usize) -> Result<(), StoreError> {
        let Some(effective) = self.effective_budget(st) else {
            return Ok(());
        };
        let hard = self.shared.budget.expect("effective implies hard");
        while st.resident_bytes + need > effective {
            if st.ring.is_empty() {
                // Nothing evictable at all (empty store, or every
                // remaining byte is held by retired-but-pinned pages).
                let pinned = pinned_bytes(st);
                return Err(StoreError::BudgetExhausted { id, need, budget: hard, pinned });
            }
            // One full referenced-bit sweep plus one eviction sweep, at
            // most: 2 × ring length steps before we conclude nothing is
            // evictable.
            let mut evicted = false;
            let mut steps = 0;
            let max_steps = st.ring.len() * 2;
            while steps < max_steps && !st.ring.is_empty() {
                if st.hand >= st.ring.len() {
                    st.hand = 0;
                }
                let cand = st.ring[st.hand];
                let prune = match st.slots.get_mut(&cand) {
                    Some(slot) => match slot.resident.as_mut() {
                        Some(res) if res.pins > 0 => {
                            st.hand += 1;
                            false
                        }
                        Some(res) if res.referenced => {
                            res.referenced = false;
                            st.hand += 1;
                            false
                        }
                        Some(_) => {
                            let res = slot.resident.take().expect("checked resident");
                            st.resident_bytes -= res.bytes;
                            let _ = self.shared.pages.free(res.page);
                            self.shared.evictions.fetch_add(1, Ordering::Relaxed);
                            evicted = true;
                            true
                        }
                        None => true,
                    },
                    None => true,
                };
                if prune {
                    st.ring.remove(st.hand);
                    if evicted {
                        break;
                    }
                }
                steps += 1;
            }
            if !evicted {
                let pinned: usize = pinned_bytes(st);
                return Err(StoreError::BudgetExhausted { id, need, budget: hard, pinned });
            }
        }
        Ok(())
    }

    fn fault_in(&self, st: &mut State<T>, id: u64) -> Result<(), StoreError> {
        let (blob, _version) = {
            let slot = st.slots.get(&id).ok_or(StoreError::UnknownModel { id })?;
            (Arc::clone(&slot.blob), slot.version)
        };
        let need = Self::page_len(blob.len());
        self.make_room(st, id, need)?;
        // Charge the reload through the simulated NVMe in virtual time:
        // the profitability policy must see real miss costs.
        let now = self.shared.clock.now();
        let latency = st.device.read_latency(now, blob.len().max(1));
        self.shared.clock.advance(latency);
        self.shared.fault_ns.fetch_add(latency.as_nanos(), Ordering::Relaxed);
        self.shared
            .fault_lat_us
            .lock()
            .expect("store poisoned")
            .push(latency.as_nanos() as f64 / 1_000.0);
        self.install_resident(st, id, &blob, true)?;
        Ok(())
    }

    /// Copies the blob into a fresh page and decodes it. `charged` only
    /// affects accounting labels; the NVMe charge happens in `fault_in`.
    fn install_resident(
        &self,
        st: &mut State<T>,
        id: u64,
        blob: &[u8],
        _charged: bool,
    ) -> Result<(), StoreError> {
        let model = (self.shared.decode)(blob).ok_or(StoreError::Decode { id })?;
        let page = match self.shared.pages.alloc_owned_paged(blob.len(), MODEL_PAGE_SIZE, id) {
            Ok(page) => page,
            Err(_) => {
                // The region itself is fragmented or undersized even
                // though the budget has room; surface as exhaustion.
                let pinned = pinned_bytes(st);
                return Err(StoreError::BudgetExhausted {
                    id,
                    need: Self::page_len(blob.len()),
                    budget: self.shared.budget.unwrap_or(usize::MAX),
                    pinned,
                });
            }
        };
        let bytes = page.len();
        self.shared.pages.write(&page, 0, blob).expect("fresh page fits blob");
        let slot = st.slots.get_mut(&id).expect("slot exists during install");
        debug_assert!(slot.resident.is_none(), "installing over a resident slot");
        slot.resident =
            Some(Resident { page, bytes, model: Arc::new(model), pins: 0, referenced: true });
        st.resident_bytes += bytes;
        if !st.ring.contains(&id) {
            st.ring.push(id);
        }
        self.note_peak(st.resident_bytes);
        self.assert_budget(st);
        Ok(())
    }

    /// Installs `version` of model `id` from `blob`, retiring any older
    /// version in place: new acquires see the new version immediately,
    /// in-flight pins on the old one finish on its page.
    ///
    /// The new version is made resident eagerly when the budget allows
    /// (the blob just arrived from user space — no NVMe charge); if
    /// pinned old-version pages hold the budget, it is installed
    /// non-resident and the first acquire faults it in.
    ///
    /// # Errors
    ///
    /// [`StoreError::StaleVersion`] if `version` does not advance the
    /// installed one; [`StoreError::Decode`] if the blob is undecodable.
    pub fn install(&self, id: u64, version: u64, blob: &[u8]) -> Result<(), StoreError> {
        // Validate before mutating anything.
        (self.shared.decode)(blob).ok_or(StoreError::Decode { id })?;
        let mut st = self.state();
        let st = &mut *st;
        match st.slots.get_mut(&id) {
            Some(slot) => {
                if version <= slot.version {
                    return Err(StoreError::StaleVersion {
                        id,
                        offered: version,
                        installed: slot.version,
                    });
                }
                if let Some(res) = slot.resident.take() {
                    if res.pins > 0 {
                        // In-flight work finishes on the old version.
                        st.retired.push(Retired {
                            id,
                            version: slot.version,
                            page: res.page,
                            bytes: res.bytes,
                            pins: res.pins,
                            _model: res.model,
                        });
                    } else {
                        st.resident_bytes -= res.bytes;
                        let _ = self.shared.pages.free(res.page);
                    }
                    self.shared.swaps_retired.fetch_add(1, Ordering::Relaxed);
                }
                slot.version = version;
                slot.blob = Arc::new(blob.to_vec());
            }
            None => {
                st.slots
                    .insert(id, Slot { version, blob: Arc::new(blob.to_vec()), resident: None });
            }
        }
        self.shared.installs.fetch_add(1, Ordering::Relaxed);
        // Eager residency when the budget allows; otherwise lazy fault-in.
        let need = Self::page_len(blob.len());
        if self.make_room(st, id, need).is_ok() {
            let blob = Arc::clone(&st.slots.get(&id).expect("just installed").blob);
            let _ = self.install_resident(st, id, &blob, false);
        }
        self.assert_budget(st);
        Ok(())
    }

    /// Pins the current version of model `id` for the duration of a call.
    ///
    /// A resident hit bumps the reference bit; a miss evicts under the
    /// budget, charges the NVMe reload in virtual time, and decodes the
    /// blob back into a resident page.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`] for missing ids,
    /// [`StoreError::BudgetExhausted`] when pinned weights hold the whole
    /// budget.
    pub fn acquire(&self, id: u64) -> Result<ModelPin<T>, StoreError> {
        let mut st = self.state();
        let st = &mut *st;
        if !st.slots.contains_key(&id) {
            return Err(StoreError::UnknownModel { id });
        }
        // An active eviction storm trims residency down to the tightened
        // effective budget before this acquire is served (best effort —
        // pinned pages stay).
        if st.pressure.is_some() {
            let _ = self.make_room(st, id, 0);
        }
        let resident = st.slots.get(&id).expect("checked").resident.is_some();
        if resident {
            self.shared.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shared.misses.fetch_add(1, Ordering::Relaxed);
            self.fault_in(st, id)?;
        }
        let slot = st.slots.get_mut(&id).expect("resident after fault");
        let res = slot.resident.as_mut().expect("resident after fault");
        res.pins += 1;
        res.referenced = true;
        let pin = ModelPin {
            shared: Arc::clone(&self.shared),
            id,
            version: slot.version,
            serial: st.serial,
            model: Arc::clone(&res.model),
        };
        self.assert_budget(st);
        Ok(pin)
    }

    /// The installed version of `id`, if any.
    pub fn version_of(&self, id: u64) -> Option<u64> {
        self.state().slots.get(&id).map(|s| s.version)
    }

    /// Whether `id`'s current version is resident right now.
    pub fn is_resident(&self, id: u64) -> bool {
        self.state().slots.get(&id).is_some_and(|s| s.resident.is_some())
    }

    /// The current blob for `id` (what an export returns).
    pub fn blob_of(&self, id: u64) -> Option<Arc<Vec<u8>>> {
        self.state().slots.get(&id).map(|s| Arc::clone(&s.blob))
    }

    /// Installed model ids, sorted.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.state().slots.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Uninstalls `id`. A pinned resident is retired (page freed on the
    /// last unpin); an unpinned one is freed immediately.
    pub fn remove(&self, id: u64) {
        let mut st = self.state();
        let st = &mut *st;
        if let Some(mut slot) = st.slots.remove(&id) {
            if let Some(res) = slot.resident.take() {
                if res.pins > 0 {
                    st.retired.push(Retired {
                        id,
                        version: slot.version,
                        page: res.page,
                        bytes: res.bytes,
                        pins: res.pins,
                        _model: res.model,
                    });
                } else {
                    st.resident_bytes -= res.bytes;
                    let _ = self.shared.pages.free(res.page);
                }
            }
        }
        st.ring.retain(|&r| r != id);
        st.hand = 0;
        self.assert_budget(st);
    }

    /// Wipes all daemon-side state after a crash: every slot, resident
    /// page, and retired page of the dead incarnation is dropped, and the
    /// page region's epoch advances so the dead pages sweep back to the
    /// free list in one `reclaim_before` pass. Outstanding pins from the
    /// dead incarnation become no-ops.
    pub fn crash_reset(&self) {
        let mut st = self.state();
        let st = &mut *st;
        st.serial += 1;
        st.slots.clear();
        st.retired.clear();
        st.ring.clear();
        st.hand = 0;
        st.resident_bytes = 0;
        // All pages were owned allocations of the dead incarnation:
        // advance the epoch and reclaim everything tagged before it.
        let next_epoch = self.shared.pages.epoch() + 1;
        self.shared.pages.set_epoch(next_epoch);
        let report = self.shared.pages.reclaim_before(next_epoch);
        self.shared.pages_reclaimed.fetch_add(report.reclaimed_allocs, Ordering::Relaxed);
        self.shared.resets.fetch_add(1, Ordering::Relaxed);
        self.assert_budget(st);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        let st = self.state();
        StoreStats {
            budget_bytes: self.shared.budget.unwrap_or(usize::MAX),
            resident_bytes: st.resident_bytes,
            peak_resident_bytes: self.shared.peak_resident.load(Ordering::Relaxed),
            pinned_bytes: pinned_bytes(&st),
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            evictions: self.shared.evictions.load(Ordering::Relaxed),
            installs: self.shared.installs.load(Ordering::Relaxed),
            swaps_retired: self.shared.swaps_retired.load(Ordering::Relaxed),
            resets: self.shared.resets.load(Ordering::Relaxed),
            pages_reclaimed: self.shared.pages_reclaimed.load(Ordering::Relaxed),
            fault_ns_total: self.shared.fault_ns.load(Ordering::Relaxed),
        }
    }

    /// Cold-miss fault latencies observed so far, microseconds, in order.
    pub fn fault_latencies_us(&self) -> Vec<f64> {
        self.shared.fault_lat_us.lock().expect("store poisoned").clone()
    }
}

fn pinned_bytes<T>(st: &State<T>) -> usize {
    let live: usize = st
        .slots
        .values()
        .filter_map(|s| s.resident.as_ref())
        .filter(|r| r.pins > 0)
        .map(|r| r.bytes)
        .sum();
    let retired: usize = st.retired.iter().map(|r| r.bytes).sum();
    live + retired
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_sim::{BurstSchedule, Duration};

    /// Test models decode from a blob of `[id byte; n]`; "weights" are the
    /// blob bytes themselves so bit-identity is trivial to check.
    fn store(budget: Option<usize>) -> (SharedClock, ModelStore<Vec<u8>>) {
        let clock = SharedClock::new();
        let pages = ShmRegion::with_capacity(1 << 20);
        let st = ModelStore::new(clock.clone(), pages, budget, |blob: &[u8]| {
            if blob.is_empty() {
                None
            } else {
                Some(blob.to_vec())
            }
        });
        (clock, st)
    }

    fn blob(tag: u8, len: usize) -> Vec<u8> {
        vec![tag; len]
    }

    #[test]
    fn unbounded_store_keeps_everything_resident() {
        let (_clock, st) = store(None);
        for id in 0..20u64 {
            st.install(id, 1, &blob(id as u8, 3000)).unwrap();
        }
        for id in 0..20u64 {
            assert!(st.is_resident(id));
            let pin = st.acquire(id).unwrap();
            assert_eq!(pin[0], id as u8);
        }
        let s = st.stats();
        assert_eq!(s.misses, 0, "no faults without a budget");
        assert_eq!(s.evictions, 0);
        assert_eq!(s.resident_bytes, 20 * 4096);
    }

    #[test]
    fn oversubscribed_store_stays_under_budget_at_all_times() {
        // 10× oversubscription: 40 single-page models, 4-page budget.
        let (_clock, st) = store(Some(4 * 4096));
        for id in 0..40u64 {
            st.install(id, 1, &blob(id as u8, 2048)).unwrap();
            assert!(st.stats().resident_bytes <= 4 * 4096);
        }
        // Churn through every model repeatedly; the store's internal
        // assert fires on any over-budget state, and answers stay
        // bit-identical to the installed blobs.
        for round in 0..5 {
            for id in 0..40u64 {
                let pin = st.acquire(id).unwrap();
                assert_eq!(pin[0], id as u8, "round {round}");
                assert!(st.stats().resident_bytes <= 4 * 4096);
            }
        }
        let s = st.stats();
        assert!(s.misses > 0, "oversubscription must fault");
        assert!(s.evictions > 0);
        assert!(s.fault_ns_total > 0, "faults charge virtual time");
        assert!(s.peak_resident_bytes <= 4 * 4096);
    }

    #[test]
    fn faults_charge_the_virtual_clock() {
        let (clock, st) = store(Some(4096));
        st.install(1, 1, &blob(1, 100)).unwrap();
        st.install(2, 1, &blob(2, 100)).unwrap();
        let before = clock.now();
        let _ = st.acquire(1).unwrap(); // faults 1 back in (2 evicted it)
        assert!(clock.now() > before, "cold miss must advance virtual time");
        assert_eq!(st.fault_latencies_us().len(), 1);
    }

    #[test]
    fn pinned_models_are_never_evicted() {
        let (_clock, st) = store(Some(2 * 4096));
        st.install(1, 1, &blob(1, 100)).unwrap();
        st.install(2, 1, &blob(2, 100)).unwrap();
        let pin1 = st.acquire(1).unwrap();
        let pin2 = st.acquire(2).unwrap();
        // Budget full of pins: a third model cannot fault in.
        st.install(3, 1, &blob(3, 100)).unwrap();
        assert!(!st.is_resident(3), "install under pinned-full budget stays lazy");
        let err = st.acquire(3).unwrap_err();
        assert!(matches!(err, StoreError::BudgetExhausted { pinned, .. } if pinned == 2 * 4096));
        // Pins still read their weights.
        assert_eq!(pin1[0], 1);
        assert_eq!(pin2[0], 2);
        drop(pin1);
        drop(pin2);
        // Room now: the third model faults in.
        let pin3 = st.acquire(3).unwrap();
        assert_eq!(pin3[0], 3);
    }

    #[test]
    fn hot_swap_retires_pinned_version_until_last_unpin() {
        let (_clock, st) = store(Some(4 * 4096));
        st.install(7, 1, &blob(0xAA, 64)).unwrap();
        let old = st.acquire(7).unwrap();
        assert_eq!(old.version(), 1);
        st.install(7, 2, &blob(0xBB, 64)).unwrap();
        // New acquires see v2 immediately; the in-flight pin stays on v1.
        let new = st.acquire(7).unwrap();
        assert_eq!(new.version(), 2);
        assert_eq!(new[0], 0xBB);
        assert_eq!(old[0], 0xAA, "in-flight work finishes on the old weights");
        let before = st.stats();
        assert_eq!(before.swaps_retired, 1);
        assert!(before.pinned_bytes >= 2 * 4096, "both versions pinned");
        drop(old);
        let after = st.stats();
        assert_eq!(
            after.resident_bytes,
            before.resident_bytes - 4096,
            "last unpin frees the retired page"
        );
        drop(new);
    }

    #[test]
    fn stale_installs_are_rejected() {
        let (_clock, st) = store(None);
        st.install(1, 3, &blob(1, 10)).unwrap();
        assert!(matches!(
            st.install(1, 3, &blob(2, 10)),
            Err(StoreError::StaleVersion { offered: 3, installed: 3, .. })
        ));
        assert!(matches!(st.install(1, 2, &blob(2, 10)), Err(StoreError::StaleVersion { .. })));
        assert_eq!(st.version_of(1), Some(3));
    }

    #[test]
    fn crash_reset_sweeps_dead_pages_and_neutralizes_stale_pins() {
        let (_clock, st) = store(Some(8 * 4096));
        for id in 0..4u64 {
            st.install(id, 1, &blob(id as u8, 1000)).unwrap();
        }
        let pin = st.acquire(2).unwrap();
        st.crash_reset();
        let s = st.stats();
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.resets, 1);
        assert_eq!(s.pages_reclaimed, 4, "all dead-version pages reclaimed");
        assert!(st.version_of(2).is_none());
        // The stale pin still reads its Arc'd weights and drops harmlessly.
        assert_eq!(pin[0], 2);
        drop(pin);
        // Fresh installs work in the new incarnation.
        st.install(9, 1, &blob(9, 100)).unwrap();
        assert_eq!(st.acquire(9).unwrap()[0], 9);
    }

    #[test]
    fn eviction_storms_tighten_the_effective_budget() {
        let (clock, st) = store(Some(8 * 4096));
        st.set_pressure(Some(PressurePlan::new(
            BurstSchedule::new(
                Duration::from_millis(1),
                Duration::from_millis(2),
                Duration::from_millis(1),
            ),
            8,
        )));
        for id in 0..8u64 {
            st.install(id, 1, &blob(id as u8, 100)).unwrap();
        }
        assert_eq!(st.stats().resident_bytes, 8 * 4096);
        // Enter the storm window: budget tightens to one page, so an
        // acquire churns everything else out.
        clock.advance(Duration::from_millis(1));
        let pin = st.acquire(0).unwrap();
        assert_eq!(pin[0], 0);
        let s = st.stats();
        assert!(s.resident_bytes <= 4096 * 2, "storm must evict: {} resident", s.resident_bytes);
        assert!(s.evictions >= 6);
    }

    #[test]
    fn remove_retires_pinned_and_frees_unpinned() {
        let (_clock, st) = store(None);
        st.install(1, 1, &blob(1, 10)).unwrap();
        st.install(2, 1, &blob(2, 10)).unwrap();
        let pin = st.acquire(1).unwrap();
        st.remove(1);
        st.remove(2);
        assert!(st.version_of(1).is_none());
        let held = st.stats();
        assert_eq!(held.resident_bytes, 4096, "pinned page retired, unpinned freed");
        assert_eq!(pin[0], 1);
        drop(pin);
        assert_eq!(st.stats().resident_bytes, 0);
    }

    #[test]
    fn oversized_blob_fails_typed() {
        let (_clock, st) = store(Some(4096));
        st.install(1, 1, &blob(1, 8192)).unwrap();
        assert!(!st.is_resident(1));
        assert!(matches!(st.acquire(1), Err(StoreError::BudgetExhausted { .. })));
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let (_clock, st) = store(Some(4 * 4096));
        for id in 0..8u64 {
            st.install(id, 1, &blob(id as u8, 100)).unwrap();
        }
        for _ in 0..100 {
            let _ = st.acquire(1).unwrap();
        }
        let s = st.stats();
        assert!(s.hit_rate() > 0.9, "hot model should hit: {}", s.hit_rate());
    }
}
