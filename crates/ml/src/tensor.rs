//! A minimal dense `f32` matrix — all the tensor machinery the paper's
//! models need.

use std::fmt;

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match dimensions");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        assert!(rows.iter().all(|r| r.len() == cols), "rows must have equal length");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams rhs rows, friendly to the cache.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `bias` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length must equal column count");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Element-wise map, in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise product (Hadamard), producing a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// `self + rhs`, producing a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Scales every element in place.
    pub fn scale_inplace(&mut self, k: f32) {
        for x in &mut self.data {
            *x *= k;
        }
    }

    /// `self -= k * rhs` — the SGD update step.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn saxpy_sub(&mut self, k: f32, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        for (x, &g) in self.data.iter_mut().zip(&rhs.data) {
            *x -= k * g;
        }
    }

    /// Column-wise sums (a 1×cols vector), used for bias gradients.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(r)) {
                *s += x;
            }
        }
        sums
    }

    /// Index of the maximum element in each row (argmax); ties resolve to
    /// the first maximum. Used for classification.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Squared L2 distance between two equal-length slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "length mismatch");
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.at(r, c))?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let mut i = Matrix::zeros(3, 3);
        for k in 0..3 {
            i.set(k, k, 1.0);
        }
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn bias_and_activation_helpers() {
        let mut a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, -4.0]]);
        a.add_row_bias(&[10.0, 20.0]);
        assert_eq!(a.data(), &[11.0, 18.0, 13.0, 16.0]);
        a.map_inplace(|x| x * 2.0);
        assert_eq!(a.at(0, 0), 22.0);
    }

    #[test]
    fn argmax_rows_breaks_correctly() {
        let a = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.2], vec![0.5, 0.5]]);
        assert_eq!(a.argmax_rows(), vec![1, 0, 0]);
    }

    #[test]
    fn col_sums_sum_columns() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn saxpy_sub_is_sgd_step() {
        let mut w = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let g = Matrix::from_rows(&[vec![0.5, -0.5]]);
        w.saxpy_sub(0.1, &g);
        assert_eq!(w.data(), &[0.95, 1.05]);
    }

    #[test]
    fn sq_l2_distance() {
        assert_eq!(Matrix::sq_l2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn from_vec_length_checked() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v))
    }

    proptest! {
        /// (A·B)ᵀ == Bᵀ·Aᵀ
        #[test]
        fn transpose_of_product((a, b) in (small_matrix(3, 4), small_matrix(4, 2))) {
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// Matmul distributes over addition: A·(B+C) == A·B + A·C
        #[test]
        fn matmul_distributes((a, b, c) in (small_matrix(2, 3), small_matrix(3, 3), small_matrix(3, 3))) {
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }

        /// sq_l2 is symmetric and zero on identical inputs.
        #[test]
        fn sq_l2_properties(v in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
            prop_assert_eq!(Matrix::sq_l2(&v, &v), 0.0);
            let w: Vec<f32> = v.iter().map(|x| x + 1.0).collect();
            let d1 = Matrix::sq_l2(&v, &w);
            let d2 = Matrix::sq_l2(&w, &v);
            prop_assert!((d1 - d2).abs() < 1e-3);
            prop_assert!(d1 >= 0.0);
        }
    }
}
