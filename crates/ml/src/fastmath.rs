//! Bit-reproducible fast activations: sigmoid and tanh built from a
//! polynomial `2^x`, using only IEEE-exact single operations — multiply,
//! add, subtract, divide, min/max, `floor`, and an integer exponent
//! splice. No `exp`/`tanh` libm calls, and no FMA.
//!
//! Why this exists: the LSTM gate epilogue evaluates four activations per
//! hidden unit per timestep. With libm transcendentals that epilogue
//! costs more than the gate GEMMs themselves, capping any SIMD GEMM
//! speedup (Amdahl). A degree-5 polynomial `2^r` is ~4x cheaper in
//! scalar form and vectorizes 8-wide.
//!
//! Why it stays bit-identical across kernels: every operation used here
//! is correctly rounded (IEEE 754 requires it for `+ - * /`) or exact
//! (`floor`, min/max on non-NaN, integer exponent construction), and the
//! scalar and SIMD versions perform the *same operations in the same
//! order* per element. The SIMD forms therefore produce the same bits as
//! the scalar form — the `LAKE_SIMD=scalar` chaos oracle stays exact
//! even though the AVX2 engine evaluates activations 8 at a time.
//!
//! Accuracy: `exp2` relative error is ~2e-7 over the clamped range, so
//! sigmoid/tanh are within a few ULP-scale absolute error of libm —
//! far below anything a classifier can observe (asserted in tests).

/// Degree-5 minimax coefficients for `2^r`, `r ∈ [0, 1)` (Cephes-style).
const C5: f32 = 1.877_576_7e-3;
const C4: f32 = 8.989_341e-3;
const C3: f32 = 5.582_631_8e-2;
const C2: f32 = 2.401_536_2e-1;
const C1: f32 = 6.931_531e-1;

/// Clamp bounds keeping `2^k` a normal f32 (no inf/denormal scales).
const LO: f32 = -126.0;
const HI: f32 = 126.0;

/// `-log2(e)` — one constant multiply maps `sigmoid`'s `-x` into base 2.
const NEG_LOG2_E: f32 = -std::f32::consts::LOG2_E;
/// `2·log2(e)` — maps `tanh`'s `2x` into base 2 in one multiply.
const TWO_LOG2_E: f32 = 2.0 * std::f32::consts::LOG2_E;

/// Scalar `2^x`, clamped to `[-126, 126]`. The op sequence below is the
/// contract the SIMD versions replicate exactly: max, min, floor, sub,
/// five Horner steps (separate mul and add), exponent splice, final mul.
#[inline(always)]
// Not `clamp`: max-then-min mirrors `maxps`/`minps` operand-order NaN
// semantics, which `f32::clamp` (NaN-propagating) does not.
#[allow(clippy::manual_clamp)]
fn exp2_core(x: f32) -> f32 {
    let x = x.max(LO).min(HI);
    let k = x.floor();
    let r = x - k;
    let mut p = C5;
    p = p * r + C4;
    p = p * r + C3;
    p = p * r + C2;
    p = p * r + C1;
    p = p * r + 1.0;
    // k is integral and in [-126, 126]: `as i32` (truncating) and the
    // SIMD round-to-nearest convert agree on integral values.
    let scale = f32::from_bits((((k as i32) + 127) << 23) as u32);
    p * scale
}

/// Fast sigmoid: `1 / (1 + 2^(-x·log2 e))`.
#[inline(always)]
pub(crate) fn sigmoid(x: f32) -> f32 {
    let e = exp2_core(x * NEG_LOG2_E);
    1.0 / (1.0 + e)
}

/// Fast tanh: `(e - 1) / (e + 1)` with `e = 2^(2x·log2 e)`.
#[inline(always)]
pub(crate) fn tanh(x: f32) -> f32 {
    let e = exp2_core(x * TWO_LOG2_E);
    (e - 1.0) / (e + 1.0)
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    //! 8-wide AVX2 twins of the scalar activations: same ops, same order,
    //! same bits per lane.
    use super::{C1, C2, C3, C4, C5, HI, LO, NEG_LOG2_E, TWO_LOG2_E};
    use std::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn exp2_core8(x: __m256) -> __m256 {
        let x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(LO)), _mm256_set1_ps(HI));
        let k = _mm256_floor_ps(x);
        let r = _mm256_sub_ps(x, k);
        let mut p = _mm256_set1_ps(C5);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(C4));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(C3));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(C2));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(C1));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0));
        let ki = _mm256_cvtps_epi32(k);
        let bits = _mm256_slli_epi32::<23>(_mm256_add_epi32(ki, _mm256_set1_epi32(127)));
        _mm256_mul_ps(p, _mm256_castsi256_ps(bits))
    }

    /// 8-lane [`super::sigmoid`].
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn sigmoid8(x: __m256) -> __m256 {
        let e = exp2_core8(_mm256_mul_ps(x, _mm256_set1_ps(NEG_LOG2_E)));
        _mm256_div_ps(_mm256_set1_ps(1.0), _mm256_add_ps(_mm256_set1_ps(1.0), e))
    }

    /// 8-lane [`super::tanh`].
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn tanh8(x: __m256) -> __m256 {
        let e = exp2_core8(_mm256_mul_ps(x, _mm256_set1_ps(TWO_LOG2_E)));
        let one = _mm256_set1_ps(1.0);
        _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one))
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod sse {
    //! 4-wide SSE4.1 twins (`_mm_floor_ps` is SSE4.1) of the scalar
    //! activations: same ops, same order, same bits per lane.
    use super::{C1, C2, C3, C4, C5, HI, LO, NEG_LOG2_E, TWO_LOG2_E};
    use std::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn exp2_core4(x: __m128) -> __m128 {
        let x = _mm_min_ps(_mm_max_ps(x, _mm_set1_ps(LO)), _mm_set1_ps(HI));
        let k = _mm_floor_ps(x);
        let r = _mm_sub_ps(x, k);
        let mut p = _mm_set1_ps(C5);
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(C4));
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(C3));
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(C2));
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(C1));
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(1.0));
        let ki = _mm_cvtps_epi32(k);
        let bits = _mm_slli_epi32::<23>(_mm_add_epi32(ki, _mm_set1_epi32(127)));
        _mm_mul_ps(p, _mm_castsi128_ps(bits))
    }

    /// 4-lane [`super::sigmoid`].
    #[inline]
    #[target_feature(enable = "sse4.1")]
    pub(crate) unsafe fn sigmoid4(x: __m128) -> __m128 {
        let e = exp2_core4(_mm_mul_ps(x, _mm_set1_ps(NEG_LOG2_E)));
        _mm_div_ps(_mm_set1_ps(1.0), _mm_add_ps(_mm_set1_ps(1.0), e))
    }

    /// 4-lane [`super::tanh`].
    #[inline]
    #[target_feature(enable = "sse4.1")]
    pub(crate) unsafe fn tanh4(x: __m128) -> __m128 {
        let e = exp2_core4(_mm_mul_ps(x, _mm_set1_ps(TWO_LOG2_E)));
        let one = _mm_set1_ps(1.0);
        _mm_div_ps(_mm_sub_ps(e, one), _mm_add_ps(e, one))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<f32> {
        let mut xs: Vec<f32> = (-4000..=4000).map(|i| i as f32 * 0.01).collect();
        xs.extend([-1.0e4, 1.0e4, -200.0, 200.0, -1.0e-8, 1.0e-8, 0.0, -0.0]);
        xs
    }

    #[test]
    fn close_to_libm() {
        for &x in &sweep() {
            let s = sigmoid(x);
            let s_ref = 1.0 / (1.0 + (-f64::from(x)).exp());
            assert!((f64::from(s) - s_ref).abs() < 2.0e-6, "sigmoid({x}) = {s} vs {s_ref}");
            let t = tanh(x);
            let t_ref = f64::from(x).tanh();
            assert!((f64::from(t) - t_ref).abs() < 2.0e-6, "tanh({x}) = {t} vs {t_ref}");
        }
    }

    #[test]
    fn saturation_is_clean() {
        assert_eq!(sigmoid(1.0e4), 1.0);
        assert!(sigmoid(-1.0e4) >= 0.0 && sigmoid(-1.0e4) < 1.0e-30);
        assert_eq!(tanh(1.0e4), 1.0);
        assert_eq!(tanh(-1.0e4), -1.0);
        assert_eq!(tanh(0.0), 0.0);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_matches_scalar_bit_for_bit() {
        use crate::gemm::Kernel;
        use std::arch::x86_64::*;
        let xs = sweep();
        if Kernel::Sse.available() {
            for chunk in xs.chunks_exact(4) {
                let got: [f32; 4] = unsafe {
                    let v = _mm_loadu_ps(chunk.as_ptr());
                    let mut s = [0.0f32; 4];
                    _mm_storeu_ps(s.as_mut_ptr(), sse::sigmoid4(v));
                    let mut t = [0.0f32; 4];
                    _mm_storeu_ps(t.as_mut_ptr(), sse::tanh4(v));
                    [s[0], s[1], t[2], t[3]]
                };
                assert_eq!(got[0].to_bits(), sigmoid(chunk[0]).to_bits());
                assert_eq!(got[1].to_bits(), sigmoid(chunk[1]).to_bits());
                assert_eq!(got[2].to_bits(), tanh(chunk[2]).to_bits());
                assert_eq!(got[3].to_bits(), tanh(chunk[3]).to_bits());
            }
        }
        if Kernel::Avx2.available() {
            for chunk in xs.chunks_exact(8) {
                let (s, t): ([f32; 8], [f32; 8]) = unsafe {
                    let v = _mm256_loadu_ps(chunk.as_ptr());
                    let mut s = [0.0f32; 8];
                    _mm256_storeu_ps(s.as_mut_ptr(), avx2::sigmoid8(v));
                    let mut t = [0.0f32; 8];
                    _mm256_storeu_ps(t.as_mut_ptr(), avx2::tanh8(v));
                    (s, t)
                };
                for (i, &x) in chunk.iter().enumerate() {
                    assert_eq!(s[i].to_bits(), sigmoid(x).to_bits(), "sigmoid lanes at {x}");
                    assert_eq!(t[i].to_bits(), tanh(x).to_bits(), "tanh lanes at {x}");
                }
            }
        }
    }
}
