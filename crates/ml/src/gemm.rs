//! Packed, parallel GEMM fast path for inference.
//!
//! The naive [`Matrix::matmul`] walks the right-hand side row by row in an
//! i-k-j saxpy. That keeps the *math* simple but leaves two costs on the
//! table for inference, where the weights are reused across every call:
//!
//! * the weight matrix is re-traversed in its row-major layout on every
//!   multiply, with no packing or padding, and
//! * everything runs on one thread.
//!
//! This module adds a fast path that fixes both while staying **bit-identical**
//! to the naive code, because the PR 2/3 chaos invariants (CPU fallback ==
//! GPU result, remote == local) compare outputs exactly:
//!
//! * [`PackedMatrix`] stores the weights **transposed** (column `j` of the
//!   original becomes a contiguous packed row) with the row stride padded to
//!   a 64-byte cache line and the base 64-byte aligned, so each output
//!   element is one linear streamed dot product.
//! * Each output element `out[i][j]` is computed as a single k-ascending
//!   accumulator starting from `0.0`, with the same `a == 0.0` skip the
//!   naive saxpy applies — the exact same float operation sequence, so the
//!   result is the exact same bits.
//! * A fixed-size [`WorkerPool`] partitions **disjoint output row ranges**
//!   across threads. Since no two workers ever touch the same accumulator,
//!   the reduction order per element is unchanged no matter how many
//!   workers run.
//! * Bias and activation are fused into the store ([`PackedMlp::forward`]):
//!   elementwise epilogues commute with the row partition, and the scalar
//!   formulas replicate [`Activation`]'s exactly.
//! * [`PackedLstm`] batches the gate GEMMs across the batch dimension (all
//!   rows of a timestep stream the packed `Wx`/`Wh` once) while keeping the
//!   per-row accumulation order of `LstmCell::step`.
//!
//! Single-thread speed comes from a [`Kernel`] dispatch layer: runtime-
//! detected AVX2 / SSE4.1 microkernels (register-blocked, 4 vector
//! accumulators resident across the whole reduction loop) plus MC/KC/NC
//! cache tiling, selectable via `LAKE_SIMD={auto,avx2,sse,scalar}`. The
//! SIMD kernels stay bit-identical to the scalar oracle because they only
//! widen across *independent* output columns: each element still sees
//! ascending-k accumulation, the `== 0.0` skip, and a separate multiply
//! then add (FMA is deliberately not used — its single rounding would
//! change bits).
//!
//! [`PackedModelCache`] memoizes the packed form per model id so packing is
//! paid once per load, and [`InferenceEngine`] bundles pool + cache with the
//! utilization counters surfaced through `SchedMetrics`.

use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use crate::lstm::LstmClassifier;
use crate::mlp::{Activation, Mlp};
use crate::tensor::Matrix;

/// Packed row stride granularity: 16 f32 = one 64-byte cache line.
pub const PACK_LANE: usize = 16;

// ---------------------------------------------------------------------------
// Kernel dispatch
// ---------------------------------------------------------------------------

/// Which microkernel family executes the GEMM inner loops.
///
/// All f32 kernels are **bit-identical**: per output element they perform
/// the exact op sequence of the scalar oracle (ascending-k accumulation,
/// the `a == 0.0` skip, separate multiply then add). SIMD only widens
/// across independent output columns. The int8 kernels accumulate in i32,
/// which is exact, so they too agree across kernels to the last bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Portable scalar loops — the chaos-invariant oracle.
    Scalar,
    /// SSE4.1 128-bit lanes (4 f32 / 8 i16 per op).
    Sse,
    /// AVX2 256-bit lanes (8 f32 / 16 i16 per op).
    Avx2,
}

/// Runtime CPU probe via CPUID, cached after the first call. AVX2 also
/// requires OS support for saving ymm state (OSXSAVE + XCR0 bits 1–2) —
/// checking the feature bit alone would fault on kernels that disable AVX.
#[cfg(target_arch = "x86_64")]
fn detect_cpu() -> Kernel {
    use std::sync::atomic::{AtomicU8, Ordering};
    static CACHED: AtomicU8 = AtomicU8::new(u8::MAX);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != u8::MAX {
        return match cached {
            2 => Kernel::Avx2,
            1 => Kernel::Sse,
            _ => Kernel::Scalar,
        };
    }
    // SAFETY: CPUID exists on every x86_64 CPU; _xgetbv is gated on the
    // OSXSAVE bit which guarantees the instruction is enabled.
    let best = unsafe {
        use std::arch::x86_64::{__cpuid, __cpuid_count, _xgetbv};
        let f1 = __cpuid(1);
        let sse41 = f1.ecx & (1 << 19) != 0;
        let osxsave = f1.ecx & (1 << 27) != 0;
        let ymm_enabled = osxsave && (_xgetbv(0) & 0x6) == 0x6;
        let avx2 = __cpuid_count(7, 0).ebx & (1 << 5) != 0;
        if avx2 && ymm_enabled {
            Kernel::Avx2
        } else if sse41 {
            Kernel::Sse
        } else {
            Kernel::Scalar
        }
    };
    CACHED.store(
        match best {
            Kernel::Avx2 => 2,
            Kernel::Sse => 1,
            Kernel::Scalar => 0,
        },
        Ordering::Relaxed,
    );
    best
}

impl Kernel {
    /// Best kernel the running CPU supports.
    pub fn detect() -> Kernel {
        #[cfg(target_arch = "x86_64")]
        {
            detect_cpu()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Kernel::Scalar
        }
    }

    /// Whether this kernel can run on the current CPU.
    pub fn available(self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            matches!(
                (self, detect_cpu()),
                (Kernel::Scalar, _)
                    | (Kernel::Sse, Kernel::Sse | Kernel::Avx2)
                    | (Kernel::Avx2, Kernel::Avx2)
            )
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            matches!(self, Kernel::Scalar)
        }
    }

    /// Clamps a requested kernel down to the best one actually available.
    /// Identity for any available kernel; every public dispatch entry runs
    /// requests through this, so the `unsafe` target-feature kernels can
    /// never execute on a CPU that lacks them (the check is one relaxed
    /// atomic load, amortized over a whole tile of work).
    pub(crate) fn clamped(self) -> Kernel {
        match self {
            Kernel::Avx2 if Kernel::Avx2.available() => Kernel::Avx2,
            Kernel::Avx2 | Kernel::Sse if Kernel::Sse.available() => Kernel::Sse,
            Kernel::Scalar | Kernel::Sse | Kernel::Avx2 => Kernel::Scalar,
        }
    }

    /// Parses a `LAKE_SIMD` value. `auto` (or empty) detects the best
    /// kernel; explicit requests clamp down to what the CPU supports, so
    /// asking for `avx2` on an SSE-only host degrades instead of crashing.
    pub fn from_name(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "" | "auto" => Some(Kernel::detect()),
            "avx2" => Some(Kernel::Avx2.clamped()),
            "sse" | "sse4.1" | "sse41" => Some(Kernel::Sse.clamped()),
            "scalar" => Some(Kernel::Scalar),
            _ => None,
        }
    }

    /// Kernel selected by the `LAKE_SIMD` environment variable
    /// (`auto|avx2|sse|scalar`), defaulting to [`Kernel::detect`] when
    /// unset.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `LAKE_SIMD` value.
    pub fn from_env() -> Kernel {
        match std::env::var("LAKE_SIMD") {
            Ok(v) => Kernel::from_name(&v)
                .unwrap_or_else(|| panic!("LAKE_SIMD must be auto|avx2|sse|scalar, got {v:?}")),
            Err(_) => Kernel::detect(),
        }
    }

    /// Short name for metrics and bench output.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse => "sse4.1",
            Kernel::Avx2 => "avx2",
        }
    }
}

/// Numeric format of a packed model; part of the packed-cache key so an f32
/// oracle and its int8 quantized sibling never collide under one model id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFormat {
    /// Full-precision f32 weights (the correctness oracle).
    F32,
    /// Symmetric int8 weights with per-column scales.
    Int8,
}

// ---------------------------------------------------------------------------
// Packed weights
// ---------------------------------------------------------------------------

/// A weight matrix re-laid-out and padded for the inference fast path.
///
/// For an original `k × n` matrix `B`, packed row `k` is original row `k`,
/// padded with zeros to a [`PACK_LANE`]-multiple stride and based at a
/// 64-byte-aligned offset. The layout keeps the naive saxpy's k-outer loop
/// — the one shape whose inner loop carries `n` *independent* accumulators
/// and therefore vectorizes — while giving every row an aligned, uniformly
/// strided start the hot loop can stream.
///
/// (An earlier revision packed columns for dot-product reduction; a dot
/// carries one serial accumulator whose f32 adds cannot be reordered, so
/// it ran scalar and lost ~8× to the vectorized saxpy.)
#[derive(Debug)]
pub struct PackedMatrix {
    /// Original row count of `B` (the reduction dimension `k`).
    k: usize,
    /// Original column count of `B` (the output dimension).
    n: usize,
    /// Padded length of one packed row, a multiple of [`PACK_LANE`].
    stride: usize,
    /// Offset of the first packed element (aligns the base to 64 bytes).
    base: usize,
    data: Vec<f32>,
}

impl PackedMatrix {
    /// Packs `B` (pad + align). Cost is one pass over `B`.
    pub fn pack(b: &Matrix) -> Self {
        let (k, n) = (b.rows(), b.cols());
        let stride = n.div_ceil(PACK_LANE) * PACK_LANE;
        let mut data = vec![0.0f32; k * stride + PACK_LANE - 1];
        // Computed directly from the address instead of `align_offset`
        // (which is allowed to fail spuriously): a Vec<f32> base is always
        // 4-byte aligned, so at most 15 elements reach the next 64-byte
        // boundary and the slack above always covers it.
        let addr = data.as_ptr() as usize;
        let base = (addr.next_multiple_of(64) - addr) / std::mem::size_of::<f32>();
        debug_assert!(base < PACK_LANE, "alignment slack exceeded");
        let src = b.data();
        for kk in 0..k {
            data[base + kk * stride..base + kk * stride + n]
                .copy_from_slice(&src[kk * n..(kk + 1) * n]);
        }
        let pm = PackedMatrix { k, n, stride, base, data };
        debug_assert!(pm.base_aligned(), "packed base must be 64-byte aligned");
        pm
    }

    /// Whether every packed row starts on a 64-byte boundary (the base is
    /// aligned and the stride is a whole number of cache lines). SIMD
    /// kernels rely on rows never straddling a line start; this is asserted
    /// after every pack in debug builds and exposed for the alignment audit
    /// test.
    pub fn base_aligned(&self) -> bool {
        let base_ptr = self.data[self.base..].as_ptr() as usize;
        base_ptr.is_multiple_of(64) && (self.stride * std::mem::size_of::<f32>()).is_multiple_of(64)
    }

    /// Reduction dimension (rows of the original matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension (columns of the original matrix).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Padded stride of one packed row, in f32 elements.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Bytes held by the packed buffer (pad + alignment included).
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Packed row `k`: original row `k` of `B`, contiguous, length `n`.
    #[inline]
    pub fn row(&self, k: usize) -> &[f32] {
        let start = self.base + k * self.stride;
        &self.data[start..start + self.n]
    }
}

// ---------------------------------------------------------------------------
// f32 microkernels
// ---------------------------------------------------------------------------

/// `out[j] += Σ_i a[i] * B[k0 + i][j0 + j]` — the one accumulation
/// primitive every f32 path uses.
///
/// Accumulators are loaded from and stored back to `out`, so callers may
/// seed `out` (LSTM bias) or tile the reduction dimension across several
/// calls without changing any per-element f32 op sequence: loads and
/// stores do not round. Ascending `i`, the scalar `a[i] == 0.0` skip, and
/// separate multiply-then-add are preserved by every kernel, so all three
/// are bit-identical.
///
/// The skip is hoisted out of the hot loops: a branchless scan compacts
/// the nonzero `(index, value)` pairs up front and every kernel walks the
/// compacted list with no data-dependent branch. ReLU activations are
/// ~half exact zeros in a random pattern, so the naive per-element
/// `if av == 0.0` test mispredicts constantly — on such layers the
/// misprediction stalls cost more than the arithmetic itself. Compaction
/// keeps the identical elements in identical ascending order, so the f32
/// op sequence (and therefore the bit pattern) is unchanged.
#[inline]
pub(crate) fn accumulate(
    kernel: Kernel,
    a: &[f32],
    pb: &PackedMatrix,
    k0: usize,
    j0: usize,
    out: &mut [f32],
) {
    debug_assert!(k0 + a.len() <= pb.k, "accumulate k range out of bounds");
    debug_assert!(j0 + out.len() <= pb.n, "accumulate j range out of bounds");
    let mut idx = [0u32; TILE_KC];
    let mut val = [0f32; TILE_KC];
    for (c, chunk) in a.chunks(TILE_KC).enumerate() {
        let first = c * TILE_KC;
        // Unconditional stores + conditional increment: compiles to
        // setcc/add, never a branch, regardless of the zero pattern.
        let mut nz = 0usize;
        for (i, &av) in chunk.iter().enumerate() {
            idx[nz] = (first + i) as u32;
            val[nz] = av;
            nz += usize::from(av != 0.0);
        }
        if nz == 0 {
            continue;
        }
        let (idx, val) = (&idx[..nz], &val[..nz]);
        match kernel {
            Kernel::Scalar => accumulate_scalar(idx, val, pb, k0, j0, out),
            // SAFETY: every public dispatch entry normalizes its kernel via
            // `Kernel::clamped`, so a non-scalar kernel only reaches here
            // when the CPU reports the required target features.
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse => unsafe { accumulate_sse(idx, val, pb, k0, j0, out) },
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => unsafe { accumulate_avx2(idx, val, pb, k0, j0, out) },
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Sse | Kernel::Avx2 => accumulate_scalar(idx, val, pb, k0, j0, out),
        }
    }
}

fn accumulate_scalar(
    idx: &[u32],
    val: &[f32],
    pb: &PackedMatrix,
    k0: usize,
    j0: usize,
    out: &mut [f32],
) {
    for (&i, &av) in idx.iter().zip(val) {
        let row = &pb.row(k0 + i as usize)[j0..j0 + out.len()];
        for (o, &b) in out.iter_mut().zip(row) {
            *o += av * b;
        }
    }
}

/// AVX2: 32-column register block — 4 ymm accumulators stay resident
/// across the whole reduction loop; each non-zero `a[i]` costs one
/// broadcast, 4 multiplies and 4 adds, and the compacted `(idx, val)`
/// walk makes the loop branch-free. `mul + add`, **not** `fmadd`: a
/// fused multiply-add rounds once where the scalar oracle rounds twice,
/// which would change bits.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_avx2(
    idx: &[u32],
    val: &[f32],
    pb: &PackedMatrix,
    k0: usize,
    j0: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let jn = out.len();
    let op = out.as_mut_ptr();
    let stride = pb.stride;
    // Base of column j0 in packed row k0; row i is `i * stride` further on.
    // Every load below stays inside the packed buffer: j0 + j + 8 ≤ n ≤
    // stride, so even the last row's widest load ends before the pad does.
    let bbase = pb.data.as_ptr().add(pb.base + k0 * stride + j0);
    let mut j = 0;
    while j + 32 <= jn {
        let mut acc0 = _mm256_loadu_ps(op.add(j));
        let mut acc1 = _mm256_loadu_ps(op.add(j + 8));
        let mut acc2 = _mm256_loadu_ps(op.add(j + 16));
        let mut acc3 = _mm256_loadu_ps(op.add(j + 24));
        for (&i, &av) in idx.iter().zip(val) {
            let bp = bbase.add(i as usize * stride + j);
            let va = _mm256_set1_ps(av);
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(bp)));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(8))));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(16))));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(24))));
        }
        _mm256_storeu_ps(op.add(j), acc0);
        _mm256_storeu_ps(op.add(j + 8), acc1);
        _mm256_storeu_ps(op.add(j + 16), acc2);
        _mm256_storeu_ps(op.add(j + 24), acc3);
        j += 32;
    }
    while j + 8 <= jn {
        let mut acc = _mm256_loadu_ps(op.add(j));
        for (&i, &av) in idx.iter().zip(val) {
            let bp = bbase.add(i as usize * stride + j);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), _mm256_loadu_ps(bp)));
        }
        _mm256_storeu_ps(op.add(j), acc);
        j += 8;
    }
    if j < jn {
        accumulate_scalar(idx, val, pb, k0, j0 + j, &mut out[j..]);
    }
}

/// SSE4.1: 16-column register block with 4 xmm accumulators; same op
/// sequence as the scalar oracle, 4 columns per lane.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn accumulate_sse(
    idx: &[u32],
    val: &[f32],
    pb: &PackedMatrix,
    k0: usize,
    j0: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let jn = out.len();
    let op = out.as_mut_ptr();
    let stride = pb.stride;
    let bbase = pb.data.as_ptr().add(pb.base + k0 * stride + j0);
    let mut j = 0;
    while j + 16 <= jn {
        let mut acc0 = _mm_loadu_ps(op.add(j));
        let mut acc1 = _mm_loadu_ps(op.add(j + 4));
        let mut acc2 = _mm_loadu_ps(op.add(j + 8));
        let mut acc3 = _mm_loadu_ps(op.add(j + 12));
        for (&i, &av) in idx.iter().zip(val) {
            let bp = bbase.add(i as usize * stride + j);
            let va = _mm_set1_ps(av);
            acc0 = _mm_add_ps(acc0, _mm_mul_ps(va, _mm_loadu_ps(bp)));
            acc1 = _mm_add_ps(acc1, _mm_mul_ps(va, _mm_loadu_ps(bp.add(4))));
            acc2 = _mm_add_ps(acc2, _mm_mul_ps(va, _mm_loadu_ps(bp.add(8))));
            acc3 = _mm_add_ps(acc3, _mm_mul_ps(va, _mm_loadu_ps(bp.add(12))));
        }
        _mm_storeu_ps(op.add(j), acc0);
        _mm_storeu_ps(op.add(j + 4), acc1);
        _mm_storeu_ps(op.add(j + 8), acc2);
        _mm_storeu_ps(op.add(j + 12), acc3);
        j += 16;
    }
    while j + 4 <= jn {
        let mut acc = _mm_loadu_ps(op.add(j));
        for (&i, &av) in idx.iter().zip(val) {
            let bp = bbase.add(i as usize * stride + j);
            acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(av), _mm_loadu_ps(bp)));
        }
        _mm_storeu_ps(op.add(j), acc);
        j += 4;
    }
    if j < jn {
        accumulate_scalar(idx, val, pb, k0, j0 + j, &mut out[j..]);
    }
}

/// Reduction-dimension tile: a 256-element slice of one input row is 1 KB,
/// comfortably L1-resident alongside the accumulator block.
const TILE_KC: usize = 256;

/// Output-column tile: with [`TILE_KC`] this caps one packed weight panel
/// at 256 KB so it stays L2-resident while every row of a batch reuses it.
const TILE_NC: usize = 256;

/// Scalar replica of `Activation::apply`'s per-element formulas (both
/// route through the shared `fastmath` activations, so the engine and the
/// naive `Mlp` forward stay bit-identical).
#[inline]
pub(crate) fn apply_act(act: Activation, x: f32) -> f32 {
    match act {
        Activation::Relu => x.max(0.0),
        Activation::Sigmoid => crate::fastmath::sigmoid(x),
        Activation::Tanh => crate::fastmath::tanh(x),
    }
}

/// Packed GEMM for one contiguous row range of the output.
///
/// `a` is the full input (row-major, `a_cols` wide); rows `rows.start..
/// rows.end` are computed into `out`, which must hold exactly that range
/// (`(rows.len()) * pb.n()` floats). `bias`/`act` fuse the epilogue:
/// `out = act(a·B + bias)` with bias added **after** the accumulation,
/// matching `matmul` → `add_row_bias` → `Activation::apply`.
///
/// Per output element this performs the identical sequence of f32
/// operations as [`Matrix::matmul`]'s i-k-j loop: one accumulator starting
/// at `0.0`, adding `a[k] * b[k][j]` for ascending `k` where
/// `a[k] != 0.0`. The MC/KC/NC tiling below only reorders *between*
/// elements — for each column panel every KC block is visited in ascending
/// order and the accumulator round-trips through `out` (loads and stores
/// don't round), so the bit pattern is tiling-invariant. The win is reuse:
/// one L2-resident weight panel streams once while every row of the range
/// consumes it.
#[allow(clippy::too_many_arguments)] // internal driver: shape + fused epilogue
fn gemm_rows(
    kernel: Kernel,
    a: &[f32],
    a_cols: usize,
    rows: Range<usize>,
    pb: &PackedMatrix,
    bias: Option<&[f32]>,
    act: Option<Activation>,
    out: &mut [f32],
) {
    assert_eq!(a_cols, pb.k, "gemm reduction dim mismatch");
    let n = pb.n;
    assert_eq!(out.len(), rows.len() * n, "gemm output size mismatch");
    out.fill(0.0);
    for jc in (0..n).step_by(TILE_NC) {
        let jw = TILE_NC.min(n - jc);
        for kc in (0..a_cols).step_by(TILE_KC) {
            let kw = TILE_KC.min(a_cols - kc);
            for (li, i) in rows.clone().enumerate() {
                let a_row = &a[i * a_cols + kc..i * a_cols + kc + kw];
                let out_row = &mut out[li * n + jc..li * n + jc + jw];
                accumulate(kernel, a_row, pb, kc, jc, out_row);
            }
        }
    }
    for li in 0..rows.len() {
        let out_row = &mut out[li * n..(li + 1) * n];
        match (bias, act) {
            (Some(bs), Some(act)) => {
                for (o, &b) in out_row.iter_mut().zip(bs) {
                    *o = apply_act(act, *o + b);
                }
            }
            (Some(bs), None) => {
                for (o, &b) in out_row.iter_mut().zip(bs) {
                    *o += b;
                }
            }
            (None, Some(act)) => {
                for o in out_row.iter_mut() {
                    *o = apply_act(act, *o);
                }
            }
            (None, None) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A job handed to the pool: called once per worker with the worker index.
type Job = &'static (dyn Fn(usize) + Sync);

enum Msg {
    Run(Job),
    Exit,
}

/// Fixed-size pool of persistent worker threads for partitioned GEMM.
///
/// [`WorkerPool::run`] hands every worker the same closure plus its worker
/// index; the closure picks its own disjoint output slice from the index.
/// `run` blocks until every worker has finished, so the closure may borrow
/// from the caller's stack even though the channel type is `'static`.
pub struct WorkerPool {
    txs: Vec<mpsc::Sender<Msg>>,
    done_rx: Mutex<mpsc::Receiver<bool>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    runs: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("runs", &self.runs.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (done_tx, done_rx) = mpsc::channel::<bool>();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<Msg>();
            let done = done_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lake-gemm-{w}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                Msg::Run(job) => {
                                    let ok = catch_unwind(AssertUnwindSafe(|| job(w))).is_ok();
                                    if done.send(ok).is_err() {
                                        break;
                                    }
                                }
                                Msg::Exit => break,
                            }
                        }
                    })
                    .expect("spawn gemm worker"),
            );
            txs.push(tx);
        }
        WorkerPool { txs, done_rx: Mutex::new(done_rx), handles, workers, runs: AtomicU64::new(0) }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs executed so far (each job fans out to every worker).
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Runs `job(worker_index)` on every worker and blocks until all done.
    ///
    /// # Panics
    ///
    /// Panics if any worker's closure panicked.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the job reference is only lent to the workers for the
        // duration of this call — we block below until every worker has
        // reported completion, after which no worker retains the pointer.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        // One receiver guarded by a mutex serializes concurrent `run`s, so
        // completions from overlapping jobs cannot be misattributed.
        // Poisoning is benign here: a panicked `run` still drains every
        // completion before re-panicking, so the receiver state is clean.
        let done = self.done_rx.lock().unwrap_or_else(|e| e.into_inner());
        for tx in &self.txs {
            tx.send(Msg::Run(job)).expect("gemm worker gone");
        }
        let mut ok = true;
        for _ in 0..self.workers {
            ok &= done.recv().expect("gemm worker gone");
        }
        assert!(ok, "gemm worker panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Msg::Exit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Splits `rows` into at most `parts` contiguous, disjoint ranges.
pub(crate) fn partition(rows: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let per = rows.div_ceil(parts).max(1);
    let mut out = Vec::new();
    let mut start = 0;
    while start < rows {
        let end = (start + per).min(rows);
        out.push(start..end);
        start = end;
    }
    out
}

/// Packed, pool-partitioned matrix multiply, bit-identical to
/// [`Matrix::matmul`].
///
/// `pb` must be [`PackedMatrix::pack`] of the right-hand side. With a pool,
/// output rows are partitioned across workers (disjoint accumulators, so
/// the per-element reduction order — and therefore every output bit — is
/// independent of the worker count).
pub fn matmul_packed(a: &Matrix, pb: &PackedMatrix, pool: Option<&WorkerPool>) -> Matrix {
    matmul_packed_with(a, pb, pool, Kernel::from_env())
}

/// [`matmul_packed`] with an explicit microkernel (bit-identical for every
/// choice; see [`Kernel`]).
pub fn matmul_packed_with(
    a: &Matrix,
    pb: &PackedMatrix,
    pool: Option<&WorkerPool>,
    kernel: Kernel,
) -> Matrix {
    let kernel = kernel.clamped();
    let rows = a.rows();
    let mut out = Matrix::zeros(rows, pb.n);
    run_partitioned(pool, rows, pb.n, out.data_mut(), |range, chunk| {
        gemm_rows(kernel, a.data(), a.cols(), range, pb, None, None, chunk);
    });
    out
}

/// Partitions `rows` across the pool and hands each worker its disjoint
/// chunk of `out` (`row_width` floats per row). Falls back to inline
/// execution for tiny batches or a single worker.
pub(crate) fn run_partitioned(
    pool: Option<&WorkerPool>,
    rows: usize,
    row_width: usize,
    out: &mut [f32],
    work: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    let parallel = match pool {
        Some(p) if p.workers() > 1 && rows > 1 => Some(p),
        _ => None,
    };
    match parallel {
        None => work(0..rows, out),
        Some(pool) => {
            let ranges = partition(rows, pool.workers());
            let per = ranges[0].len();
            let chunks: Vec<Mutex<(Range<usize>, &mut [f32])>> = out
                .chunks_mut(per * row_width)
                .zip(ranges)
                .map(|(chunk, range)| Mutex::new((range, chunk)))
                .collect();
            let job = |w: usize| {
                if let Some(slot) = chunks.get(w) {
                    let mut guard = slot.lock().expect("gemm chunk poisoned");
                    let (range, chunk) = &mut *guard;
                    work(range.clone(), chunk);
                }
            };
            pool.run(&job);
        }
    }
}

// ---------------------------------------------------------------------------
// Packed models
// ---------------------------------------------------------------------------

/// One MLP layer in packed form.
#[derive(Debug)]
struct PackedLayer {
    w: PackedMatrix,
    b: Vec<f32>,
}

/// An [`Mlp`] with every layer's weights packed, forward fused.
#[derive(Debug)]
pub struct PackedMlp {
    layers: Vec<PackedLayer>,
    hidden_activation: Activation,
}

impl PackedMlp {
    /// Packs all layers of `m`.
    pub fn pack(m: &Mlp) -> Self {
        let layers = m
            .parameters()
            .into_iter()
            .map(|(w, b)| PackedLayer { w: PackedMatrix::pack(w), b: b.to_vec() })
            .collect();
        PackedMlp { layers, hidden_activation: m.hidden_activation() }
    }

    /// Input width expected by the first layer.
    pub fn input_size(&self) -> usize {
        self.layers[0].w.k
    }

    /// Logits for a row range of the batch, written into `out`
    /// (`rows.len() * classes` floats). Bit-identical to `Mlp::forward`.
    fn forward_rows(
        &self,
        kernel: Kernel,
        data: &[f32],
        cols: usize,
        rows: Range<usize>,
        out: &mut [f32],
    ) {
        let n_layers = self.layers.len();
        let local = rows.len();
        // First layer reads straight from the caller's (possibly shm-backed)
        // batch tensor; subsequent layers ping-pong a local buffer.
        let mut cur: Vec<f32> = Vec::new();
        let mut cur_cols = cols;
        for (li, layer) in self.layers.iter().enumerate() {
            let last = li + 1 == n_layers;
            let act = if last { None } else { Some(self.hidden_activation) };
            let n = layer.w.n;
            let b = Some(layer.b.as_slice());
            if last {
                if li == 0 {
                    gemm_rows(kernel, data, cur_cols, rows.clone(), &layer.w, b, act, out);
                } else {
                    gemm_rows(kernel, &cur, cur_cols, 0..local, &layer.w, b, act, out);
                }
            } else {
                let mut next = vec![0.0f32; local * n];
                if li == 0 {
                    gemm_rows(kernel, data, cur_cols, rows.clone(), &layer.w, b, act, &mut next);
                } else {
                    gemm_rows(kernel, &cur, cur_cols, 0..local, &layer.w, b, act, &mut next);
                }
                cur = next;
                cur_cols = n;
            }
        }
    }

    /// Batch logits, partitioned across `pool`. Bit-identical to
    /// `Mlp::forward` on the same batch. Kernel comes from `LAKE_SIMD` /
    /// CPU detection; see [`PackedMlp::forward_with`].
    pub fn forward(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
        pool: Option<&WorkerPool>,
    ) -> Matrix {
        self.forward_with(data, rows, cols, pool, Kernel::from_env())
    }

    /// [`PackedMlp::forward`] with an explicit microkernel (bit-identical
    /// for every choice).
    pub fn forward_with(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
        pool: Option<&WorkerPool>,
        kernel: Kernel,
    ) -> Matrix {
        let kernel = kernel.clamped();
        assert_eq!(cols, self.input_size(), "mlp input width mismatch");
        assert!(data.len() >= rows * cols, "mlp batch buffer too short");
        let classes = self.layers.last().expect("non-empty mlp").w.n;
        let mut out = Matrix::zeros(rows.max(1), classes);
        if rows == 0 {
            return out;
        }
        run_partitioned(pool, rows, classes, out.data_mut(), |range, chunk| {
            self.forward_rows(kernel, data, cols, range, chunk);
        });
        out
    }

    /// Argmax classes for a batch; first maximal index wins on ties,
    /// replicating `Matrix::argmax_rows` (hence `Mlp::classify`).
    pub fn classify(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
        pool: Option<&WorkerPool>,
    ) -> Vec<usize> {
        self.classify_with(data, rows, cols, pool, Kernel::from_env())
    }

    /// [`PackedMlp::classify`] with an explicit microkernel.
    pub fn classify_with(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
        pool: Option<&WorkerPool>,
        kernel: Kernel,
    ) -> Vec<usize> {
        let logits = self.forward_with(data, rows, cols, pool, kernel);
        if rows == 0 {
            return Vec::new();
        }
        logits.argmax_rows()
    }
}

/// One LSTM cell in packed form.
#[derive(Debug)]
struct PackedCell {
    input: usize,
    hidden: usize,
    /// Packed `input × 4·hidden` input weights.
    wx: PackedMatrix,
    /// Packed `hidden × 4·hidden` recurrent weights.
    wh: PackedMatrix,
    b: Vec<f32>,
}

/// Gate epilogue shared by every LSTM path (f32 and int8): sigmoid /
/// sigmoid / tanh / sigmoid over the four `hd`-wide `[i, f, g, o]` bands
/// of `z`, then `c = f*c_prev + i*g`, `h = o*tanh(c)`. Kernel-dispatched:
/// the SIMD paths evaluate the shared `fastmath` activations 8 (AVX2) or
/// 4 (SSE) lanes at a time with the identical per-element op sequence, so
/// `h` and `c` match the scalar oracle bit for bit. Elements are
/// independent per `j`, so lane-blocking only reorders *between*
/// elements, never within one.
pub(crate) fn lstm_gate_epilogue(kernel: Kernel, z: &[f32], h: &mut [f32], c: &mut [f32]) {
    match kernel {
        Kernel::Scalar => lstm_gate_epilogue_range(z, h, c, 0),
        // SAFETY: kernels are clamped at every public entry (see
        // `accumulate`), so the target features are present here.
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse => unsafe { lstm_gate_epilogue_sse(z, h, c) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { lstm_gate_epilogue_avx2(z, h, c) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Sse | Kernel::Avx2 => lstm_gate_epilogue_range(z, h, c, 0),
    }
}

/// Scalar gate epilogue over `from..h.len()` — the oracle sequence the
/// SIMD versions replicate lane-for-lane, and their shared tail handler.
fn lstm_gate_epilogue_range(z: &[f32], h: &mut [f32], c: &mut [f32], from: usize) {
    let hd = h.len();
    for j in from..hd {
        let i = crate::fastmath::sigmoid(z[j]);
        let f = crate::fastmath::sigmoid(z[hd + j]);
        let g = crate::fastmath::tanh(z[2 * hd + j]);
        let o = crate::fastmath::sigmoid(z[3 * hd + j]);
        let cn = f * c[j] + i * g;
        c[j] = cn;
        h[j] = o * crate::fastmath::tanh(cn);
    }
}

/// AVX2 gate epilogue: four activations and the cell update, 8 lanes at a
/// time. The `fastmath` SIMD activations are bit-identical to their
/// scalar forms, and `f*c + i*g` / `o*tanh(c)` keep the same separate
/// mul/add sequence, so `h` and `c` match the scalar oracle exactly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lstm_gate_epilogue_avx2(z: &[f32], h: &mut [f32], c: &mut [f32]) {
    use crate::fastmath::avx2::{sigmoid8, tanh8};
    use std::arch::x86_64::*;
    let hd = h.len();
    let zp = z.as_ptr();
    let mut j = 0;
    while j + 8 <= hd {
        let vi = sigmoid8(_mm256_loadu_ps(zp.add(j)));
        let vf = sigmoid8(_mm256_loadu_ps(zp.add(hd + j)));
        let vg = tanh8(_mm256_loadu_ps(zp.add(2 * hd + j)));
        let vo = sigmoid8(_mm256_loadu_ps(zp.add(3 * hd + j)));
        let vc = _mm256_loadu_ps(c.as_ptr().add(j));
        let cn = _mm256_add_ps(_mm256_mul_ps(vf, vc), _mm256_mul_ps(vi, vg));
        _mm256_storeu_ps(c.as_mut_ptr().add(j), cn);
        _mm256_storeu_ps(h.as_mut_ptr().add(j), _mm256_mul_ps(vo, tanh8(cn)));
        j += 8;
    }
    lstm_gate_epilogue_range(z, h, c, j);
}

/// SSE4.1 gate epilogue: same as AVX2, 4 lanes at a time.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn lstm_gate_epilogue_sse(z: &[f32], h: &mut [f32], c: &mut [f32]) {
    use crate::fastmath::sse::{sigmoid4, tanh4};
    use std::arch::x86_64::*;
    let hd = h.len();
    let zp = z.as_ptr();
    let mut j = 0;
    while j + 4 <= hd {
        let vi = sigmoid4(_mm_loadu_ps(zp.add(j)));
        let vf = sigmoid4(_mm_loadu_ps(zp.add(hd + j)));
        let vg = tanh4(_mm_loadu_ps(zp.add(2 * hd + j)));
        let vo = sigmoid4(_mm_loadu_ps(zp.add(3 * hd + j)));
        let vc = _mm_loadu_ps(c.as_ptr().add(j));
        let cn = _mm_add_ps(_mm_mul_ps(vf, vc), _mm_mul_ps(vi, vg));
        _mm_storeu_ps(c.as_mut_ptr().add(j), cn);
        _mm_storeu_ps(h.as_mut_ptr().add(j), _mm_mul_ps(vo, tanh4(cn)));
        j += 4;
    }
    lstm_gate_epilogue_range(z, h, c, j);
}

impl PackedCell {
    /// One timestep for one row; replicates `LstmCell::step` exactly:
    /// `z = b + x·Wx + h·Wh` with the `== 0.0` skip on `x` and `h`, gates
    /// in `[i, f, g, o]` order, `c = f*c_prev + i*g`, `h = o*tanh(c)`.
    fn step(&self, kernel: Kernel, x: &[f32], h: &mut [f32], c: &mut [f32], z: &mut [f32]) {
        // Accumulators seeded with the bias, then x-products for ascending
        // k (skipping x[k] == 0.0), then h-products — the same k-outer
        // saxpy loops (and therefore the same per-element f32 sequence)
        // as `LstmCell::step`, minus its per-step allocations.
        z.copy_from_slice(&self.b);
        accumulate(kernel, x, &self.wx, 0, 0, z);
        accumulate(kernel, h, &self.wh, 0, 0, z);
        lstm_gate_epilogue(kernel, z, h, c);
    }
}

/// An [`LstmClassifier`] with packed gate and head weights.
#[derive(Debug)]
pub struct PackedLstm {
    cells: Vec<PackedCell>,
    head_w: PackedMatrix,
    head_b: Vec<f32>,
}

impl PackedLstm {
    /// Packs all cells and the head of `m`.
    pub fn pack(m: &LstmClassifier) -> Self {
        let cells = m
            .cells()
            .iter()
            .map(|c| {
                let (wx, wh, b) = c.raw_parts();
                PackedCell {
                    input: c.input_size(),
                    hidden: c.hidden_size(),
                    wx: PackedMatrix::pack(wx),
                    wh: PackedMatrix::pack(wh),
                    b: b.to_vec(),
                }
            })
            .collect();
        let (head_w, head_b) = m.head();
        PackedLstm { cells, head_w: PackedMatrix::pack(head_w), head_b: head_b.to_vec() }
    }

    /// Feature width expected per timestep.
    pub fn input_size(&self) -> usize {
        self.cells[0].input
    }

    /// Classes for a row range; one batch row is one sequence of `steps`
    /// timesteps of `cols / steps` features, flattened row-major.
    fn classify_rows(
        &self,
        kernel: Kernel,
        data: &[f32],
        cols: usize,
        steps: usize,
        rows: Range<usize>,
        out: &mut [usize],
    ) {
        let feat = cols / steps;
        let local = rows.len();
        let top_hidden = self.cells.last().expect("non-empty lstm").hidden;
        // layer_input[r * steps * width ..] holds row r's per-timestep
        // inputs for the current layer; starts as the raw features.
        let mut layer_input: Vec<f32> = Vec::with_capacity(local * cols);
        for i in rows {
            layer_input.extend_from_slice(&data[i * cols..(i + 1) * cols]);
        }
        let mut width = feat;
        for cell in &self.cells {
            let hd = cell.hidden;
            let zw = 4 * hd;
            let mut layer_out = vec![0.0f32; local * steps * hd];
            let mut h = vec![0.0f32; local * hd];
            let mut c = vec![0.0f32; local * hd];
            // One gate-accumulator row per batch row so the gate GEMM can
            // be KC-blocked *across* the batch below.
            let mut z = vec![0.0f32; local * zw];
            // Batched, cache-blocked gate GEMM: every row of the batch
            // advances through timestep t before any row starts t+1, and
            // within the timestep each KC slice of the packed Wx/Wh panel
            // streams through cache once while all rows consume it. Rows
            // never share state and each z element still sees bias, then
            // ascending-k x products, then ascending-k h products — the
            // exact per-element order of `LstmCell::step`.
            for t in 0..steps {
                for r in 0..local {
                    z[r * zw..(r + 1) * zw].copy_from_slice(&cell.b);
                }
                for kc in (0..width).step_by(TILE_KC) {
                    let kw = TILE_KC.min(width - kc);
                    for r in 0..local {
                        let x0 = (r * steps + t) * width + kc;
                        let x = &layer_input[x0..x0 + kw];
                        accumulate(kernel, x, &cell.wx, kc, 0, &mut z[r * zw..(r + 1) * zw]);
                    }
                }
                for kc in (0..hd).step_by(TILE_KC) {
                    let kw = TILE_KC.min(hd - kc);
                    for r in 0..local {
                        let hr = &h[r * hd + kc..r * hd + kc + kw];
                        accumulate(kernel, hr, &cell.wh, kc, 0, &mut z[r * zw..(r + 1) * zw]);
                    }
                }
                for r in 0..local {
                    let hr = &mut h[r * hd..(r + 1) * hd];
                    let cr = &mut c[r * hd..(r + 1) * hd];
                    lstm_gate_epilogue(kernel, &z[r * zw..(r + 1) * zw], hr, cr);
                    layer_out[(r * steps + t) * hd..(r * steps + t) * hd + hd].copy_from_slice(hr);
                }
            }
            layer_input = layer_out;
            width = hd;
        }
        // Head: see `head_argmax` — identical math to the naive forward.
        let mut logits = vec![0.0f32; self.head_b.len()];
        for (r, slot) in out.iter_mut().enumerate() {
            let last_h = &layer_input
                [(r * steps + steps - 1) * top_hidden..(r * steps + steps) * top_hidden];
            *slot = head_argmax(&self.head_w, &self.head_b, last_h, &mut logits);
        }
    }

    /// Small-batch path: one row at a time through *all* layers, every
    /// scratch buffer reused across rows. The batched `classify_rows`
    /// re-lays the batch out per layer (`layer_input` copy plus fresh
    /// `layer_out`/`h`/`c` allocations) to stream the packed weights once
    /// per timestep — a win that needs a few dozen rows to amortize. Below
    /// [`DEFAULT_POOL_MIN_ROWS`] those allocations were the whole
    /// regression: at batch ≤ 8 the packed path lost to the naive loop
    /// (0.88–0.99×) while doing strictly less arithmetic. Rows never share
    /// state and the per-row op order (layer → timestep → `step`) is the
    /// same in both paths, so the outputs are bit-identical.
    fn classify_rows_lean(
        &self,
        kernel: Kernel,
        data: &[f32],
        cols: usize,
        steps: usize,
        rows: Range<usize>,
        out: &mut [usize],
    ) {
        let feat = cols / steps;
        let top_hidden = self.cells.last().expect("non-empty lstm").hidden;
        let max_hidden = self.cells.iter().map(|c| c.hidden).max().expect("non-empty lstm");
        // Ping-pong sequence buffers sized for the widest layer; `cur`
        // holds the current layer's per-timestep inputs for the one row in
        // flight, exactly as `layer_input` does per batch above.
        // Both sized for the widest layer: swaps across rows mean either
        // buffer can end up holding the raw `feat`-wide features next.
        let mut cur = vec![0.0f32; steps * feat.max(max_hidden)];
        let mut next = vec![0.0f32; steps * feat.max(max_hidden)];
        let mut h = vec![0.0f32; max_hidden];
        let mut c = vec![0.0f32; max_hidden];
        let mut z = vec![0.0f32; 4 * max_hidden];
        let mut logits = vec![0.0f32; self.head_b.len()];
        for (slot, i) in out.iter_mut().zip(rows) {
            cur[..cols].copy_from_slice(&data[i * cols..(i + 1) * cols]);
            let mut width = feat;
            for cell in &self.cells {
                let hd = cell.hidden;
                h[..hd].fill(0.0);
                c[..hd].fill(0.0);
                for t in 0..steps {
                    let (x, rest) = (&cur[t * width..], &mut next[t * hd..]);
                    cell.step(kernel, &x[..width], &mut h[..hd], &mut c[..hd], &mut z[..4 * hd]);
                    rest[..hd].copy_from_slice(&h[..hd]);
                }
                std::mem::swap(&mut cur, &mut next);
                width = hd;
            }
            *slot = head_argmax(
                &self.head_w,
                &self.head_b,
                &cur[(steps - 1) * top_hidden..steps * top_hidden],
                &mut logits,
            );
        }
    }

    /// Argmax classes for a batch of flattened sequences; bit-identical to
    /// looping `LstmClassifier::classify` row by row. Kernel comes from
    /// `LAKE_SIMD` / CPU detection; see [`PackedLstm::classify_with`].
    pub fn classify(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
        steps: usize,
        pool: Option<&WorkerPool>,
    ) -> Vec<usize> {
        self.classify_with(data, rows, cols, steps, pool, Kernel::from_env())
    }

    /// [`PackedLstm::classify`] with an explicit microkernel (bit-identical
    /// for every choice).
    pub fn classify_with(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
        steps: usize,
        pool: Option<&WorkerPool>,
        kernel: Kernel,
    ) -> Vec<usize> {
        let kernel = kernel.clamped();
        assert!(steps > 0 && cols.is_multiple_of(steps), "bad sequence shape");
        assert_eq!(cols / steps, self.input_size(), "lstm feature width mismatch");
        assert!(data.len() >= rows * cols, "lstm batch buffer too short");
        let mut out = vec![0usize; rows];
        if rows == 0 {
            return out;
        }
        // `run_partitioned` is specialised for f32 chunks; partition the
        // usize output the same way here.
        let parallel = match pool {
            Some(p) if p.workers() > 1 && rows > 1 => Some(p),
            _ => None,
        };
        match parallel {
            // Inline batches under the pool work-size floor also skip the
            // batched re-layout: the same threshold that says "fan-out
            // costs more than it buys" marks where the per-layer batch
            // allocations cost more than the weight-streaming they enable.
            None if rows < DEFAULT_POOL_MIN_ROWS => {
                self.classify_rows_lean(kernel, data, cols, steps, 0..rows, &mut out)
            }
            None => self.classify_rows(kernel, data, cols, steps, 0..rows, &mut out),
            Some(pool) => {
                let ranges = partition(rows, pool.workers());
                let per = ranges[0].len();
                let chunks: Vec<Mutex<(Range<usize>, &mut [usize])>> = out
                    .chunks_mut(per)
                    .zip(ranges)
                    .map(|(chunk, range)| Mutex::new((range, chunk)))
                    .collect();
                let job = |w: usize| {
                    if let Some(slot) = chunks.get(w) {
                        let mut guard = slot.lock().expect("gemm chunk poisoned");
                        let (range, chunk) = &mut *guard;
                        self.classify_rows(kernel, data, cols, steps, range.clone(), chunk);
                    }
                };
                pool.run(&job);
            }
        }
        out
    }
}

/// Head logits + argmax for one row: logits seeded with the bias then
/// accumulated by k-outer saxpy with no zero skip, exactly as
/// `LstmClassifier::forward`; argmax keeps the *last* maximal index,
/// matching `max_by(partial_cmp)`. Shared by the f32 and int8 LSTM paths
/// (the int8 format keeps its head in f32 — it is a few dozen floats).
pub(crate) fn head_argmax(
    head_w: &PackedMatrix,
    head_b: &[f32],
    last_h: &[f32],
    logits: &mut [f32],
) -> usize {
    logits.copy_from_slice(head_b);
    for (k, &hv) in last_h.iter().enumerate() {
        let row = head_w.row(k);
        for (lj, &wj) in logits.iter_mut().zip(row) {
            *lj += hv * wj;
        }
    }
    let mut best = 0usize;
    let mut best_v = logits[0];
    for (j, &v) in logits.iter().enumerate().skip(1) {
        match v.partial_cmp(&best_v).expect("no NaN logits") {
            std::cmp::Ordering::Less => {}
            _ => {
                best = j;
                best_v = v;
            }
        }
    }
    best
}

/// A packed model, keyed in the cache by model id.
#[derive(Debug)]
pub enum PackedModel {
    /// Packed MLP.
    Mlp(PackedMlp),
    /// Packed LSTM classifier.
    Lstm(PackedLstm),
    /// Packed int8 MLP.
    QuantMlp(crate::quant::PackedQuantMlp),
    /// Packed int8 LSTM classifier.
    QuantLstm(crate::quant::PackedQuantLstm),
}

// ---------------------------------------------------------------------------
// Cache + engine
// ---------------------------------------------------------------------------

/// Per-model cache of packed weights, keyed by (model id, version,
/// [`ModelFormat`]).
///
/// Packing is paid once per installed version; versioned keys mean an
/// in-flight call pinned to version `v` and new calls on `v+1` each hit
/// their own packed form during a hot-swap window, and the format key
/// keeps an f32 oracle and an int8 sibling distinct. The daemon drops all
/// of an id's versions when the model is unloaded.
#[derive(Debug, Default)]
pub struct PackedModelCache {
    entries: Mutex<HashMap<(u64, u64, ModelFormat), Arc<PackedModel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PackedModelCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached packed form of `(id, version, format)`, packing via `pack`
    /// on miss. `is_kind` guards against an id being reused by a different
    /// model family.
    fn get_or_pack(
        &self,
        id: u64,
        version: u64,
        format: ModelFormat,
        is_kind: impl Fn(&PackedModel) -> bool,
        pack: impl FnOnce() -> PackedModel,
    ) -> Arc<PackedModel> {
        let mut entries = self.entries.lock().expect("packed cache poisoned");
        if let Some(hit) = entries.get(&(id, version, format)) {
            if is_kind(hit) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(hit);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let packed = Arc::new(pack());
        entries.insert((id, version, format), Arc::clone(&packed));
        packed
    }

    /// Drops every version's packed entry for `id` (model unloaded or its
    /// weights were replaced outside the versioned install path).
    pub fn invalidate(&self, id: u64) {
        self.entries.lock().expect("packed cache poisoned").retain(|&(k, _, _), _| k != id);
    }

    /// Drops every entry (daemon crash wipes model state).
    pub fn clear(&self) {
        self.entries.lock().expect("packed cache poisoned").clear();
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

/// Point-in-time counters for the fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Worker threads in the pool (after the host-core clamp).
    pub workers: usize,
    /// Worker threads originally requested, before clamping to host cores.
    pub workers_requested: usize,
    /// Name of the active microkernel (`avx2`, `sse4.1`, `scalar`).
    pub simd: &'static str,
    /// Pool jobs dispatched (each fans out to every worker).
    pub pool_runs: u64,
    /// Worker-slots that received a non-empty row range.
    pub pool_tasks: u64,
    /// Batches small enough to run inline on the caller thread.
    pub direct_runs: u64,
    /// Batches that *could* have pooled (multi-row, multi-worker) but ran
    /// inline because they were under the work-size threshold — fan-out
    /// and join cost more than they buy below it.
    pub pool_bypassed: u64,
    /// Packed-weight cache hits.
    pub cache_hits: u64,
    /// Packed-weight cache misses (a packing pass was paid).
    pub cache_misses: u64,
}

impl EngineStats {
    /// Fraction of dispatched worker-slots that carried work, in [0, 1].
    /// 1.0 means every pool fan-out kept every worker busy.
    pub fn pool_utilization(&self) -> f64 {
        let slots = self.pool_runs.saturating_mul(self.workers as u64);
        if slots == 0 {
            return 0.0;
        }
        self.pool_tasks as f64 / slots as f64
    }
}

/// Default pool work-size threshold: batches under this many rows run
/// inline on the caller. Measured floor, not a guess — the PR 4 scaling
/// numbers (`BENCH_PR4.json`) showed an 8-row LSTM batch *losing* to the
/// naive path under 4 workers (0.88×): per-row work is microseconds, so
/// the pool's fan-out/join handshake dominates until a few dozen rows.
pub const DEFAULT_POOL_MIN_ROWS: usize = 32;

/// The inference fast path: fixed worker pool + packed model cache.
///
/// Outputs are bit-identical to the naive `Mlp::classify` /
/// `LstmClassifier::classify` loops regardless of the worker count.
#[derive(Debug)]
pub struct InferenceEngine {
    pool: WorkerPool,
    cache: PackedModelCache,
    pool_min_rows: usize,
    workers_requested: usize,
    kernel: Kernel,
    tasks: AtomicU64,
    direct: AtomicU64,
    bypassed: AtomicU64,
}

impl InferenceEngine {
    /// Engine with a pool of `workers` threads (clamped to the host's
    /// available cores — an oversubscribed pool only buys context-switch
    /// latency, the BENCH_PR4 p99 blowup), the default work-size threshold
    /// ([`DEFAULT_POOL_MIN_ROWS`]), and the `LAKE_SIMD`-selected kernel.
    pub fn new(workers: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_host_cores(workers, cores)
    }

    /// [`InferenceEngine::new`] with an explicit host core count, for
    /// tests and benches that need a deterministic clamp regardless of the
    /// machine they run on.
    pub fn with_host_cores(workers: usize, host_cores: usize) -> Self {
        let effective = workers.clamp(1, host_cores.max(1));
        InferenceEngine {
            pool: WorkerPool::new(effective),
            cache: PackedModelCache::new(),
            pool_min_rows: DEFAULT_POOL_MIN_ROWS,
            workers_requested: workers,
            kernel: Kernel::from_env(),
            tasks: AtomicU64::new(0),
            direct: AtomicU64::new(0),
            bypassed: AtomicU64::new(0),
        }
    }

    /// Overrides the pool work-size threshold: batches with fewer than
    /// `min_rows` rows run inline on the caller thread even when a
    /// multi-worker pool is available. `0`/`1` disables the bypass
    /// (every multi-row batch pools — the pre-threshold behaviour).
    pub fn with_pool_threshold(mut self, min_rows: usize) -> Self {
        self.pool_min_rows = min_rows;
        self
    }

    /// Overrides the microkernel (default: `LAKE_SIMD` / CPU detection).
    /// Requests the CPU cannot honor clamp down to the best available.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel.clamped();
        self
    }

    /// The microkernel this engine dispatches to.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The active pool work-size threshold.
    pub fn pool_threshold(&self) -> usize {
        self.pool_min_rows
    }

    /// The underlying pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The packed-model cache.
    pub fn cache(&self) -> &PackedModelCache {
        &self.cache
    }

    fn account(&self, rows: usize) -> Option<&WorkerPool> {
        if self.pool.workers() > 1 && rows > 1 {
            if rows < self.pool_min_rows {
                // Multi-worker pool available, but the batch is under the
                // work-size floor: the fan-out/join handshake would cost
                // more than the parallelism buys back, so run inline.
                self.bypassed.fetch_add(1, Ordering::Relaxed);
                self.direct.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            let active = partition(rows, self.pool.workers()).len() as u64;
            self.tasks.fetch_add(active, Ordering::Relaxed);
            Some(&self.pool)
        } else {
            self.direct.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Classifies a row-major MLP batch through the packed fast path.
    /// `version` keys the packed cache so hot-swapped weights never serve
    /// a call pinned to the previous version.
    pub fn classify_mlp(
        &self,
        id: u64,
        version: u64,
        model: &Mlp,
        data: &[f32],
        rows: usize,
        cols: usize,
    ) -> Vec<usize> {
        let packed = self.cache.get_or_pack(
            id,
            version,
            ModelFormat::F32,
            |m| matches!(m, PackedModel::Mlp(_)),
            || PackedModel::Mlp(PackedMlp::pack(model)),
        );
        let PackedModel::Mlp(packed) = &*packed else { unreachable!("kind-guarded") };
        let pool = self.account(rows);
        packed.classify_with(data, rows, cols, pool, self.kernel)
    }

    /// Classifies a row-major batch through an int8 quantized MLP. Same
    /// cache/pool behaviour as [`InferenceEngine::classify_mlp`]; the
    /// packed entry is keyed [`ModelFormat::Int8`] so an f32 oracle under
    /// the same id never collides.
    pub fn classify_quant_mlp(
        &self,
        id: u64,
        version: u64,
        model: &crate::quant::QuantizedMlp,
        data: &[f32],
        rows: usize,
        cols: usize,
    ) -> Vec<usize> {
        let packed = self.cache.get_or_pack(
            id,
            version,
            ModelFormat::Int8,
            |m| matches!(m, PackedModel::QuantMlp(_)),
            || PackedModel::QuantMlp(crate::quant::PackedQuantMlp::pack(model)),
        );
        let PackedModel::QuantMlp(packed) = &*packed else { unreachable!("kind-guarded") };
        let pool = self.account(rows);
        packed.classify_with(data, rows, cols, pool, self.kernel)
    }

    /// Classifies a batch of flattened sequences through an int8 quantized
    /// LSTM. Same cache/pool behaviour as
    /// [`InferenceEngine::classify_lstm`].
    #[allow(clippy::too_many_arguments)] // id+version key the packed cache
    pub fn classify_quant_lstm(
        &self,
        id: u64,
        version: u64,
        model: &crate::quant::QuantizedLstm,
        data: &[f32],
        rows: usize,
        cols: usize,
        steps: usize,
    ) -> Vec<usize> {
        let packed = self.cache.get_or_pack(
            id,
            version,
            ModelFormat::Int8,
            |m| matches!(m, PackedModel::QuantLstm(_)),
            || PackedModel::QuantLstm(crate::quant::PackedQuantLstm::pack(model)),
        );
        let PackedModel::QuantLstm(packed) = &*packed else { unreachable!("kind-guarded") };
        let pool = self.account(rows);
        packed.classify_with(data, rows, cols, steps, pool, self.kernel)
    }

    /// Classifies a batch of flattened LSTM sequences through the packed
    /// fast path. `version` keys the packed cache so hot-swapped weights
    /// never serve a call pinned to the previous version.
    #[allow(clippy::too_many_arguments)] // id+version key the packed cache
    pub fn classify_lstm(
        &self,
        id: u64,
        version: u64,
        model: &LstmClassifier,
        data: &[f32],
        rows: usize,
        cols: usize,
        steps: usize,
    ) -> Vec<usize> {
        let packed = self.cache.get_or_pack(
            id,
            version,
            ModelFormat::F32,
            |m| matches!(m, PackedModel::Lstm(_)),
            || PackedModel::Lstm(PackedLstm::pack(model)),
        );
        let PackedModel::Lstm(packed) = &*packed else { unreachable!("kind-guarded") };
        let pool = self.account(rows);
        packed.classify_with(data, rows, cols, steps, pool, self.kernel)
    }

    /// Drops the packed entry for `id`.
    pub fn invalidate(&self, id: u64) {
        self.cache.invalidate(id);
    }

    /// Drops every packed entry.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        let (cache_hits, cache_misses) = self.cache.stats();
        EngineStats {
            workers: self.pool.workers(),
            workers_requested: self.workers_requested,
            simd: self.kernel.name(),
            pool_runs: self.pool.runs(),
            pool_tasks: self.tasks.load(Ordering::Relaxed),
            direct_runs: self.direct.load(Ordering::Relaxed),
            pool_bypassed: self.bypassed.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_matrix(rng: &mut StdRng, rows: usize, cols: usize, sparse: bool) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| {
                if sparse && rng.gen_range(0.0..1.0f32) < 0.3 {
                    0.0
                } else {
                    rng.gen_range(-2.0..2.0f32)
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn packed_layout_is_row_major_and_padded() {
        let b = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let pb = PackedMatrix::pack(&b);
        assert_eq!(pb.k(), 2);
        assert_eq!(pb.n(), 3);
        assert_eq!(pb.stride() % PACK_LANE, 0);
        assert_eq!(pb.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(pb.row(1), &[4.0, 5.0, 6.0]);
    }

    /// Alignment audit: every packed row must start on a 64-byte boundary
    /// — SIMD kernels assume rows never straddle a cache-line start. The
    /// input `Matrix` carries no alignment guarantee (kernels only
    /// broadcast single elements from it), so the packed side is the one
    /// that has to hold.
    #[test]
    fn packed_rows_are_64_byte_aligned_for_all_shapes() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(k, n) in &[(1, 1), (2, 3), (7, 15), (16, 16), (17, 31), (64, 256), (3, 100)] {
            let pb = PackedMatrix::pack(&rand_matrix(&mut rng, k, n, false));
            assert!(pb.base_aligned(), "({k},{n}) base not aligned");
            for kk in 0..k {
                assert_eq!(pb.row(kk).as_ptr() as usize % 64, 0, "({k},{n}) row {kk}");
            }
        }
    }

    /// Every available kernel must agree with the scalar oracle to the
    /// bit, across shapes that exercise the 32/16-column register blocks,
    /// the narrow-vector loops, the scalar tails, and the KC/NC tiling
    /// boundaries.
    #[test]
    fn simd_kernels_are_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (4, 31, 33),
            (2, 300, 40), // k spans two KC tiles
            (5, 64, 300), // n spans two NC tiles
            (2, 257, 260),
            (64, 256, 31),
        ] {
            let a = rand_matrix(&mut rng, m, k, true);
            let b = rand_matrix(&mut rng, k, n, false);
            let pb = PackedMatrix::pack(&b);
            let want = a.matmul(&b);
            for kernel in [Kernel::Scalar, Kernel::Sse, Kernel::Avx2] {
                if !kernel.available() {
                    continue;
                }
                let got = matmul_packed_with(&a, &pb, None, kernel);
                for (x, y) in want.data().iter().zip(got.data()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{} ({m},{k},{n})", kernel.name());
                }
            }
        }
    }

    #[test]
    fn kernel_requests_clamp_to_available() {
        // `auto` resolves to the detected best; explicit requests at or
        // below the detected level are honored exactly.
        let best = Kernel::detect();
        assert_eq!(Kernel::from_name("auto"), Some(best));
        assert_eq!(Kernel::from_name("scalar"), Some(Kernel::Scalar));
        assert_eq!(Kernel::from_name("nope"), None);
        for req in [Kernel::Sse, Kernel::Avx2] {
            let got = Kernel::from_name(req.name()).unwrap();
            assert!(got.available());
            if req.available() {
                assert_eq!(got, req);
            }
        }
    }

    #[test]
    fn packed_matmul_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in
            &[(1, 1, 1), (2, 3, 4), (17, 33, 9), (64, 256, 31), (5, 16, 16), (3, 100, 2)]
        {
            let a = rand_matrix(&mut rng, m, k, true);
            let b = rand_matrix(&mut rng, k, n, false);
            let pb = PackedMatrix::pack(&b);
            assert_bits_eq(&a.matmul(&b), &matmul_packed(&a, &pb, None));
        }
    }

    #[test]
    fn packed_matmul_parallel_is_bit_identical_for_any_worker_count() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = rand_matrix(&mut rng, 67, 48, true);
        let b = rand_matrix(&mut rng, 48, 24, false);
        let pb = PackedMatrix::pack(&b);
        let want = a.matmul(&b);
        for workers in [1, 2, 3, 4, 7] {
            let pool = WorkerPool::new(workers);
            assert_bits_eq(&want, &matmul_packed(&a, &pb, Some(&pool)));
        }
    }

    #[test]
    fn packed_mlp_classify_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Tanh] {
            let m = Mlp::new(&[12, 32, 16, 4], act, &mut rng);
            let x = rand_matrix(&mut rng, 65, 12, true);
            let want = m.classify(&x);
            let packed = PackedMlp::pack(&m);
            let pool = WorkerPool::new(4);
            assert_eq!(want, packed.classify(x.data(), 65, 12, None));
            assert_eq!(want, packed.classify(x.data(), 65, 12, Some(&pool)));
        }
    }

    #[test]
    fn packed_mlp_logits_match_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Mlp::new(&[8, 24, 3], Activation::Relu, &mut rng);
        let x = rand_matrix(&mut rng, 9, 8, true);
        let packed = PackedMlp::pack(&m);
        assert_bits_eq(&m.forward(&x), &packed.forward(x.data(), 9, 8, None));
    }

    #[test]
    fn packed_lstm_classify_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = LstmClassifier::new(6, 10, 2, 5, &mut rng);
        let (rows, steps, feat) = (33, 4, 6);
        let cols = steps * feat;
        let x = rand_matrix(&mut rng, rows, cols, true);
        let want: Vec<usize> = (0..rows)
            .map(|r| {
                let seq: Vec<Vec<f32>> =
                    (0..steps).map(|t| x.row(r)[t * feat..(t + 1) * feat].to_vec()).collect();
                m.classify(&seq)
            })
            .collect();
        let packed = PackedLstm::pack(&m);
        let pool = WorkerPool::new(3);
        assert_eq!(want, packed.classify(x.data(), rows, cols, steps, None));
        assert_eq!(want, packed.classify(x.data(), rows, cols, steps, Some(&pool)));
    }

    /// Regression (small-batch LSTM, BENCH_PR4): batches under the pool
    /// floor take the per-row lean path — it must stay bit-identical to
    /// the naive loop on both sides of the `DEFAULT_POOL_MIN_ROWS`
    /// cutover, including batch 1.
    #[test]
    fn lean_lstm_path_matches_naive_bitwise_across_the_cutover() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = LstmClassifier::new(5, 9, 2, 4, &mut rng);
        let (steps, feat) = (3, 5);
        let cols = steps * feat;
        let packed = PackedLstm::pack(&m);
        for rows in [1, 2, 8, DEFAULT_POOL_MIN_ROWS - 1, DEFAULT_POOL_MIN_ROWS] {
            let x = rand_matrix(&mut rng, rows, cols, true);
            let want: Vec<usize> = (0..rows)
                .map(|r| {
                    let seq: Vec<Vec<f32>> =
                        (0..steps).map(|t| x.row(r)[t * feat..(t + 1) * feat].to_vec()).collect();
                    m.classify(&seq)
                })
                .collect();
            assert_eq!(want, packed.classify(x.data(), rows, cols, steps, None), "rows={rows}");
        }
    }

    #[test]
    fn lstm_head_tie_break_keeps_last_maximum() {
        // A classifier whose head weights are all zero produces logits equal
        // to the head bias; equal biases must resolve to the LAST class,
        // matching `max_by(partial_cmp)`.
        let mut rng = StdRng::seed_from_u64(2);
        let m = LstmClassifier::new(3, 4, 1, 3, &mut rng);
        let cells = m.cells().to_vec();
        let zero_head = Matrix::zeros(4, 3);
        let tied = LstmClassifier::from_parts(cells, zero_head, vec![1.0, 1.0, 1.0]);
        let seq = vec![vec![0.5, -0.25, 0.0]; 2];
        assert_eq!(tied.classify(&seq), 2);
        let packed = PackedLstm::pack(&tied);
        assert_eq!(packed.classify(&[0.5, -0.25, 0.0, 0.5, -0.25, 0.0], 1, 6, 2, None), vec![2]);
    }

    #[test]
    fn mlp_tie_break_keeps_first_maximum() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Mlp::from_parameters(vec![(Matrix::zeros(3, 2), vec![1.0, 1.0])], Activation::Relu);
        let x = rand_matrix(&mut rng, 4, 3, false);
        assert_eq!(m.classify(&x), vec![0, 0, 0, 0]);
        let packed = PackedMlp::pack(&m);
        assert_eq!(packed.classify(x.data(), 4, 3, None), vec![0, 0, 0, 0]);
    }

    #[test]
    fn engine_caches_packing_and_counts_utilization() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Mlp::new(&[4, 8, 2], Activation::Relu, &mut rng);
        // Explicit host-core override: the CI host may have a single core,
        // which would clamp the pool to one worker and bypass it entirely.
        let engine = InferenceEngine::with_host_cores(2, 2).with_pool_threshold(2);
        let x = rand_matrix(&mut rng, 8, 4, false);
        let a = engine.classify_mlp(7, 1, &m, x.data(), 8, 4);
        let b = engine.classify_mlp(7, 1, &m, x.data(), 8, 4);
        assert_eq!(a, b);
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.pool_runs, 2);
        assert_eq!(stats.pool_bypassed, 0);
        assert!(stats.pool_utilization() > 0.9, "{stats:?}");

        engine.invalidate(7);
        engine.classify_mlp(7, 1, &m, x.data(), 8, 4);
        assert_eq!(engine.stats().cache_misses, 2);
    }

    #[test]
    fn single_row_batches_run_inline() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = Mlp::new(&[4, 8, 2], Activation::Relu, &mut rng);
        let engine = InferenceEngine::with_host_cores(4, 4);
        let x = rand_matrix(&mut rng, 1, 4, false);
        assert_eq!(engine.classify_mlp(1, 1, &m, x.data(), 1, 4), m.classify(&x));
        let stats = engine.stats();
        assert_eq!(stats.pool_runs, 0);
        assert_eq!(stats.direct_runs, 1);
    }

    #[test]
    fn small_batches_bypass_the_pool() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = Mlp::new(&[4, 8, 2], Activation::Relu, &mut rng);
        // 4 workers, default threshold (32): an 8-row batch is exactly the
        // regressing shape from the PR 4 scaling run and must stay inline.
        let engine = InferenceEngine::with_host_cores(4, 4);
        assert_eq!(engine.pool_threshold(), DEFAULT_POOL_MIN_ROWS);
        let small = rand_matrix(&mut rng, 8, 4, false);
        assert_eq!(engine.classify_mlp(3, 1, &m, small.data(), 8, 4), m.classify(&small));
        let stats = engine.stats();
        assert_eq!(stats.pool_runs, 0);
        assert_eq!(stats.direct_runs, 1);
        assert_eq!(stats.pool_bypassed, 1);

        // At the threshold the pool engages again, with identical output.
        let big = rand_matrix(&mut rng, DEFAULT_POOL_MIN_ROWS, 4, false);
        assert_eq!(
            engine.classify_mlp(3, 1, &m, big.data(), DEFAULT_POOL_MIN_ROWS, 4),
            m.classify(&big)
        );
        let stats = engine.stats();
        assert_eq!(stats.pool_runs, 1);
        assert_eq!(stats.pool_bypassed, 1);

        // Single-row batches are direct but NOT counted as bypassed: the
        // pool was never a candidate for them.
        let one = rand_matrix(&mut rng, 1, 4, false);
        engine.classify_mlp(3, 1, &m, one.data(), 1, 4);
        let stats = engine.stats();
        assert_eq!(stats.direct_runs, 2);
        assert_eq!(stats.pool_bypassed, 1);
    }

    /// Regression (BENCH_PR4 oversubscription): a 2-worker pool on a
    /// 1-core host showed a 4.5× p99 blowup at batch 1 — two threads
    /// context-switching over one core buy nothing and cost latency. The
    /// engine now clamps effective workers to the host core count, so on
    /// an oversubscribed host every batch runs inline (the direct/bypass
    /// floor covers what the pool used to thrash on).
    #[test]
    fn oversubscribed_workers_clamp_to_host_cores() {
        let mut rng = StdRng::seed_from_u64(17);
        let m = Mlp::new(&[4, 8, 2], Activation::Relu, &mut rng);
        let engine = InferenceEngine::with_host_cores(4, 1);
        let stats = engine.stats();
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.workers_requested, 4);

        // A batch far above the pool threshold still runs inline: with one
        // effective worker the pool is never a candidate.
        let big = rand_matrix(&mut rng, 2 * DEFAULT_POOL_MIN_ROWS, 4, false);
        assert_eq!(
            engine.classify_mlp(5, 1, &m, big.data(), 2 * DEFAULT_POOL_MIN_ROWS, 4),
            m.classify(&big)
        );
        let stats = engine.stats();
        assert_eq!(stats.pool_runs, 0);
        assert_eq!(stats.direct_runs, 1);

        // The default constructor also clamps to the real host.
        let auto = InferenceEngine::new(64);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(auto.stats().workers <= cores);
        assert_eq!(auto.stats().workers_requested, 64);
    }

    #[test]
    fn worker_pool_survives_panicking_job() {
        let pool = WorkerPool::new(2);
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(panicked.is_err());
        // The pool stays usable for well-behaved jobs afterwards.
        let hits = AtomicU64::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Values with a healthy density of exact zeros (both signs) so the
    /// `a == 0.0` skip path is exercised — dropping or reordering the skip
    /// breaks bit identity as soon as rounding order matters.
    fn sparse_f32() -> impl Strategy<Value = f32> {
        prop_oneof![Just(0.0f32), Just(-0.0f32), -10.0f32..10.0]
    }

    proptest! {
        /// Packed GEMM is bit-identical to the naive matmul across shapes
        /// (and therefore packed strides), sparsity, and worker counts.
        #[test]
        fn packed_matmul_bit_identical(
            (m, k, n) in (1usize..32, 1usize..48, 1usize..24),
            workers in 1usize..5,
            a_data in proptest::collection::vec(sparse_f32(), 32 * 48),
            b_data in proptest::collection::vec(sparse_f32(), 48 * 24),
        ) {
            let a = Matrix::from_vec(m, k, a_data[..m * k].to_vec());
            let b = Matrix::from_vec(k, n, b_data[..k * n].to_vec());
            let pb = PackedMatrix::pack(&b);
            let want = a.matmul(&b);
            let serial = matmul_packed(&a, &pb, None);
            let pool = WorkerPool::new(workers);
            let parallel = matmul_packed(&a, &pb, Some(&pool));
            for ((x, y), z) in want.data().iter().zip(serial.data()).zip(parallel.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
                prop_assert_eq!(x.to_bits(), z.to_bits());
            }
        }

        /// Kernel-dispatch equivalence: every kernel the host supports
        /// (scalar always, SSE/AVX2 when detected) produces bit-identical
        /// output for arbitrary shapes and sparsity — the scalar oracle
        /// transfers its chaos-invariant guarantee to the SIMD paths.
        #[test]
        fn kernel_dispatch_bit_identical(
            (m, k, n) in (1usize..12, 1usize..80, 1usize..80),
            a_data in proptest::collection::vec(sparse_f32(), 12 * 80),
            b_data in proptest::collection::vec(sparse_f32(), 80 * 80),
        ) {
            let a = Matrix::from_vec(m, k, a_data[..m * k].to_vec());
            let b = Matrix::from_vec(k, n, b_data[..k * n].to_vec());
            let pb = PackedMatrix::pack(&b);
            let want = matmul_packed_with(&a, &pb, None, Kernel::Scalar);
            for kernel in [Kernel::Sse, Kernel::Avx2] {
                if !kernel.available() {
                    continue;
                }
                let got = matmul_packed_with(&a, &pb, None, kernel);
                for (x, y) in want.data().iter().zip(got.data()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }

        /// The packed MLP forward (fused bias+activation epilogue, any
        /// worker count) classifies bit-identically to `Mlp::classify`
        /// across layer shapes and batch sizes.
        #[test]
        fn packed_mlp_classify_equivalent(
            (input, hidden, classes) in (1usize..10, 1usize..24, 2usize..6),
            rows in 1usize..80,
            workers in 1usize..4,
            act_pick in 0u8..3,
            seed in 0u64..u64::MAX,
            x_data in proptest::collection::vec(sparse_f32(), 80 * 10),
        ) {
            let act = match act_pick {
                0 => Activation::Relu,
                1 => Activation::Sigmoid,
                _ => Activation::Tanh,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let model = Mlp::new(&[input, hidden, classes], act, &mut rng);
            let x = Matrix::from_vec(rows, input, x_data[..rows * input].to_vec());
            let want = model.classify(&x);
            let packed = PackedMlp::pack(&model);
            let pool = WorkerPool::new(workers);
            prop_assert_eq!(&want, &packed.classify(x.data(), rows, input, None));
            prop_assert_eq!(&want, &packed.classify(x.data(), rows, input, Some(&pool)));
            let logits = packed.forward(x.data(), rows, input, Some(&pool));
            let naive = model.forward(&x);
            for (x, y) in naive.data().iter().zip(logits.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        /// The batched packed LSTM classifies every row bit-identically to
        /// looping `LstmClassifier::classify` one sequence at a time.
        #[test]
        fn packed_lstm_classify_equivalent(
            (feat, hidden, layers, classes) in (1usize..6, 1usize..10, 1usize..3, 2usize..5),
            (rows, steps) in (1usize..32, 1usize..5),
            workers in 1usize..4,
            seed in 0u64..u64::MAX,
            x_data in proptest::collection::vec(sparse_f32(), 32 * 5 * 6),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = LstmClassifier::new(feat, hidden, layers, classes, &mut rng);
            let cols = steps * feat;
            let data = &x_data[..rows * cols];
            let want: Vec<usize> = (0..rows)
                .map(|r| {
                    let seq: Vec<Vec<f32>> = (0..steps)
                        .map(|t| data[r * cols + t * feat..r * cols + (t + 1) * feat].to_vec())
                        .collect();
                    model.classify(&seq)
                })
                .collect();
            let packed = PackedLstm::pack(&model);
            let pool = WorkerPool::new(workers);
            prop_assert_eq!(&want, &packed.classify(data, rows, cols, steps, None));
            prop_assert_eq!(&want, &packed.classify(data, rows, cols, steps, Some(&pool)));
        }
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;

    #[test]
    #[ignore]
    fn epilogue_share() {
        let hd = 64usize;
        let mut z = vec![0.3f32; 4 * hd];
        let mut h = vec![0.1f32; hd];
        let mut c = vec![0.2f32; hd];
        let reps = 256 * 8 * 10; // rows x steps x 10
        for kernel in [Kernel::Scalar, Kernel::detect()] {
            let t = std::time::Instant::now();
            for _ in 0..reps {
                for (i, v) in z.iter_mut().enumerate() {
                    *v = 0.3 + (i as f32) * 1e-3;
                }
                lstm_gate_epilogue(kernel, &z, &mut h, &mut c);
            }
            let e = t.elapsed().as_secs_f64() * 1e6 / 10.0;
            println!("{} epilogue for 256 rows x 8 steps: {e:.0}us", kernel.name());
        }
    }
}
