//! Model (de)serialization — the storage format behind the feature
//! registry's model management APIs.
//!
//! The registry (paper Table 1) commits models "to the file system and
//! load[s them] into memory at boot time". This module defines that file
//! format: a small self-describing little-endian binary layout, one of
//! [`ModelKind`] per file.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::knn::Knn;
use crate::lstm::{LstmCell, LstmClassifier};
use crate::mlp::{Activation, Mlp};
use crate::quant::{QuantizedCell, QuantizedDense, QuantizedLstm, QuantizedMlp};
use crate::tensor::Matrix;

const MAGIC: &[u8; 8] = b"LAKEML01";

/// What kind of model a blob contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// A feed-forward classifier ([`Mlp`]).
    Mlp,
    /// A stacked-LSTM classifier ([`LstmClassifier`]).
    Lstm,
    /// A k-NN database ([`Knn`]).
    Knn,
    /// An int8-quantized MLP ([`QuantizedMlp`]) — a separate model family
    /// from [`ModelKind::Mlp`], never a transparent replacement.
    QuantMlp,
    /// An int8-quantized LSTM ([`QuantizedLstm`]).
    QuantLstm,
}

impl ModelKind {
    fn to_u8(self) -> u8 {
        match self {
            ModelKind::Mlp => 1,
            ModelKind::Lstm => 2,
            ModelKind::Knn => 3,
            ModelKind::QuantMlp => 4,
            ModelKind::QuantLstm => 5,
        }
    }

    fn from_u8(v: u8) -> Option<ModelKind> {
        match v {
            1 => Some(ModelKind::Mlp),
            2 => Some(ModelKind::Lstm),
            3 => Some(ModelKind::Knn),
            4 => Some(ModelKind::QuantMlp),
            5 => Some(ModelKind::QuantLstm),
            _ => None,
        }
    }

    /// Inspects a blob's header without decoding the body.
    ///
    /// # Errors
    ///
    /// Returns [`ModelCodecError::BadMagic`] or
    /// [`ModelCodecError::UnknownKind`] for unrecognizable blobs.
    pub fn detect(blob: &[u8]) -> Result<ModelKind, ModelCodecError> {
        if blob.len() < 9 || &blob[..8] != MAGIC {
            return Err(ModelCodecError::BadMagic);
        }
        ModelKind::from_u8(blob[8]).ok_or(ModelCodecError::UnknownKind(blob[8]))
    }
}

/// Errors from model encoding/decoding.
#[derive(Debug)]
pub enum ModelCodecError {
    /// The blob does not start with the `LAKEML01` magic.
    BadMagic,
    /// The kind byte is unrecognized.
    UnknownKind(u8),
    /// The blob ended early or a length field is inconsistent.
    Corrupt(&'static str),
    /// Filesystem failure while persisting/loading.
    Io(io::Error),
}

impl fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelCodecError::BadMagic => f.write_str("not a LAKE model blob (bad magic)"),
            ModelCodecError::UnknownKind(k) => write!(f, "unknown model kind byte {k}"),
            ModelCodecError::Corrupt(what) => write!(f, "corrupt model blob: {what}"),
            ModelCodecError::Io(e) => write!(f, "model file i/o error: {e}"),
        }
    }
}

impl std::error::Error for ModelCodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelCodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ModelCodecError {
    fn from(e: io::Error) -> Self {
        ModelCodecError::Io(e)
    }
}

// -- primitive writers/readers ------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn new(kind: ModelKind) -> Self {
        let mut v = Vec::with_capacity(256);
        v.extend_from_slice(MAGIC);
        v.push(kind.to_u8());
        Writer(v)
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f32s(&mut self, vals: &[f32]) {
        self.u32(vals.len() as u32);
        for &x in vals {
            self.0.extend_from_slice(&x.to_le_bytes());
        }
    }

    fn u32s(&mut self, vals: &[u32]) {
        self.u32(vals.len() as u32);
        for &x in vals {
            self.0.extend_from_slice(&x.to_le_bytes());
        }
    }

    fn i8s(&mut self, vals: &[i8]) {
        self.u32(vals.len() as u32);
        for &x in vals {
            self.0.push(x as u8);
        }
    }

    fn matrix(&mut self, m: &Matrix) {
        self.u32(m.rows() as u32);
        self.u32(m.cols() as u32);
        self.f32s(m.data());
    }
}

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelCodecError> {
        if self.0.len() < n {
            return Err(ModelCodecError::Corrupt("unexpected end of blob"));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ModelCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ModelCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, ModelCodecError> {
        let n = self.u32()? as usize;
        let raw =
            self.take(n.checked_mul(4).ok_or(ModelCodecError::Corrupt("length overflow"))?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn u32s(&mut self) -> Result<Vec<u32>, ModelCodecError> {
        let n = self.u32()? as usize;
        let raw =
            self.take(n.checked_mul(4).ok_or(ModelCodecError::Corrupt("length overflow"))?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn i8s(&mut self) -> Result<Vec<i8>, ModelCodecError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.iter().map(|&b| b as i8).collect())
    }

    fn matrix(&mut self) -> Result<Matrix, ModelCodecError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let data = self.f32s()?;
        if data.len() != rows * cols || rows == 0 || cols == 0 {
            return Err(ModelCodecError::Corrupt("matrix shape mismatch"));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn done(self) -> Result<(), ModelCodecError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(ModelCodecError::Corrupt("trailing bytes"))
        }
    }
}

fn body_reader(blob: &[u8], kind: ModelKind) -> Result<Reader<'_>, ModelCodecError> {
    let found = ModelKind::detect(blob)?;
    if found != kind {
        return Err(ModelCodecError::Corrupt("wrong model kind for decoder"));
    }
    Ok(Reader(&blob[9..]))
}

fn activation_to_u8(a: Activation) -> u8 {
    match a {
        Activation::Relu => 0,
        Activation::Sigmoid => 1,
        Activation::Tanh => 2,
    }
}

fn activation_from_u8(v: u8) -> Result<Activation, ModelCodecError> {
    match v {
        0 => Ok(Activation::Relu),
        1 => Ok(Activation::Sigmoid),
        2 => Ok(Activation::Tanh),
        _ => Err(ModelCodecError::Corrupt("unknown activation byte")),
    }
}

// -- MLP ------------------------------------------------------------------

/// Encodes an [`Mlp`] into a model blob.
pub fn encode_mlp(model: &Mlp) -> Vec<u8> {
    let mut w = Writer::new(ModelKind::Mlp);
    w.u8(activation_to_u8(model.hidden_activation()));
    let params = model.parameters();
    w.u32(params.len() as u32);
    for (weights, bias) in params {
        w.matrix(weights);
        w.f32s(bias);
    }
    w.0
}

/// Decodes an [`Mlp`] from a model blob.
///
/// # Errors
///
/// Returns [`ModelCodecError`] for malformed blobs.
pub fn decode_mlp(blob: &[u8]) -> Result<Mlp, ModelCodecError> {
    let mut r = body_reader(blob, ModelKind::Mlp)?;
    let act = activation_from_u8(r.u8()?)?;
    let n = r.u32()? as usize;
    if n == 0 {
        return Err(ModelCodecError::Corrupt("mlp with zero layers"));
    }
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        let weights = r.matrix()?;
        let bias = r.f32s()?;
        if bias.len() != weights.cols() {
            return Err(ModelCodecError::Corrupt("bias/weights mismatch"));
        }
        params.push((weights, bias));
    }
    for pair in params.windows(2) {
        if pair[0].0.cols() != pair[1].0.rows() {
            return Err(ModelCodecError::Corrupt("layer shapes do not chain"));
        }
    }
    r.done()?;
    Ok(Mlp::from_parameters(params, act))
}

// -- LSTM -----------------------------------------------------------------

/// Encodes an [`LstmClassifier`] into a model blob.
pub fn encode_lstm(model: &LstmClassifier) -> Vec<u8> {
    let mut w = Writer::new(ModelKind::Lstm);
    w.u32(model.cells().len() as u32);
    for cell in model.cells() {
        let (wx, wh, b) = cell.raw_parts();
        w.matrix(wx);
        w.matrix(wh);
        w.f32s(b);
    }
    let (head_w, head_b) = model.head();
    w.matrix(head_w);
    w.f32s(head_b);
    w.0
}

/// Decodes an [`LstmClassifier`] from a model blob.
///
/// # Errors
///
/// Returns [`ModelCodecError`] for malformed blobs.
pub fn decode_lstm(blob: &[u8]) -> Result<LstmClassifier, ModelCodecError> {
    let mut r = body_reader(blob, ModelKind::Lstm)?;
    let n = r.u32()? as usize;
    if n == 0 {
        return Err(ModelCodecError::Corrupt("lstm with zero layers"));
    }
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        let wx = r.matrix()?;
        let wh = r.matrix()?;
        let b = r.f32s()?;
        if wx.cols() % 4 != 0
            || wh.rows() != wx.cols() / 4
            || wh.cols() != wx.cols()
            || b.len() != wx.cols()
        {
            return Err(ModelCodecError::Corrupt("lstm cell shape mismatch"));
        }
        cells.push(LstmCell::from_raw_parts(wx, wh, b));
    }
    let head_w = r.matrix()?;
    let head_b = r.f32s()?;
    if head_b.len() != head_w.cols()
        || head_w.rows() != cells.last().expect("non-empty").hidden_size()
    {
        return Err(ModelCodecError::Corrupt("lstm head shape mismatch"));
    }
    for pair in cells.windows(2) {
        if pair[0].hidden_size() != pair[1].input_size() {
            return Err(ModelCodecError::Corrupt("lstm layer sizes do not chain"));
        }
    }
    r.done()?;
    Ok(LstmClassifier::from_parts(cells, head_w, head_b))
}

// -- k-NN -----------------------------------------------------------------

/// Encodes a [`Knn`] into a model blob.
pub fn encode_knn(model: &Knn) -> Vec<u8> {
    let mut w = Writer::new(ModelKind::Knn);
    w.u32(model.k() as u32);
    w.matrix(model.references());
    w.u32s(model.labels());
    w.0
}

/// Decodes a [`Knn`] from a model blob.
///
/// # Errors
///
/// Returns [`ModelCodecError`] for malformed blobs.
pub fn decode_knn(blob: &[u8]) -> Result<Knn, ModelCodecError> {
    let mut r = body_reader(blob, ModelKind::Knn)?;
    let k = r.u32()? as usize;
    let refs = r.matrix()?;
    let labels = r.u32s()?;
    if labels.len() != refs.rows() || k == 0 || k > refs.rows() {
        return Err(ModelCodecError::Corrupt("knn labels/k mismatch"));
    }
    r.done()?;
    Ok(Knn::new(refs, labels, k))
}

// -- quantized models ------------------------------------------------------

fn encode_quant_dense(w: &mut Writer, layer: &QuantizedDense) {
    w.u32(layer.k as u32);
    w.u32(layer.n as u32);
    w.i8s(&layer.w);
    w.f32s(&layer.scale);
    w.f32s(&layer.b);
}

fn decode_quant_dense(r: &mut Reader<'_>) -> Result<QuantizedDense, ModelCodecError> {
    let k = r.u32()? as usize;
    let n = r.u32()? as usize;
    let w = r.i8s()?;
    let scale = r.f32s()?;
    let b = r.f32s()?;
    if k == 0 || n == 0 || w.len() != k * n || scale.len() != n || b.len() != n {
        return Err(ModelCodecError::Corrupt("quant layer shape mismatch"));
    }
    Ok(QuantizedDense::from_parts(k, n, w, scale, b))
}

/// Encodes a [`QuantizedMlp`] into a model blob (i8 weight payload —
/// ≈ 4× smaller than the f32 original's).
pub fn encode_quant_mlp(model: &QuantizedMlp) -> Vec<u8> {
    let mut w = Writer::new(ModelKind::QuantMlp);
    w.u8(activation_to_u8(model.hidden_activation()));
    let layers = model.layers();
    w.u32(layers.len() as u32);
    for layer in layers {
        encode_quant_dense(&mut w, layer);
    }
    w.0
}

/// Decodes a [`QuantizedMlp`] from a model blob.
///
/// # Errors
///
/// Returns [`ModelCodecError`] for malformed blobs.
pub fn decode_quant_mlp(blob: &[u8]) -> Result<QuantizedMlp, ModelCodecError> {
    let mut r = body_reader(blob, ModelKind::QuantMlp)?;
    let act = activation_from_u8(r.u8()?)?;
    let n = r.u32()? as usize;
    if n == 0 {
        return Err(ModelCodecError::Corrupt("quant mlp with zero layers"));
    }
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        layers.push(decode_quant_dense(&mut r)?);
    }
    for pair in layers.windows(2) {
        if pair[0].cols() != pair[1].rows() {
            return Err(ModelCodecError::Corrupt("quant mlp layers do not chain"));
        }
    }
    r.done()?;
    Ok(QuantizedMlp::from_parts(layers, act))
}

/// Encodes a [`QuantizedLstm`] into a model blob.
pub fn encode_quant_lstm(model: &QuantizedLstm) -> Vec<u8> {
    let mut w = Writer::new(ModelKind::QuantLstm);
    let cells = model.quant_cells();
    w.u32(cells.len() as u32);
    for cell in cells {
        w.u32(cell.input_size() as u32);
        w.u32(cell.hidden_size() as u32);
        encode_quant_dense(&mut w, cell.wx());
        encode_quant_dense(&mut w, cell.wh());
    }
    let (head_w, head_b) = model.head();
    w.matrix(head_w);
    w.f32s(head_b);
    w.0
}

/// Decodes a [`QuantizedLstm`] from a model blob.
///
/// # Errors
///
/// Returns [`ModelCodecError`] for malformed blobs.
pub fn decode_quant_lstm(blob: &[u8]) -> Result<QuantizedLstm, ModelCodecError> {
    let mut r = body_reader(blob, ModelKind::QuantLstm)?;
    let n = r.u32()? as usize;
    if n == 0 {
        return Err(ModelCodecError::Corrupt("quant lstm with zero layers"));
    }
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        let input = r.u32()? as usize;
        let hidden = r.u32()? as usize;
        let wx = decode_quant_dense(&mut r)?;
        let wh = decode_quant_dense(&mut r)?;
        if hidden == 0
            || wx.rows() != input
            || wx.cols() != 4 * hidden
            || wh.rows() != hidden
            || wh.cols() != 4 * hidden
        {
            return Err(ModelCodecError::Corrupt("quant lstm cell shape mismatch"));
        }
        cells.push(QuantizedCell::from_parts(input, hidden, wx, wh));
    }
    for pair in cells.windows(2) {
        if pair[0].hidden_size() != pair[1].input_size() {
            return Err(ModelCodecError::Corrupt("quant lstm layer sizes do not chain"));
        }
    }
    let head_w = r.matrix()?;
    let head_b = r.f32s()?;
    if head_b.len() != head_w.cols()
        || head_w.rows() != cells.last().expect("non-empty").hidden_size()
    {
        return Err(ModelCodecError::Corrupt("quant lstm head shape mismatch"));
    }
    r.done()?;
    Ok(QuantizedLstm::from_parts(cells, head_w, head_b))
}

// -- file helpers ----------------------------------------------------------

/// Persists a model blob to a path (the registry's `update_model`).
///
/// # Errors
///
/// Returns [`ModelCodecError::Io`] on filesystem failure.
pub fn save_blob(path: &Path, blob: &[u8]) -> Result<(), ModelCodecError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, blob)?;
    Ok(())
}

/// Loads a model blob from a path (the registry's `load_model`).
///
/// # Errors
///
/// Returns [`ModelCodecError::Io`] on filesystem failure,
/// [`ModelCodecError::BadMagic`] if the file is not a model blob.
pub fn load_blob(path: &Path) -> Result<Vec<u8>, ModelCodecError> {
    let blob = fs::read(path)?;
    ModelKind::detect(&blob)?;
    Ok(blob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = Mlp::new(&[5, 12, 3], Activation::Tanh, &mut rng);
        let blob = encode_mlp(&model);
        assert_eq!(ModelKind::detect(&blob).unwrap(), ModelKind::Mlp);
        let back = decode_mlp(&blob).unwrap();
        let x = Matrix::from_rows(&[vec![0.1, -0.2, 0.3, 0.4, -0.5]]);
        assert_eq!(model.forward(&x).data(), back.forward(&x).data());
    }

    #[test]
    fn lstm_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = LstmClassifier::new(3, 6, 2, 4, &mut rng);
        let blob = encode_lstm(&model);
        assert_eq!(ModelKind::detect(&blob).unwrap(), ModelKind::Lstm);
        let back = decode_lstm(&blob).unwrap();
        let seq = vec![vec![0.5, -0.5, 0.25]; 4];
        assert_eq!(model.forward(&seq), back.forward(&seq));
    }

    #[test]
    fn knn_roundtrip_preserves_classification() {
        let refs = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![5.1, 5.0]]);
        let model = Knn::new(refs, vec![0, 1, 1], 3);
        let blob = encode_knn(&model);
        assert_eq!(ModelKind::detect(&blob).unwrap(), ModelKind::Knn);
        let back = decode_knn(&blob).unwrap();
        assert_eq!(back.classify(&[4.9, 5.0]), model.classify(&[4.9, 5.0]));
        assert_eq!(back.k(), 3);
    }

    #[test]
    fn quant_mlp_roundtrip_preserves_outputs_and_shrinks_blob() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = Mlp::new(&[64, 128, 8], Activation::Relu, &mut rng);
        let q = QuantizedMlp::quantize(&model);
        let blob = encode_quant_mlp(&q);
        assert_eq!(ModelKind::detect(&blob).unwrap(), ModelKind::QuantMlp);
        let back = decode_quant_mlp(&blob).unwrap();
        let x = Matrix::from_rows(&[(0..64).map(|i| (i as f32) * 0.03 - 0.8).collect::<Vec<_>>()]);
        assert_eq!(q.classify(&x), back.classify(&x));
        // The int8 payload beats the f32 blob by roughly 4× (scales,
        // biases and framing eat a little of the win).
        let f32_blob = encode_mlp(&model);
        assert!(
            blob.len() * 3 < f32_blob.len(),
            "quant blob {} vs f32 blob {}",
            blob.len(),
            f32_blob.len()
        );
    }

    #[test]
    fn quant_lstm_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = LstmClassifier::new(8, 32, 2, 4, &mut rng);
        let q = QuantizedLstm::quantize(&model);
        let blob = encode_quant_lstm(&q);
        assert_eq!(ModelKind::detect(&blob).unwrap(), ModelKind::QuantLstm);
        let back = decode_quant_lstm(&blob).unwrap();
        let seq = vec![vec![0.5, -0.5, 0.25, 0.1, -0.7, 0.9, 0.0, 0.3]; 5];
        assert_eq!(q.classify(&seq), back.classify(&seq));
        let f32_blob = encode_lstm(&model);
        assert!(blob.len() * 2 < f32_blob.len(), "quant lstm blob not smaller");
    }

    #[test]
    fn quant_truncation_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = Mlp::new(&[4, 8, 2], Activation::Relu, &mut rng);
        let blob = encode_quant_mlp(&QuantizedMlp::quantize(&model));
        for cut in [9, blob.len() / 2, blob.len() - 1] {
            assert!(decode_quant_mlp(&blob[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut extended = blob.clone();
        extended.push(0);
        assert!(decode_quant_mlp(&extended).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(ModelKind::detect(b"NOTMAGIC1"), Err(ModelCodecError::BadMagic)));
        assert!(matches!(ModelKind::detect(&[]), Err(ModelCodecError::BadMagic)));
    }

    #[test]
    fn wrong_kind_rejected() {
        let refs = Matrix::from_rows(&[vec![0.0]]);
        let blob = encode_knn(&Knn::new(refs, vec![0], 1));
        assert!(matches!(decode_mlp(&blob), Err(ModelCodecError::Corrupt(_))));
    }

    #[test]
    fn truncation_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Mlp::new(&[2, 4, 2], Activation::Relu, &mut rng);
        let blob = encode_mlp(&model);
        for cut in [9, blob.len() / 2, blob.len() - 1] {
            assert!(decode_mlp(&blob[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Mlp::new(&[2, 4, 2], Activation::Relu, &mut rng);
        let mut blob = encode_mlp(&model);
        blob.push(0);
        assert!(matches!(decode_mlp(&blob), Err(ModelCodecError::Corrupt("trailing bytes"))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lake-ml-serialize-test");
        let path = dir.join("model.lakeml");
        let mut rng = StdRng::seed_from_u64(4);
        let model = Mlp::new(&[3, 4, 2], Activation::Relu, &mut rng);
        let blob = encode_mlp(&model);
        save_blob(&path, &blob).unwrap();
        let back = load_blob(&path).unwrap();
        assert_eq!(back, blob);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_non_model_files() {
        let dir = std::env::temp_dir().join("lake-ml-serialize-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"hello world").unwrap();
        assert!(matches!(load_blob(&path), Err(ModelCodecError::BadMagic)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
