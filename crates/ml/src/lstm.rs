//! LSTM networks — the model family behind Kleio's page-warmth classifier.
//!
//! Kleio "uses Tensorflow to construct a model with two LSTM layers"
//! (§4.4); the paper remotes TensorFlow into the kernel rather than
//! reimplementing LSTM inference in CUDA ("implementing fast, efficient
//! and correct LSTM inference using the CUDA runtime directly is
//! \[hard\]"). Here the substitution is a from-scratch LSTM with exact
//! forward math and truncated-BPTT training, which the remoted
//! "high-level API" in `lake-core` executes daemon-side.
//!
//! Weights use the gate order `[i, f, g, o]` (input, forget, cell, output).

use rand::Rng;

use crate::mlp::softmax_rows;
use crate::tensor::Matrix;

/// A single LSTM layer (cell) operating on one sequence at a time.
#[derive(Debug, Clone)]
pub struct LstmCell {
    input: usize,
    hidden: usize,
    /// `input × 4·hidden` input weights.
    wx: Matrix,
    /// `hidden × 4·hidden` recurrent weights.
    wh: Matrix,
    /// `4·hidden` biases.
    b: Vec<f32>,
}

/// Cached per-timestep state for backprop.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// Accumulated gradients for one cell.
#[derive(Debug, Clone)]
struct CellGrads {
    wx: Matrix,
    wh: Matrix,
    b: Vec<f32>,
}

fn sigmoid(x: f32) -> f32 {
    crate::fastmath::sigmoid(x)
}

impl LstmCell {
    /// Creates a cell with Xavier-initialized weights and forget-gate bias
    /// 1.0 (the standard trick for gradient flow).
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        assert!(input > 0 && hidden > 0, "dimensions must be non-zero");
        let limit = (6.0 / (input + 4 * hidden) as f32).sqrt();
        let wx = Matrix::from_vec(
            input,
            4 * hidden,
            (0..input * 4 * hidden).map(|_| rng.gen_range(-limit..limit)).collect(),
        );
        let limit_h = (6.0 / (hidden + 4 * hidden) as f32).sqrt();
        let wh = Matrix::from_vec(
            hidden,
            4 * hidden,
            (0..hidden * 4 * hidden).map(|_| rng.gen_range(-limit_h..limit_h)).collect(),
        );
        let mut b = vec![0.0; 4 * hidden];
        for bias in b.iter_mut().take(2 * hidden).skip(hidden) {
            *bias = 1.0; // forget gate
        }
        LstmCell { input, hidden, wx, wh, b }
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden state dimensionality.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Deconstructs the cell into `(wx, wh, b)` for serialization.
    pub fn into_raw_parts(self) -> (Matrix, Matrix, Vec<f32>) {
        (self.wx, self.wh, self.b)
    }

    /// Borrows the raw parameters `(wx, wh, b)`.
    pub fn raw_parts(&self) -> (&Matrix, &Matrix, &[f32]) {
        (&self.wx, &self.wh, &self.b)
    }

    /// Rebuilds a cell from raw parameters (inverse of
    /// [`LstmCell::into_raw_parts`]).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent (`wx` must be `in × 4h`, `wh`
    /// `h × 4h`, `b` length `4h`).
    pub fn from_raw_parts(wx: Matrix, wh: Matrix, b: Vec<f32>) -> Self {
        let four_h = wx.cols();
        assert_eq!(four_h % 4, 0, "gate dimension must be a multiple of 4");
        let hidden = four_h / 4;
        assert_eq!(wh.rows(), hidden, "wh rows must equal hidden size");
        assert_eq!(wh.cols(), four_h, "wh cols must equal 4*hidden");
        assert_eq!(b.len(), four_h, "bias length must equal 4*hidden");
        LstmCell { input: wx.rows(), hidden, wx, wh, b }
    }

    /// FLOPs for one timestep (multiply-add = 2 FLOPs).
    pub fn flops_per_step(&self) -> f64 {
        2.0 * (self.input as f64 + self.hidden as f64) * (4 * self.hidden) as f64
    }

    /// One forward step; returns `(h, c)` and caches intermediates.
    fn step(&self, x: &[f32], h_prev: &[f32], c_prev: &[f32]) -> (Vec<f32>, Vec<f32>, StepCache) {
        assert_eq!(x.len(), self.input, "input size mismatch");
        assert_eq!(h_prev.len(), self.hidden, "hidden size mismatch");
        let hd = self.hidden;
        // z = x·Wx + h_prev·Wh + b
        let mut z = self.b.clone();
        for (k, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = self.wx.row(k);
            for (zj, &wj) in z.iter_mut().zip(row) {
                *zj += xv * wj;
            }
        }
        for (k, &hv) in h_prev.iter().enumerate() {
            if hv == 0.0 {
                continue;
            }
            let row = self.wh.row(k);
            for (zj, &wj) in z.iter_mut().zip(row) {
                *zj += hv * wj;
            }
        }
        let i: Vec<f32> = z[..hd].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f32> = z[hd..2 * hd].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f32> = z[2 * hd..3 * hd].iter().map(|&v| crate::fastmath::tanh(v)).collect();
        let o: Vec<f32> = z[3 * hd..].iter().map(|&v| sigmoid(v)).collect();
        let c: Vec<f32> = (0..hd).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
        let tanh_c: Vec<f32> = c.iter().map(|&v| crate::fastmath::tanh(v)).collect();
        let h: Vec<f32> = (0..hd).map(|j| o[j] * tanh_c[j]).collect();
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            tanh_c,
        };
        (h, c, cache)
    }

    /// Runs a whole sequence from zero state; returns all hidden states.
    pub fn forward_sequence(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut hs = Vec::with_capacity(xs.len());
        for x in xs {
            let (nh, nc, _) = self.step(x, &h, &c);
            h = nh;
            c = nc;
            hs.push(h.clone());
        }
        hs
    }

    fn zero_grads(&self) -> CellGrads {
        CellGrads {
            wx: Matrix::zeros(self.input, 4 * self.hidden),
            wh: Matrix::zeros(self.hidden, 4 * self.hidden),
            b: vec![0.0; 4 * self.hidden],
        }
    }

    /// Backward through one timestep. `dh`/`dc_next` are gradients w.r.t.
    /// this step's outputs; returns `(dx, dh_prev, dc_prev)` and
    /// accumulates parameter gradients.
    fn step_backward(
        &self,
        cache: &StepCache,
        dh: &[f32],
        dc_next: &[f32],
        grads: &mut CellGrads,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let hd = self.hidden;
        let mut dz = vec![0.0; 4 * hd];
        let mut dc_prev = vec![0.0; hd];
        for j in 0..hd {
            let do_ = dh[j] * cache.tanh_c[j];
            let dc = dh[j] * cache.o[j] * (1.0 - cache.tanh_c[j] * cache.tanh_c[j]) + dc_next[j];
            let di = dc * cache.g[j];
            let df = dc * cache.c_prev[j];
            let dg = dc * cache.i[j];
            dc_prev[j] = dc * cache.f[j];
            dz[j] = di * cache.i[j] * (1.0 - cache.i[j]);
            dz[hd + j] = df * cache.f[j] * (1.0 - cache.f[j]);
            dz[2 * hd + j] = dg * (1.0 - cache.g[j] * cache.g[j]);
            dz[3 * hd + j] = do_ * cache.o[j] * (1.0 - cache.o[j]);
        }
        // Parameter gradients: dWx += xᵀ·dz, dWh += h_prevᵀ·dz, db += dz.
        for (k, &xv) in cache.x.iter().enumerate() {
            if xv != 0.0 {
                let row = grads.wx.row_mut(k);
                for (gj, &dzj) in row.iter_mut().zip(&dz) {
                    *gj += xv * dzj;
                }
            }
        }
        for (k, &hv) in cache.h_prev.iter().enumerate() {
            if hv != 0.0 {
                let row = grads.wh.row_mut(k);
                for (gj, &dzj) in row.iter_mut().zip(&dz) {
                    *gj += hv * dzj;
                }
            }
        }
        for (gb, &dzj) in grads.b.iter_mut().zip(&dz) {
            *gb += dzj;
        }
        // Input gradients: dx = dz·Wxᵀ, dh_prev = dz·Whᵀ.
        let mut dx = vec![0.0; self.input];
        for (k, dxk) in dx.iter_mut().enumerate() {
            let row = self.wx.row(k);
            *dxk = row.iter().zip(&dz).map(|(&w, &d)| w * d).sum();
        }
        let mut dh_prev = vec![0.0; hd];
        for (k, dhk) in dh_prev.iter_mut().enumerate() {
            let row = self.wh.row(k);
            *dhk = row.iter().zip(&dz).map(|(&w, &d)| w * d).sum();
        }
        (dx, dh_prev, dc_prev)
    }

    fn apply_grads(&mut self, grads: &CellGrads, lr: f32) {
        self.wx.saxpy_sub(lr, &grads.wx);
        self.wh.saxpy_sub(lr, &grads.wh);
        for (b, &g) in self.b.iter_mut().zip(&grads.b) {
            *b -= lr * g;
        }
    }
}

/// A stacked-LSTM sequence classifier: Kleio's "two LSTM layers" plus a
/// dense softmax head reading the final hidden state.
#[derive(Debug, Clone)]
pub struct LstmClassifier {
    cells: Vec<LstmCell>,
    head_w: Matrix,
    head_b: Vec<f32>,
}

impl LstmClassifier {
    /// Builds a classifier: `input` features per timestep, `layers` stacked
    /// LSTM layers of `hidden` units, `classes` outputs.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        input: usize,
        hidden: usize,
        layers: usize,
        classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(layers > 0 && classes > 0, "layers and classes must be non-zero");
        let mut cells = Vec::with_capacity(layers);
        for l in 0..layers {
            let in_size = if l == 0 { input } else { hidden };
            cells.push(LstmCell::new(in_size, hidden, rng));
        }
        let limit = (6.0 / (hidden + classes) as f32).sqrt();
        let head_w = Matrix::from_vec(
            hidden,
            classes,
            (0..hidden * classes).map(|_| rng.gen_range(-limit..limit)).collect(),
        );
        LstmClassifier { cells, head_w, head_b: vec![0.0; classes] }
    }

    /// Number of stacked LSTM layers.
    pub fn num_layers(&self) -> usize {
        self.cells.len()
    }

    /// Borrows the stacked cells.
    pub fn cells(&self) -> &[LstmCell] {
        &self.cells
    }

    /// Borrows the head parameters `(weights, bias)`.
    pub fn head(&self) -> (&Matrix, &[f32]) {
        (&self.head_w, &self.head_b)
    }

    /// Rebuilds a classifier from cells and a head (inverse of
    /// [`LstmClassifier::cells`] / [`LstmClassifier::head`]).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty, the layer sizes do not chain, or the
    /// head shape does not match the top cell.
    pub fn from_parts(cells: Vec<LstmCell>, head_w: Matrix, head_b: Vec<f32>) -> Self {
        assert!(!cells.is_empty(), "need at least one LSTM layer");
        for pair in cells.windows(2) {
            assert_eq!(
                pair[0].hidden_size(),
                pair[1].input_size(),
                "stacked layer sizes must chain"
            );
        }
        let top = cells.last().expect("non-empty");
        assert_eq!(head_w.rows(), top.hidden_size(), "head input must match top hidden");
        assert_eq!(head_w.cols(), head_b.len(), "head bias must match classes");
        LstmClassifier { cells, head_w, head_b }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.head_b.len()
    }

    /// FLOPs to run one sequence of length `t` (all layers + head).
    pub fn flops_per_sequence(&self, t: usize) -> f64 {
        let steps: f64 = self.cells.iter().map(|c| c.flops_per_step()).sum();
        steps * t as f64 + 2.0 * self.head_w.rows() as f64 * self.head_w.cols() as f64
    }

    /// Logits for one sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or feature size mismatches.
    pub fn forward(&self, seq: &[Vec<f32>]) -> Vec<f32> {
        assert!(!seq.is_empty(), "sequence must be non-empty");
        let mut layer_input: Vec<Vec<f32>> = seq.to_vec();
        for cell in &self.cells {
            layer_input = cell.forward_sequence(&layer_input);
        }
        let last_h = layer_input.last().expect("non-empty sequence");
        let mut logits = self.head_b.clone();
        for (k, &hv) in last_h.iter().enumerate() {
            let row = self.head_w.row(k);
            for (lj, &wj) in logits.iter_mut().zip(row) {
                *lj += hv * wj;
            }
        }
        logits
    }

    /// Argmax class for one sequence.
    pub fn classify(&self, seq: &[Vec<f32>]) -> usize {
        let logits = self.forward(seq);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Softmax probabilities for one sequence.
    pub fn probabilities(&self, seq: &[Vec<f32>]) -> Vec<f32> {
        let logits = self.forward(seq);
        let mut m = Matrix::row_vector(&logits);
        softmax_rows(&mut m);
        m.data().to_vec()
    }

    /// One full-BPTT SGD step on a single `(sequence, label)` example;
    /// returns the cross-entropy loss before the update.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or `label` is out of range.
    pub fn train_sequence(&mut self, seq: &[Vec<f32>], label: usize, lr: f32) -> f32 {
        assert!(!seq.is_empty(), "sequence must be non-empty");
        assert!(label < self.num_classes(), "label out of range");
        let t_len = seq.len();
        let n_layers = self.cells.len();

        // Forward, caching every step of every layer.
        let mut caches: Vec<Vec<StepCache>> = Vec::with_capacity(n_layers);
        let mut hs_per_layer: Vec<Vec<Vec<f32>>> = Vec::with_capacity(n_layers);
        let mut layer_input: Vec<Vec<f32>> = seq.to_vec();
        for cell in &self.cells {
            let mut h = vec![0.0; cell.hidden];
            let mut c = vec![0.0; cell.hidden];
            let mut layer_caches = Vec::with_capacity(t_len);
            let mut hs = Vec::with_capacity(t_len);
            for x in &layer_input {
                let (nh, nc, cache) = cell.step(x, &h, &c);
                h = nh;
                c = nc;
                layer_caches.push(cache);
                hs.push(h.clone());
            }
            caches.push(layer_caches);
            layer_input = hs.clone();
            hs_per_layer.push(hs);
        }

        // Head forward + softmax CE.
        let last_h = hs_per_layer[n_layers - 1].last().expect("non-empty").clone();
        let mut logits = self.head_b.clone();
        for (k, &hv) in last_h.iter().enumerate() {
            let row = self.head_w.row(k);
            for (lj, &wj) in logits.iter_mut().zip(row) {
                *lj += hv * wj;
            }
        }
        let mut probs = Matrix::row_vector(&logits);
        softmax_rows(&mut probs);
        let loss = -probs.at(0, label).max(1e-12).ln();

        // Head gradients.
        let mut dlogits = probs.data().to_vec();
        dlogits[label] -= 1.0;
        let mut dh_last = vec![0.0; last_h.len()];
        let mut head_grad_w = Matrix::zeros(self.head_w.rows(), self.head_w.cols());
        for (k, &hv) in last_h.iter().enumerate() {
            let grow = head_grad_w.row_mut(k);
            let wrow = self.head_w.row(k);
            let mut acc = 0.0;
            for j in 0..dlogits.len() {
                grow[j] += hv * dlogits[j];
                acc += wrow[j] * dlogits[j];
            }
            dh_last[k] = acc;
        }

        // BPTT top layer down to layer 0; dx of layer l feeds dh of l-1.
        let mut all_grads: Vec<CellGrads> = self.cells.iter().map(|c| c.zero_grads()).collect();
        // per-timestep dh arriving from the layer above (only top layer's
        // final step starts non-zero)
        let mut dh_from_above: Vec<Vec<f32>> = vec![Vec::new(); t_len];
        for (l, cell) in self.cells.iter().enumerate().rev() {
            let hidden = cell.hidden;
            let mut dh_next = vec![0.0; hidden];
            let mut dc_next = vec![0.0; hidden];
            let mut dx_per_step: Vec<Vec<f32>> = vec![Vec::new(); t_len];
            for t in (0..t_len).rev() {
                let mut dh = dh_next.clone();
                if l == n_layers - 1 && t == t_len - 1 {
                    for (a, &b) in dh.iter_mut().zip(&dh_last) {
                        *a += b;
                    }
                }
                if !dh_from_above[t].is_empty() {
                    for (a, &b) in dh.iter_mut().zip(&dh_from_above[t]) {
                        *a += b;
                    }
                }
                let (dx, dh_prev, dc_prev) =
                    cell.step_backward(&caches[l][t], &dh, &dc_next, &mut all_grads[l]);
                dx_per_step[t] = dx;
                dh_next = dh_prev;
                dc_next = dc_prev;
            }
            dh_from_above = dx_per_step;
        }

        // Apply updates (with a mild gradient clip for stability).
        let clip = 5.0f32;
        for g in &mut all_grads {
            g.wx.map_inplace(|x| x.clamp(-clip, clip));
            g.wh.map_inplace(|x| x.clamp(-clip, clip));
            for b in &mut g.b {
                *b = b.clamp(-clip, clip);
            }
        }
        for (cell, grads) in self.cells.iter_mut().zip(&all_grads) {
            cell.apply_grads(grads, lr);
        }
        self.head_w.saxpy_sub(lr, &head_grad_w);
        for (b, &d) in self.head_b.iter_mut().zip(&dlogits) {
            *b -= lr * d;
        }
        loss
    }

    /// Accuracy over a labeled set of sequences.
    pub fn accuracy(&self, data: &[(Vec<Vec<f32>>, usize)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(seq, label)| self.classify(seq) == *label).count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Sequences whose class depends on the *order* of values — impossible
    /// for a memoryless model, easy for an LSTM.
    fn order_task(rng: &mut StdRng, n: usize) -> Vec<(Vec<Vec<f32>>, usize)> {
        use rand::Rng;
        (0..n)
            .map(|_| {
                let rising = rng.gen_bool(0.5);
                let seq: Vec<Vec<f32>> = if rising {
                    (0..6).map(|t| vec![t as f32 / 6.0]).collect()
                } else {
                    (0..6).rev().map(|t| vec![t as f32 / 6.0]).collect()
                };
                (seq, usize::from(rising))
            })
            .collect()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = LstmClassifier::new(3, 8, 2, 4, &mut rng);
        assert_eq!(model.num_layers(), 2);
        assert_eq!(model.num_classes(), 4);
        let seq: Vec<Vec<f32>> = (0..5).map(|_| vec![0.1, 0.2, 0.3]).collect();
        let logits = model.forward(&seq);
        assert_eq!(logits.len(), 4);
        let probs = model.probabilities(&seq);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn learns_sequence_order() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut model = LstmClassifier::new(1, 12, 1, 2, &mut rng);
        let train = order_task(&mut rng, 64);
        let mut first_epoch_loss = 0.0;
        let mut last_epoch_loss = 0.0;
        for epoch in 0..30 {
            let mut total = 0.0;
            for (seq, label) in &train {
                total += model.train_sequence(seq, *label, 0.05);
            }
            if epoch == 0 {
                first_epoch_loss = total;
            }
            last_epoch_loss = total;
        }
        assert!(
            last_epoch_loss < first_epoch_loss / 3.0,
            "loss {first_epoch_loss} -> {last_epoch_loss}"
        );
        let test = order_task(&mut rng, 32);
        assert!(model.accuracy(&test) > 0.9, "accuracy {}", model.accuracy(&test));
    }

    #[test]
    fn stacked_layers_train_too() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = LstmClassifier::new(1, 8, 2, 2, &mut rng);
        let train = order_task(&mut rng, 48);
        let mut losses = Vec::new();
        for _ in 0..25 {
            let total: f32 =
                train.iter().map(|(seq, label)| model.train_sequence(seq, *label, 0.05)).sum();
            losses.push(total);
        }
        assert!(losses.last().unwrap() < &(losses[0] / 2.0));
    }

    #[test]
    fn flops_scale_with_sequence_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = LstmClassifier::new(4, 16, 2, 2, &mut rng);
        let f10 = model.flops_per_sequence(10);
        let f20 = model.flops_per_sequence(20);
        assert!(f20 > f10 * 1.9 && f20 < f10 * 2.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let m1 = LstmClassifier::new(2, 4, 1, 2, &mut rng1);
        let m2 = LstmClassifier::new(2, 4, 1, 2, &mut rng2);
        let seq = vec![vec![0.5, -0.5]; 4];
        assert_eq!(m1.forward(&seq), m2.forward(&seq));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sequence_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = LstmClassifier::new(2, 4, 1, 2, &mut rng);
        model.forward(&[]);
    }

    #[test]
    fn cell_forward_gate_sanity() {
        // With zero weights and zero bias except forget=1, state stays 0
        // and h stays 0 for zero input.
        let mut rng = StdRng::seed_from_u64(1);
        let cell = LstmCell::new(2, 3, &mut rng);
        let hs = cell.forward_sequence(&vec![vec![0.0, 0.0]; 3]);
        assert_eq!(hs.len(), 3);
        // Values bounded by tanh/sigmoid ranges.
        for h in hs {
            assert!(h.iter().all(|&v| v.abs() <= 1.0));
        }
    }
}
