//! Int8 quantized inference: a *separate model format*, not a faster mode
//! of the f32 engine.
//!
//! The f32 packed path is the correctness oracle — every kernel is
//! bit-identical to the naive loops, which is what the chaos invariants
//! compare. Quantization necessarily changes the numbers, so it lives in
//! its own model family ([`QuantizedMlp`] / [`QuantizedLstm`]) with its own
//! serialized kinds and its own acceptance criterion: an accuracy delta
//! (≤ 0.5% top-1 on the LinnOS/Kleio/MLLB workloads) instead of bit
//! equality.
//!
//! **Scheme.** Symmetric linear quantization. Weights get one static scale
//! per *output column* (`s_j = max_k |w[k][j]| / 127`); activations get one
//! dynamic scale per row, computed on the fly (`s_a = max |x| / 127`).
//! The inner product accumulates `i8 × i8` products in `i32` — exact
//! integer math, so the scalar, SSE4.1 and AVX2 int8 kernels agree with
//! each other to the bit and only the shared scalar dequantization
//! epilogue (`out[j] = acc[j] · s_a·s_j + b[j]`) touches floats.
//!
//! **Layout.** [`PackedQuantMatrix`] widens the i8 weights to i16 and
//! interleaves consecutive reduction-dimension *pairs* per column:
//! packed row `p` holds `[w[2p][0], w[2p+1][0], w[2p][1], w[2p+1][1], …]`.
//! One 256-bit load then feeds `vpmaddwd` (`_mm256_madd_epi16`), which
//! multiplies 16 i16 lanes and adds adjacent products into 8 exact i32
//! sums — two reduction steps for 8 columns per instruction, twice the
//! f32 MAC rate. (The byte-level `vpmaddubsw` would be denser still, but
//! it saturates its i16 intermediate; the i16 widening keeps every product
//! exact: |pair sum| ≤ 2·127² = 32258 per lane, and the i32 accumulator is
//! exact up to k ≈ 130 000.)
//!
//! The payoff beyond FLOPs: quantized blobs are ≈ 4× smaller, so they
//! occupy ≈ 4× fewer `ModelStore` pages under `LAKE_MODEL_BUDGET`.

use std::ops::Range;
use std::sync::Mutex;

use crate::gemm::{
    apply_act, head_argmax, lstm_gate_epilogue, partition, run_partitioned, Kernel, PackedMatrix,
    WorkerPool, DEFAULT_POOL_MIN_ROWS,
};
use crate::lstm::LstmClassifier;
use crate::mlp::{Activation, Mlp};
use crate::tensor::Matrix;

/// Quantizes one weight column set: returns per-column scales and the
/// row-major i8 weights for a `k × n` matrix.
fn quantize_columns(w: &Matrix) -> (Vec<i8>, Vec<f32>) {
    let (k, n) = (w.rows(), w.cols());
    let src = w.data();
    let mut scale = vec![0.0f32; n];
    for kk in 0..k {
        for j in 0..n {
            scale[j] = scale[j].max(src[kk * n + j].abs());
        }
    }
    for s in scale.iter_mut() {
        // All-zero columns quantize to zero regardless of scale; 1.0 keeps
        // the dequantization finite.
        *s = if *s == 0.0 { 1.0 } else { *s / 127.0 };
    }
    let mut q = vec![0i8; k * n];
    for kk in 0..k {
        for j in 0..n {
            let v = (src[kk * n + j] / scale[j]).round();
            q[kk * n + j] = v.clamp(-127.0, 127.0) as i8;
        }
    }
    (q, scale)
}

/// Quantizes one activation row into interleaved i16 pair words
/// (`lo = x[2p]`, `hi = x[2p+1]`, zero-padded on an odd tail) and returns
/// the dynamic per-row scale.
///
/// Dynamic quantization runs once per row per layer (and twice per LSTM
/// timestep), so it is on the int8 hot path and gets the same kernel
/// dispatch as the GEMMs. Every path is bit-identical by construction:
/// the abs-max reduction is exact under any order, division is correctly
/// rounded, the scalar path rounds ties-to-even exactly like `cvtps2dq`,
/// and the clamp operand order mirrors `maxps`/`minps`.
fn quantize_acts(kernel: Kernel, x: &[f32], pairs: &mut [u32]) -> f32 {
    debug_assert_eq!(pairs.len(), x.len().div_ceil(2), "pair buffer mismatch");
    match kernel {
        Kernel::Scalar => quantize_acts_scalar(x, pairs),
        // SAFETY: kernels are clamped to detected CPU features at every
        // public entry.
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse => unsafe { quantize_acts_sse(x, pairs) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { quantize_acts_avx2(x, pairs) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Sse | Kernel::Avx2 => quantize_acts_scalar(x, pairs),
    }
}

/// One scalar activation quantization step, op-for-op the same sequence
/// as the SIMD lanes: divide, clamp (in `maxps`/`minps` operand order),
/// round ties-to-even (`cvtps2dq`'s mode), truncate to i16.
#[inline]
// Not `clamp`: max-then-min mirrors `maxps`/`minps` operand-order NaN
// semantics, which `f32::clamp` (NaN-propagating) does not.
#[allow(clippy::manual_clamp)]
fn quant_one(v: f32, sa: f32) -> i16 {
    ((v / sa).max(-127.0).min(127.0).round_ties_even() as i32) as i16
}

/// Packs pair words `w0..` through the scalar path — the full row for the
/// scalar kernel, the unaligned tail for the SIMD ones.
fn quantize_pack_tail(x: &[f32], sa: f32, pairs: &mut [u32], w0: usize) {
    for (p, slot) in pairs.iter_mut().enumerate().skip(w0) {
        let lo = quant_one(x[2 * p], sa) as u16 as u32;
        let hi = if 2 * p + 1 < x.len() { quant_one(x[2 * p + 1], sa) as u16 as u32 } else { 0 };
        *slot = lo | (hi << 16);
    }
}

fn quantize_acts_scalar(x: &[f32], pairs: &mut [u32]) -> f32 {
    let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let sa = if amax == 0.0 { 1.0 } else { amax / 127.0 };
    quantize_pack_tail(x, sa, pairs, 0);
    sa
}

/// AVX2 activation quantization: 8-wide abs-max scan, then 16 floats per
/// iteration through divide/clamp/`cvtps2dq`, packed to 16 consecutive
/// i16 via `packus`+`permute4x64` — consecutive i16 in memory *are* the
/// little-endian pair words.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_acts_avx2(x: &[f32], pairs: &mut [u32]) -> f32 {
    use std::arch::x86_64::*;
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let mut vm = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= x.len() {
        vm = _mm256_max_ps(vm, _mm256_and_ps(absmask, _mm256_loadu_ps(x.as_ptr().add(i))));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vm);
    // Max is exact, so the lane-fold order does not change the result.
    let mut amax = lanes.iter().fold(0.0f32, |m, v| m.max(*v));
    while i < x.len() {
        amax = amax.max(x[i].abs());
        i += 1;
    }
    let sa = if amax == 0.0 { 1.0 } else { amax / 127.0 };

    let vsa = _mm256_set1_ps(sa);
    let lo_b = _mm256_set1_ps(-127.0);
    let hi_b = _mm256_set1_ps(127.0);
    let m16 = _mm256_set1_epi32(0xFFFF);
    let quant8 = |p: *const f32| {
        let t = _mm256_div_ps(_mm256_loadu_ps(p), vsa);
        _mm256_cvtps_epi32(_mm256_min_ps(_mm256_max_ps(t, lo_b), hi_b))
    };
    let (mut e, mut w) = (0usize, 0usize);
    while e + 16 <= x.len() {
        let qa = _mm256_and_si256(quant8(x.as_ptr().add(e)), m16);
        let qb = _mm256_and_si256(quant8(x.as_ptr().add(e + 8)), m16);
        // packus interleaves 128-bit lanes: [a0..3 b0..3 | a4..7 b4..7];
        // permute4x64(0b11011000) restores element order.
        let packed = _mm256_packus_epi32(qa, qb);
        let fixed = _mm256_permute4x64_epi64::<0b1101_1000>(packed);
        _mm256_storeu_si256(pairs.as_mut_ptr().add(w) as *mut __m256i, fixed);
        e += 16;
        w += 8;
    }
    quantize_pack_tail(x, sa, pairs, w);
    sa
}

/// SSE4.1 activation quantization: the 4-wide twin of the AVX2 path
/// (`packus_epi32` is SSE4.1; no cross-lane fixup needed at 128 bits).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn quantize_acts_sse(x: &[f32], pairs: &mut [u32]) -> f32 {
    use std::arch::x86_64::*;
    let absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFF_FFFF));
    let mut vm = _mm_setzero_ps();
    let mut i = 0;
    while i + 4 <= x.len() {
        vm = _mm_max_ps(vm, _mm_and_ps(absmask, _mm_loadu_ps(x.as_ptr().add(i))));
        i += 4;
    }
    let mut lanes = [0.0f32; 4];
    _mm_storeu_ps(lanes.as_mut_ptr(), vm);
    let mut amax = lanes.iter().fold(0.0f32, |m, v| m.max(*v));
    while i < x.len() {
        amax = amax.max(x[i].abs());
        i += 1;
    }
    let sa = if amax == 0.0 { 1.0 } else { amax / 127.0 };

    let vsa = _mm_set1_ps(sa);
    let lo_b = _mm_set1_ps(-127.0);
    let hi_b = _mm_set1_ps(127.0);
    let m16 = _mm_set1_epi32(0xFFFF);
    let quant4 = |p: *const f32| {
        let t = _mm_div_ps(_mm_loadu_ps(p), vsa);
        _mm_cvtps_epi32(_mm_min_ps(_mm_max_ps(t, lo_b), hi_b))
    };
    let (mut e, mut w) = (0usize, 0usize);
    while e + 8 <= x.len() {
        let qa = _mm_and_si128(quant4(x.as_ptr().add(e)), m16);
        let qb = _mm_and_si128(quant4(x.as_ptr().add(e + 4)), m16);
        _mm_storeu_si128(pairs.as_mut_ptr().add(w) as *mut __m128i, _mm_packus_epi32(qa, qb));
        e += 8;
        w += 4;
    }
    quantize_pack_tail(x, sa, pairs, w);
    sa
}

// ---------------------------------------------------------------------------
// Quantized model families
// ---------------------------------------------------------------------------

/// One quantized dense layer: row-major `k × n` i8 weights, per-column
/// scales, f32 bias.
#[derive(Debug, Clone)]
pub struct QuantizedDense {
    pub(crate) k: usize,
    pub(crate) n: usize,
    pub(crate) w: Vec<i8>,
    pub(crate) scale: Vec<f32>,
    pub(crate) b: Vec<f32>,
}

impl QuantizedDense {
    fn quantize(w: &Matrix, b: &[f32]) -> Self {
        let (q, scale) = quantize_columns(w);
        QuantizedDense { k: w.rows(), n: w.cols(), w: q, scale, b: b.to_vec() }
    }

    /// Rebuilds a layer from raw parts (deserialization), validating shape.
    pub(crate) fn from_parts(k: usize, n: usize, w: Vec<i8>, scale: Vec<f32>, b: Vec<f32>) -> Self {
        assert_eq!(w.len(), k * n, "quant layer weight length");
        assert_eq!(scale.len(), n, "quant layer scale length");
        assert_eq!(b.len(), n, "quant layer bias length");
        QuantizedDense { k, n, w, scale, b }
    }

    /// Input width (reduction rows).
    pub(crate) fn rows(&self) -> usize {
        self.k
    }

    /// Output width (columns).
    pub(crate) fn cols(&self) -> usize {
        self.n
    }
}

/// An [`Mlp`] quantized to int8 — a distinct model family with its own
/// serialized kind, served next to (never instead of) its f32 oracle.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    pub(crate) layers: Vec<QuantizedDense>,
    pub(crate) hidden_activation: Activation,
}

impl QuantizedMlp {
    /// Quantizes every layer of `m` (per-column weight scales).
    pub fn quantize(m: &Mlp) -> Self {
        let layers =
            m.parameters().into_iter().map(|(w, b)| QuantizedDense::quantize(w, b)).collect();
        QuantizedMlp { layers, hidden_activation: m.hidden_activation() }
    }

    /// Rebuilds from deserialized layers.
    pub(crate) fn from_parts(layers: Vec<QuantizedDense>, hidden_activation: Activation) -> Self {
        assert!(!layers.is_empty(), "quant mlp needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].n, pair[1].k, "quant mlp layer chain mismatch");
        }
        QuantizedMlp { layers, hidden_activation }
    }

    /// Layer list (for serialization).
    pub(crate) fn layers(&self) -> &[QuantizedDense] {
        &self.layers
    }

    /// Input width expected by the first layer.
    pub fn input_size(&self) -> usize {
        self.layers[0].k
    }

    /// Output classes produced by the last layer.
    pub fn num_classes(&self) -> usize {
        self.layers.last().expect("non-empty mlp").n
    }

    /// Hidden-layer activation.
    pub fn hidden_activation(&self) -> Activation {
        self.hidden_activation
    }

    /// FLOPs for one forward pass over a single input — same multiply-add
    /// count as the f32 original, so cost-model comparisons stay apples to
    /// apples.
    pub fn flops_per_input(&self) -> f64 {
        self.layers.iter().map(|l| 2.0 * l.k as f64 * l.n as f64).sum()
    }

    /// Bytes of weight payload (i8 weights + f32 scales and biases) — the
    /// ≈ 4× `ModelStore` page win over the f32 form.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + 4 * (l.scale.len() + l.b.len())).sum()
    }

    /// Argmax classes for a batch (convenience; packs per call). First
    /// maximal index wins ties, matching `Mlp::classify`.
    pub fn classify(&self, x: &Matrix) -> Vec<usize> {
        PackedQuantMlp::pack(self).classify_with(
            x.data(),
            x.rows(),
            x.cols(),
            None,
            Kernel::from_env(),
        )
    }

    /// Fraction of rows classified as their label (mirrors
    /// `Mlp::accuracy`).
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        let preds = self.classify(x);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }
}

/// One quantized LSTM cell: gate weights in int8 (per-column scales for
/// the `4·hidden` gate columns), f32 bias.
#[derive(Debug, Clone)]
pub struct QuantizedCell {
    pub(crate) input: usize,
    pub(crate) hidden: usize,
    pub(crate) wx: QuantizedDense,
    pub(crate) wh: QuantizedDense,
}

impl QuantizedCell {
    /// Rebuilds a cell from deserialized parts (shape pre-validated by
    /// the decoder).
    pub(crate) fn from_parts(
        input: usize,
        hidden: usize,
        wx: QuantizedDense,
        wh: QuantizedDense,
    ) -> Self {
        QuantizedCell { input, hidden, wx, wh }
    }

    /// Feature width consumed per timestep.
    pub(crate) fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden-state width produced per timestep.
    pub(crate) fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Input-to-gate weights.
    pub(crate) fn wx(&self) -> &QuantizedDense {
        &self.wx
    }

    /// Recurrent gate weights.
    pub(crate) fn wh(&self) -> &QuantizedDense {
        &self.wh
    }
}

/// An [`LstmClassifier`] with int8 gate weights. The head stays f32 — it
/// is a few dozen floats and the final argmax is most sensitive to it.
#[derive(Debug, Clone)]
pub struct QuantizedLstm {
    pub(crate) cells: Vec<QuantizedCell>,
    pub(crate) head_w: Matrix,
    pub(crate) head_b: Vec<f32>,
}

impl QuantizedLstm {
    /// Quantizes every cell's gate weights of `m`.
    pub fn quantize(m: &LstmClassifier) -> Self {
        let cells = m
            .cells()
            .iter()
            .map(|c| {
                let (wx, wh, b) = c.raw_parts();
                QuantizedCell {
                    input: c.input_size(),
                    hidden: c.hidden_size(),
                    wx: QuantizedDense::quantize(wx, b),
                    // The bias is seeded once before both GEMMs; keep it on
                    // the wx side and zero here.
                    wh: QuantizedDense::quantize(wh, &vec![0.0; wh.cols()]),
                }
            })
            .collect();
        let (head_w, head_b) = m.head();
        QuantizedLstm { cells, head_w: head_w.clone(), head_b: head_b.to_vec() }
    }

    /// Rebuilds from deserialized parts, validating the layer chain.
    pub(crate) fn from_parts(cells: Vec<QuantizedCell>, head_w: Matrix, head_b: Vec<f32>) -> Self {
        assert!(!cells.is_empty(), "quant lstm needs at least one cell");
        for c in &cells {
            assert_eq!(c.wx.k, c.input, "quant cell wx rows");
            assert_eq!(c.wx.n, 4 * c.hidden, "quant cell wx cols");
            assert_eq!(c.wh.k, c.hidden, "quant cell wh rows");
            assert_eq!(c.wh.n, 4 * c.hidden, "quant cell wh cols");
        }
        for pair in cells.windows(2) {
            assert_eq!(pair[0].hidden, pair[1].input, "quant lstm cell chain");
        }
        let top = cells.last().expect("non-empty").hidden;
        assert_eq!(head_w.rows(), top, "quant lstm head rows");
        assert_eq!(head_w.cols(), head_b.len(), "quant lstm head cols");
        QuantizedLstm { cells, head_w, head_b }
    }

    /// Feature width expected per timestep.
    pub fn input_size(&self) -> usize {
        self.cells[0].input
    }

    /// Quantized cells (for serialization).
    pub(crate) fn quant_cells(&self) -> &[QuantizedCell] {
        &self.cells
    }

    /// F32 head weights and bias (for serialization).
    pub(crate) fn head(&self) -> (&Matrix, &[f32]) {
        (&self.head_w, &self.head_b)
    }

    /// Output classes.
    pub fn num_classes(&self) -> usize {
        self.head_b.len()
    }

    /// FLOPs for one timestep across all cells (same multiply-add count as
    /// the f32 original).
    pub fn flops_per_step(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| 2.0 * (c.input as f64 + c.hidden as f64) * (4 * c.hidden) as f64)
            .sum()
    }

    /// Bytes of weight payload (i8 gates + f32 scales/biases/head).
    pub fn weight_bytes(&self) -> usize {
        let cells: usize = self
            .cells
            .iter()
            .map(|c| {
                c.wx.w.len()
                    + c.wh.w.len()
                    + 4 * (c.wx.scale.len() + c.wh.scale.len() + c.wx.b.len())
            })
            .sum();
        cells + 4 * (self.head_w.data().len() + self.head_b.len())
    }

    /// Class for one sequence (convenience; packs per call). Last maximal
    /// index wins ties, matching `LstmClassifier::classify`.
    pub fn classify(&self, seq: &[Vec<f32>]) -> usize {
        let steps = seq.len();
        assert!(steps > 0, "empty sequence");
        let feat = self.input_size();
        let mut flat = Vec::with_capacity(steps * feat);
        for step in seq {
            assert_eq!(step.len(), feat, "lstm feature width mismatch");
            flat.extend_from_slice(step);
        }
        PackedQuantLstm::pack(self).classify_with(
            &flat,
            1,
            steps * feat,
            steps,
            None,
            Kernel::from_env(),
        )[0]
    }

    /// Fraction of sequences classified as their label (mirrors
    /// `LstmClassifier::accuracy`).
    pub fn accuracy(&self, data: &[(Vec<Vec<f32>>, usize)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let packed = PackedQuantLstm::pack(self);
        let kernel = Kernel::from_env();
        let correct = data
            .iter()
            .filter(|(seq, label)| {
                let steps = seq.len();
                let feat = self.input_size();
                let mut flat = Vec::with_capacity(steps * feat);
                for step in seq {
                    flat.extend_from_slice(step);
                }
                packed.classify_with(&flat, 1, steps * feat, steps, None, kernel)[0] == *label
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

// ---------------------------------------------------------------------------
// Packed form + int8 microkernels
// ---------------------------------------------------------------------------

/// Packed-lane granularity for i16 data: 32 lanes = one 64-byte line.
const QPACK_LANE: usize = 32;

/// Int8 weights widened to i16 and packed for `vpmaddwd`: packed row `p`
/// interleaves reduction-pair `(2p, 2p+1)` across all `n` columns, rows
/// padded to a 64-byte stride and based at a 64-byte-aligned offset, odd-k
/// tails zero-padded.
#[derive(Debug)]
pub struct PackedQuantMatrix {
    k: usize,
    n: usize,
    /// Number of packed pair-rows, `ceil(k / 2)`.
    kp: usize,
    /// Padded length of one packed row in i16 elements.
    stride: usize,
    base: usize,
    data: Vec<i16>,
}

impl PackedQuantMatrix {
    /// Packs row-major `k × n` i8 weights.
    pub fn pack(w: &[i8], k: usize, n: usize) -> Self {
        assert_eq!(w.len(), k * n, "quant pack shape mismatch");
        let kp = k.div_ceil(2);
        let stride = (2 * n).div_ceil(QPACK_LANE) * QPACK_LANE;
        let mut data = vec![0i16; kp * stride + QPACK_LANE - 1];
        let addr = data.as_ptr() as usize;
        let base = (addr.next_multiple_of(64) - addr) / std::mem::size_of::<i16>();
        debug_assert!(base < QPACK_LANE, "alignment slack exceeded");
        for p in 0..kp {
            let row = &mut data[base + p * stride..base + p * stride + 2 * n];
            for j in 0..n {
                row[2 * j] = w[(2 * p) * n + j] as i16;
                if 2 * p + 1 < k {
                    row[2 * j + 1] = w[(2 * p + 1) * n + j] as i16;
                }
            }
        }
        let pm = PackedQuantMatrix { k, n, kp, stride, base, data };
        debug_assert!(pm.base_aligned(), "quant packed base must be 64-byte aligned");
        pm
    }

    /// Reduction dimension (original rows).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension (original columns).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the packed base and stride are 64-byte aligned (see
    /// `PackedMatrix::base_aligned`).
    pub fn base_aligned(&self) -> bool {
        let base_ptr = self.data[self.base..].as_ptr() as usize;
        base_ptr.is_multiple_of(64) && (self.stride * std::mem::size_of::<i16>()).is_multiple_of(64)
    }

    /// Packed pair-row `p` (length `2 * n`, interleaved).
    #[inline]
    fn row(&self, p: usize) -> &[i16] {
        let start = self.base + p * self.stride;
        &self.data[start..start + 2 * self.n]
    }
}

/// Chunk size for the branchless nonzero pair-word compaction (mirrors
/// the f32 kernels' `TILE_KC` scan).
const QSCAN: usize = 256;

/// `acc[j] += Σ_p (x[2p]·w[2p][j] + x[2p+1]·w[2p+1][j])` in exact i32.
///
/// `pairs` holds the quantized activation pair words from
/// [`quantize_acts`]; `acc` must span all `n` columns. Integer addition is
/// associative, so every kernel produces identical accumulators — the
/// kernels differ only in throughput.
///
/// The zero-pair skip is hoisted: a branchless scan compacts the nonzero
/// `(pair index, pair word)` entries and the kernels walk the compacted
/// list with no data-dependent branch — ReLU inputs leave ~25% of pair
/// words zero in a random pattern, which otherwise mispredicts the hot
/// loop (same pathology the f32 `accumulate` scan removes).
fn qaccumulate(kernel: Kernel, pairs: &[u32], pqm: &PackedQuantMatrix, acc: &mut [i32]) {
    debug_assert_eq!(pairs.len(), pqm.kp, "pair count mismatch");
    debug_assert_eq!(acc.len(), pqm.n, "acc width mismatch");
    let mut idx = [0u32; QSCAN];
    let mut val = [0u32; QSCAN];
    for (c, chunk) in pairs.chunks(QSCAN).enumerate() {
        let first = c * QSCAN;
        let mut nz = 0usize;
        for (p, &pw) in chunk.iter().enumerate() {
            idx[nz] = (first + p) as u32;
            val[nz] = pw;
            nz += usize::from(pw != 0);
        }
        if nz == 0 {
            continue;
        }
        let (idx, val) = (&idx[..nz], &val[..nz]);
        match kernel {
            Kernel::Scalar => qaccumulate_scalar(idx, val, pqm, acc),
            // SAFETY: as in the f32 dispatch — kernels are clamped to
            // detected CPU features at every public entry.
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse => unsafe { qaccumulate_sse(idx, val, pqm, acc) },
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => unsafe { qaccumulate_avx2(idx, val, pqm, acc) },
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Sse | Kernel::Avx2 => qaccumulate_scalar(idx, val, pqm, acc),
        }
    }
}

fn qaccumulate_scalar(idx: &[u32], val: &[u32], pqm: &PackedQuantMatrix, acc: &mut [i32]) {
    for (&p, &pw) in idx.iter().zip(val) {
        let x0 = (pw & 0xFFFF) as u16 as i16 as i32;
        let x1 = (pw >> 16) as u16 as i16 as i32;
        let row = pqm.row(p as usize);
        for (j, a) in acc.iter_mut().enumerate() {
            *a += x0 * row[2 * j] as i32 + x1 * row[2 * j + 1] as i32;
        }
    }
}

/// AVX2 int8 kernel: one `vpmaddwd` covers 8 columns × 2 reduction steps;
/// 32-column register block keeps 4 ymm i32 accumulators resident.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qaccumulate_avx2(idx: &[u32], val: &[u32], pqm: &PackedQuantMatrix, acc: &mut [i32]) {
    use std::arch::x86_64::*;
    let n = pqm.n;
    let ap = acc.as_mut_ptr();
    let stride = pqm.stride;
    let bbase = pqm.data.as_ptr().add(pqm.base);
    let mut j = 0;
    while j + 32 <= n {
        let mut acc0 = _mm256_loadu_si256(ap.add(j) as *const __m256i);
        let mut acc1 = _mm256_loadu_si256(ap.add(j + 8) as *const __m256i);
        let mut acc2 = _mm256_loadu_si256(ap.add(j + 16) as *const __m256i);
        let mut acc3 = _mm256_loadu_si256(ap.add(j + 24) as *const __m256i);
        for (&p, &pw) in idx.iter().zip(val) {
            let bp = bbase.add(p as usize * stride + 2 * j);
            let vx = _mm256_set1_epi32(pw as i32);
            acc0 = _mm256_add_epi32(
                acc0,
                _mm256_madd_epi16(_mm256_loadu_si256(bp as *const __m256i), vx),
            );
            acc1 = _mm256_add_epi32(
                acc1,
                _mm256_madd_epi16(_mm256_loadu_si256(bp.add(16) as *const __m256i), vx),
            );
            acc2 = _mm256_add_epi32(
                acc2,
                _mm256_madd_epi16(_mm256_loadu_si256(bp.add(32) as *const __m256i), vx),
            );
            acc3 = _mm256_add_epi32(
                acc3,
                _mm256_madd_epi16(_mm256_loadu_si256(bp.add(48) as *const __m256i), vx),
            );
        }
        _mm256_storeu_si256(ap.add(j) as *mut __m256i, acc0);
        _mm256_storeu_si256(ap.add(j + 8) as *mut __m256i, acc1);
        _mm256_storeu_si256(ap.add(j + 16) as *mut __m256i, acc2);
        _mm256_storeu_si256(ap.add(j + 24) as *mut __m256i, acc3);
        j += 32;
    }
    while j + 8 <= n {
        let mut acc0 = _mm256_loadu_si256(ap.add(j) as *const __m256i);
        for (&p, &pw) in idx.iter().zip(val) {
            let bp = bbase.add(p as usize * stride + 2 * j);
            let vx = _mm256_set1_epi32(pw as i32);
            acc0 = _mm256_add_epi32(
                acc0,
                _mm256_madd_epi16(_mm256_loadu_si256(bp as *const __m256i), vx),
            );
        }
        _mm256_storeu_si256(ap.add(j) as *mut __m256i, acc0);
        j += 8;
    }
    if j < n {
        qaccumulate_tail(idx, val, pqm, j, &mut acc[j..]);
    }
}

/// SSE4.1 int8 kernel: `pmaddwd` over 128-bit lanes, 16-column block.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn qaccumulate_sse(idx: &[u32], val: &[u32], pqm: &PackedQuantMatrix, acc: &mut [i32]) {
    use std::arch::x86_64::*;
    let n = pqm.n;
    let ap = acc.as_mut_ptr();
    let stride = pqm.stride;
    let bbase = pqm.data.as_ptr().add(pqm.base);
    let mut j = 0;
    while j + 16 <= n {
        let mut acc0 = _mm_loadu_si128(ap.add(j) as *const __m128i);
        let mut acc1 = _mm_loadu_si128(ap.add(j + 4) as *const __m128i);
        let mut acc2 = _mm_loadu_si128(ap.add(j + 8) as *const __m128i);
        let mut acc3 = _mm_loadu_si128(ap.add(j + 12) as *const __m128i);
        for (&p, &pw) in idx.iter().zip(val) {
            let bp = bbase.add(p as usize * stride + 2 * j);
            let vx = _mm_set1_epi32(pw as i32);
            acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(_mm_loadu_si128(bp as *const __m128i), vx));
            acc1 = _mm_add_epi32(
                acc1,
                _mm_madd_epi16(_mm_loadu_si128(bp.add(8) as *const __m128i), vx),
            );
            acc2 = _mm_add_epi32(
                acc2,
                _mm_madd_epi16(_mm_loadu_si128(bp.add(16) as *const __m128i), vx),
            );
            acc3 = _mm_add_epi32(
                acc3,
                _mm_madd_epi16(_mm_loadu_si128(bp.add(24) as *const __m128i), vx),
            );
        }
        _mm_storeu_si128(ap.add(j) as *mut __m128i, acc0);
        _mm_storeu_si128(ap.add(j + 4) as *mut __m128i, acc1);
        _mm_storeu_si128(ap.add(j + 8) as *mut __m128i, acc2);
        _mm_storeu_si128(ap.add(j + 12) as *mut __m128i, acc3);
        j += 16;
    }
    while j + 4 <= n {
        let mut acc0 = _mm_loadu_si128(ap.add(j) as *const __m128i);
        for (&p, &pw) in idx.iter().zip(val) {
            let bp = bbase.add(p as usize * stride + 2 * j);
            acc0 = _mm_add_epi32(
                acc0,
                _mm_madd_epi16(_mm_loadu_si128(bp as *const __m128i), _mm_set1_epi32(pw as i32)),
            );
        }
        _mm_storeu_si128(ap.add(j) as *mut __m128i, acc0);
        j += 4;
    }
    if j < n {
        qaccumulate_tail(idx, val, pqm, j, &mut acc[j..]);
    }
}

/// Scalar tail over columns `j0..` shared by the SIMD kernels.
fn qaccumulate_tail(idx: &[u32], val: &[u32], pqm: &PackedQuantMatrix, j0: usize, acc: &mut [i32]) {
    for (&p, &pw) in idx.iter().zip(val) {
        let x0 = (pw & 0xFFFF) as u16 as i16 as i32;
        let x1 = (pw >> 16) as u16 as i16 as i32;
        let row = pqm.row(p as usize);
        for (j, a) in acc.iter_mut().enumerate() {
            let c = j0 + j;
            *a += x0 * row[2 * c] as i32 + x1 * row[2 * c + 1] as i32;
        }
    }
}

/// One packed quantized layer.
#[derive(Debug)]
struct PackedQuantLayer {
    w: PackedQuantMatrix,
    scale: Vec<f32>,
    b: Vec<f32>,
}

/// A [`QuantizedMlp`] in packed inference form.
#[derive(Debug)]
pub struct PackedQuantMlp {
    layers: Vec<PackedQuantLayer>,
    hidden_activation: Activation,
}

impl PackedQuantMlp {
    /// Packs all layers of `m`.
    pub fn pack(m: &QuantizedMlp) -> Self {
        let layers = m
            .layers
            .iter()
            .map(|l| PackedQuantLayer {
                w: PackedQuantMatrix::pack(&l.w, l.k, l.n),
                scale: l.scale.clone(),
                b: l.b.clone(),
            })
            .collect();
        PackedQuantMlp { layers, hidden_activation: m.hidden_activation }
    }

    /// Input width expected by the first layer.
    pub fn input_size(&self) -> usize {
        self.layers[0].w.k
    }

    /// Logits for a row range; scratch buffers are reused across rows.
    fn forward_rows(
        &self,
        kernel: Kernel,
        data: &[f32],
        cols: usize,
        rows: Range<usize>,
        out: &mut [f32],
    ) {
        let classes = self.layers.last().expect("non-empty mlp").w.n;
        let max_width = self.layers.iter().map(|l| l.w.k.max(l.w.n)).max().expect("non-empty");
        let mut pairs = vec![0u32; max_width.div_ceil(2)];
        let mut acc = vec![0i32; max_width];
        let mut cur = vec![0.0f32; max_width];
        let mut next = vec![0.0f32; max_width];
        let n_layers = self.layers.len();
        for (li, i) in rows.enumerate() {
            cur[..cols].copy_from_slice(&data[i * cols..(i + 1) * cols]);
            let mut width = cols;
            for (l, layer) in self.layers.iter().enumerate() {
                let n = layer.w.n;
                let kp = layer.w.kp;
                // Dynamic per-row activation scale + int8 GEMM in exact
                // i32, then the shared scalar dequantization epilogue.
                let sa = quantize_acts(kernel, &cur[..width], &mut pairs[..kp]);
                acc[..n].fill(0);
                qaccumulate(kernel, &pairs[..kp], &layer.w, &mut acc[..n]);
                let last = l + 1 == n_layers;
                let dst =
                    if last { &mut out[li * classes..(li + 1) * classes] } else { &mut next[..n] };
                // Slice zips keep the dequantization epilogue free of
                // bounds checks so it autovectorizes.
                for ((d, &a), (&s, &b)) in
                    dst.iter_mut().zip(&acc[..n]).zip(layer.scale.iter().zip(&layer.b))
                {
                    let v = a as f32 * (sa * s) + b;
                    *d = if last { v } else { apply_act(self.hidden_activation, v) };
                }
                if !last {
                    std::mem::swap(&mut cur, &mut next);
                    width = n;
                }
            }
        }
    }

    /// Batch logits, partitioned across `pool`.
    pub fn forward_with(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
        pool: Option<&WorkerPool>,
        kernel: Kernel,
    ) -> Matrix {
        let kernel = kernel.clamped();
        assert_eq!(cols, self.input_size(), "quant mlp input width mismatch");
        assert!(data.len() >= rows * cols, "quant mlp batch buffer too short");
        let classes = self.layers.last().expect("non-empty mlp").w.n;
        let mut out = Matrix::zeros(rows.max(1), classes);
        if rows == 0 {
            return out;
        }
        run_partitioned(pool, rows, classes, out.data_mut(), |range, chunk| {
            // `forward_rows` indexes `out` by the *local* row offset.
            let local = 0..range.len();
            let start = range.start;
            self.forward_rows_local(kernel, data, cols, start, local, chunk);
        });
        out
    }

    /// Adapter: `forward_rows` writes at `li * classes` for local index
    /// `li`; map a global range onto a worker's chunk.
    fn forward_rows_local(
        &self,
        kernel: Kernel,
        data: &[f32],
        cols: usize,
        start: usize,
        local: Range<usize>,
        out: &mut [f32],
    ) {
        self.forward_rows(kernel, data, cols, start + local.start..start + local.end, out);
    }

    /// Argmax classes for a batch; first maximal index wins ties (matches
    /// `Mlp::classify`).
    pub fn classify_with(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
        pool: Option<&WorkerPool>,
        kernel: Kernel,
    ) -> Vec<usize> {
        let logits = self.forward_with(data, rows, cols, pool, kernel);
        if rows == 0 {
            return Vec::new();
        }
        logits.argmax_rows()
    }
}

/// One packed quantized LSTM cell.
#[derive(Debug)]
struct PackedQuantCell {
    input: usize,
    hidden: usize,
    wx: PackedQuantMatrix,
    wx_scale: Vec<f32>,
    wh: PackedQuantMatrix,
    wh_scale: Vec<f32>,
    b: Vec<f32>,
}

/// A [`QuantizedLstm`] in packed inference form (f32 head).
#[derive(Debug)]
pub struct PackedQuantLstm {
    cells: Vec<PackedQuantCell>,
    head_w: PackedMatrix,
    head_b: Vec<f32>,
}

impl PackedQuantLstm {
    /// Packs all cells and the f32 head of `m`.
    pub fn pack(m: &QuantizedLstm) -> Self {
        let cells = m
            .cells
            .iter()
            .map(|c| PackedQuantCell {
                input: c.input,
                hidden: c.hidden,
                wx: PackedQuantMatrix::pack(&c.wx.w, c.wx.k, c.wx.n),
                wx_scale: c.wx.scale.clone(),
                wh: PackedQuantMatrix::pack(&c.wh.w, c.wh.k, c.wh.n),
                wh_scale: c.wh.scale.clone(),
                b: c.wx.b.clone(),
            })
            .collect();
        PackedQuantLstm { cells, head_w: PackedMatrix::pack(&m.head_w), head_b: m.head_b.clone() }
    }

    /// Feature width expected per timestep.
    pub fn input_size(&self) -> usize {
        self.cells[0].input
    }

    /// Classes for a row range, one row at a time (the quantized gate GEMM
    /// re-quantizes `x` and `h` per timestep, so there is no batched
    /// weight-streaming variant to amortize).
    fn classify_rows(
        &self,
        kernel: Kernel,
        data: &[f32],
        cols: usize,
        steps: usize,
        rows: Range<usize>,
        out: &mut [usize],
    ) {
        let feat = cols / steps;
        let top_hidden = self.cells.last().expect("non-empty lstm").hidden;
        let max_hidden = self.cells.iter().map(|c| c.hidden).max().expect("non-empty lstm");
        let max_width = feat.max(max_hidden);
        let mut cur = vec![0.0f32; steps * max_width];
        let mut next = vec![0.0f32; steps * max_width];
        let mut h = vec![0.0f32; max_hidden];
        let mut c = vec![0.0f32; max_hidden];
        let mut z = vec![0.0f32; 4 * max_hidden];
        let mut pairs = vec![0u32; max_width.div_ceil(2)];
        let mut accx = vec![0i32; 4 * max_hidden];
        let mut acch = vec![0i32; 4 * max_hidden];
        let mut logits = vec![0.0f32; self.head_b.len()];
        for (slot, i) in out.iter_mut().zip(rows) {
            cur[..cols].copy_from_slice(&data[i * cols..(i + 1) * cols]);
            let mut width = feat;
            for cell in &self.cells {
                let hd = cell.hidden;
                let zw = 4 * hd;
                h[..hd].fill(0.0);
                c[..hd].fill(0.0);
                for t in 0..steps {
                    let z = &mut z[..zw];
                    // x contribution: quantize the timestep input, int8
                    // GEMM in exact i32 with the dynamic x scale.
                    let kp = cell.wx.kp;
                    let sa =
                        quantize_acts(kernel, &cur[t * width..(t + 1) * width], &mut pairs[..kp]);
                    accx[..zw].fill(0);
                    qaccumulate(kernel, &pairs[..kp], &cell.wx, &mut accx[..zw]);
                    // h contribution: same, with the recurrent state's own
                    // dynamic scale (h is re-quantized every step).
                    let kp = cell.wh.kp;
                    let sh = quantize_acts(kernel, &h[..hd], &mut pairs[..kp]);
                    acch[..zw].fill(0);
                    qaccumulate(kernel, &pairs[..kp], &cell.wh, &mut acch[..zw]);
                    // Fused dequantization: one pass builds the gate
                    // pre-activations, in the same float op order as the
                    // separate bias + x + h passes it replaced (slice zips
                    // keep it branch- and bounds-check-free).
                    for ((((zj, &b), &ax), &ah), (&sxj, &shj)) in z
                        .iter_mut()
                        .zip(&cell.b)
                        .zip(&accx[..zw])
                        .zip(&acch[..zw])
                        .zip(cell.wx_scale.iter().zip(&cell.wh_scale))
                    {
                        *zj = b + ax as f32 * (sa * sxj) + ah as f32 * (sh * shj);
                    }
                    lstm_gate_epilogue(kernel, z, &mut h[..hd], &mut c[..hd]);
                    next[t * hd..(t + 1) * hd].copy_from_slice(&h[..hd]);
                }
                std::mem::swap(&mut cur, &mut next);
                width = hd;
            }
            *slot = head_argmax(
                &self.head_w,
                &self.head_b,
                &cur[(steps - 1) * top_hidden..steps * top_hidden],
                &mut logits,
            );
        }
    }

    /// Argmax classes for a batch of flattened sequences; last maximal
    /// index wins ties (matches `LstmClassifier::classify`).
    pub fn classify_with(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
        steps: usize,
        pool: Option<&WorkerPool>,
        kernel: Kernel,
    ) -> Vec<usize> {
        let kernel = kernel.clamped();
        assert!(steps > 0 && cols.is_multiple_of(steps), "bad sequence shape");
        assert_eq!(cols / steps, self.input_size(), "quant lstm feature width mismatch");
        assert!(data.len() >= rows * cols, "quant lstm batch buffer too short");
        let mut out = vec![0usize; rows];
        if rows == 0 {
            return out;
        }
        let parallel = match pool {
            Some(p) if p.workers() > 1 && rows >= DEFAULT_POOL_MIN_ROWS => Some(p),
            _ => None,
        };
        match parallel {
            None => self.classify_rows(kernel, data, cols, steps, 0..rows, &mut out),
            Some(pool) => {
                let ranges = partition(rows, pool.workers());
                let per = ranges[0].len();
                let chunks: Vec<Mutex<(Range<usize>, &mut [usize])>> = out
                    .chunks_mut(per)
                    .zip(ranges)
                    .map(|(chunk, range)| Mutex::new((range, chunk)))
                    .collect();
                let job = |w: usize| {
                    if let Some(chunk_slot) = chunks.get(w) {
                        let mut guard = chunk_slot.lock().expect("gemm chunk poisoned");
                        let (range, chunk) = &mut *guard;
                        self.classify_rows(kernel, data, cols, steps, range.clone(), chunk);
                    }
                };
                pool.run(&job);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0f32)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Worst-case dequantization error for one output column `j`:
    /// `|x·w − q_x s_a · q_w s_j| ≤ Σ_k (|x_k| s_j/2 + (|w_kj| + s_j/2) s_a/2)`
    /// from the two rounding half-steps, plus a small float slack for the
    /// f32 epilogue.
    fn column_error_bound(x: &[f32], w: &Matrix, j: usize, sa: f32, sj: f32) -> f32 {
        let mut bound = 0.0f64;
        for (k, &xv) in x.iter().enumerate() {
            let wv = w.data()[k * w.cols() + j].abs() as f64;
            bound += xv.abs() as f64 * sj as f64 / 2.0 + (wv + sj as f64 / 2.0) * sa as f64 / 2.0;
        }
        (bound * 1.001 + 1e-5) as f32
    }

    #[test]
    fn quant_dense_stays_within_scale_error_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(k, n) in &[(1, 1), (7, 5), (31, 33), (256, 40)] {
            let w = rand_matrix(&mut rng, k, n);
            let b = vec![0.0f32; n];
            let m = Mlp::from_parameters(vec![(w.clone(), b)], Activation::Relu);
            let q = QuantizedMlp::quantize(&m);
            let x = rand_matrix(&mut rng, 1, k);
            let amax = x.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let sa = if amax == 0.0 { 1.0 } else { amax / 127.0 };
            let qout = PackedQuantMlp::pack(&q).forward_with(x.data(), 1, k, None, Kernel::Scalar);
            let fout = m.forward(&x);
            for j in 0..n {
                let bound = column_error_bound(x.data(), &w, j, sa, q.layers[0].scale[j]);
                let err = (qout.data()[j] - fout.data()[j]).abs();
                assert!(err <= bound, "({k},{n}) col {j}: err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn quant_kernels_agree_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = Mlp::new(&[37, 61, 5], Activation::Relu, &mut rng);
        let q = QuantizedMlp::quantize(&m);
        let packed = PackedQuantMlp::pack(&q);
        let x = rand_matrix(&mut rng, 19, 37);
        let want = packed.forward_with(x.data(), 19, 37, None, Kernel::Scalar);
        for kernel in [Kernel::Sse, Kernel::Avx2] {
            if !kernel.available() {
                continue;
            }
            let got = packed.forward_with(x.data(), 19, 37, None, kernel);
            for (a, b) in want.data().iter().zip(got.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", kernel.name());
            }
        }
    }

    #[test]
    fn quantize_acts_kernels_agree_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(21);
        // Lengths straddling every SIMD block boundary, including odd
        // tails (zero-padded hi half) and ties-to-even rounding cases.
        for &len in &[1usize, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 100, 257] {
            let x: Vec<f32> = (0..len).map(|_| rng.gen_range(-3.0..3.0f32)).collect();
            let mut want = vec![0u32; len.div_ceil(2)];
            let sa = quantize_acts(Kernel::Scalar, &x, &mut want);
            for kernel in [Kernel::Sse, Kernel::Avx2] {
                if !kernel.available() {
                    continue;
                }
                let mut got = vec![0u32; len.div_ceil(2)];
                let sg = quantize_acts(kernel, &x, &mut got);
                assert_eq!(sa.to_bits(), sg.to_bits(), "{} scale, len {len}", kernel.name());
                assert_eq!(want, got, "{} pair words, len {len}", kernel.name());
            }
        }
    }

    #[test]
    fn quant_lstm_kernels_agree_and_classify_sanely() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = LstmClassifier::new(6, 10, 2, 4, &mut rng);
        let q = QuantizedLstm::quantize(&m);
        let packed = PackedQuantLstm::pack(&q);
        let (rows, steps, feat) = (9, 4, 6);
        let x = rand_matrix(&mut rng, rows, steps * feat);
        let want = packed.classify_with(x.data(), rows, steps * feat, steps, None, Kernel::Scalar);
        for kernel in [Kernel::Sse, Kernel::Avx2] {
            if !kernel.available() {
                continue;
            }
            assert_eq!(
                want,
                packed.classify_with(x.data(), rows, steps * feat, steps, None, kernel),
                "{}",
                kernel.name()
            );
        }
        // Pooled partitioning returns the same classes.
        let pool = WorkerPool::new(3);
        assert_eq!(
            want,
            packed.classify_with(x.data(), rows, steps * feat, steps, Some(&pool), Kernel::Scalar)
        );
    }

    #[test]
    fn quant_pack_is_interleaved_aligned_and_zero_padded() {
        let w: Vec<i8> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9]; // 3×3
        let pm = PackedQuantMatrix::pack(&w, 3, 3);
        assert_eq!(pm.k(), 3);
        assert_eq!(pm.n(), 3);
        assert!(pm.base_aligned());
        // Pair-row 0 interleaves original rows 0 and 1.
        assert_eq!(&pm.row(0)[..6], &[1, 4, 2, 5, 3, 6]);
        // Pair-row 1 holds row 2 with a zero-padded partner.
        assert_eq!(&pm.row(1)[..6], &[7, 0, 8, 0, 9, 0]);
    }

    #[test]
    fn quantized_mlp_classifies_close_to_oracle() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Mlp::new(&[16, 32, 4], Activation::Relu, &mut rng);
        let q = QuantizedMlp::quantize(&m);
        let x = rand_matrix(&mut rng, 200, 16);
        let f = m.classify(&x);
        let qy = q.classify(&x);
        let agree = f.iter().zip(&qy).filter(|(a, b)| a == b).count();
        // Untrained random nets have near-arbitrary decision boundaries —
        // even there the formats should agree on the vast majority of rows.
        assert!(agree >= 190, "only {agree}/200 rows agree");
        assert_eq!(q.flops_per_input(), m.flops_per_input());
        assert_eq!(q.input_size(), 16);
        assert_eq!(q.num_classes(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Int8 kernel-dispatch equivalence: every available kernel
        /// produces identical i32 accumulators and therefore identical f32
        /// outputs after the shared scalar epilogue.
        #[test]
        fn quant_kernels_bit_identical(
            (k, n) in (1usize..64, 1usize..72),
            rows in 1usize..8,
            seed in 0u64..u64::MAX,
            x_data in proptest::collection::vec(-8.0f32..8.0, 8 * 64),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = Mlp::new(&[k, n], Activation::Relu, &mut rng);
            let q = QuantizedMlp::quantize(&m);
            let packed = PackedQuantMlp::pack(&q);
            let data = &x_data[..rows * k];
            let want = packed.forward_with(data, rows, k, None, Kernel::Scalar);
            for kernel in [Kernel::Sse, Kernel::Avx2] {
                if !kernel.available() {
                    continue;
                }
                let got = packed.forward_with(data, rows, k, None, kernel);
                for (a, b) in want.data().iter().zip(got.data()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        /// Dequantized outputs stay within the analytic per-row scale
        /// error bound of the f32 oracle for a single linear layer.
        #[test]
        fn quant_outputs_within_error_bound(
            (k, n) in (1usize..48, 1usize..40),
            seed in 0u64..u64::MAX,
            x_data in proptest::collection::vec(-4.0f32..4.0, 48),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = Mlp::new(&[k, n], Activation::Relu, &mut rng);
            let q = QuantizedMlp::quantize(&m);
            let x = Matrix::from_vec(1, k, x_data[..k].to_vec());
            let amax = x.data().iter().fold(0.0f32, |mx, v| mx.max(v.abs()));
            let sa = if amax == 0.0 { 1.0 } else { amax / 127.0 };
            let qout = PackedQuantMlp::pack(&q).forward_with(x.data(), 1, k, None, Kernel::Scalar);
            let fout = m.forward(&x);
            let (w, _) = (m.parameters()[0].0, ());
            for j in 0..n {
                let sj = q.layers[0].scale[j];
                let mut bound = 0.0f64;
                for (kk, &xv) in x.data().iter().enumerate() {
                    let wv = w.data()[kk * n + j].abs() as f64;
                    bound += xv.abs() as f64 * sj as f64 / 2.0
                        + (wv + sj as f64 / 2.0) * sa as f64 / 2.0;
                }
                let bound = (bound * 1.001 + 1e-5) as f32;
                let err = (qout.data()[j] - fout.data()[j]).abs();
                prop_assert!(err <= bound, "col {}: err {} > bound {}", j, err, bound);
            }
        }
    }
}
