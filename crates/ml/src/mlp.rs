//! Multi-layer perceptrons: LinnOS's latency predictor, MLLB's balancer,
//! KML's readahead classifier.
//!
//! The LinnOS network is tiny by design ("two layers with 256 and 2
//! neurons ... maintaining low CPU utilization and low inference latency is
//! the primary purpose of using such a simple model" — §7.1). The paper
//! also evaluates `+1`/`+2` variants with extra 256-wide hidden layers;
//! [`Mlp::widen`] builds those.

use rand::Rng;

use crate::tensor::Matrix;

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// 1/(1+e^-x)
    Sigmoid,
    /// tanh(x)
    Tanh,
}

impl Activation {
    fn apply(self, m: &mut Matrix) {
        match self {
            Activation::Relu => m.map_inplace(|x| x.max(0.0)),
            Activation::Sigmoid => m.map_inplace(crate::fastmath::sigmoid),
            Activation::Tanh => m.map_inplace(crate::fastmath::tanh),
        }
    }

    /// Derivative expressed in terms of the *activated* output `a`.
    fn derivative_from_output(self, a: f32) -> f32 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Tanh => 1.0 - a * a,
        }
    }
}

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Step size.
    pub learning_rate: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { learning_rate: 0.01, weight_decay: 0.0 }
    }
}

#[derive(Debug, Clone)]
struct Dense {
    /// `in × out` weights.
    w: Matrix,
    /// `out` biases.
    b: Vec<f32>,
}

impl Dense {
    fn new(input: usize, output: usize, rng: &mut impl Rng) -> Self {
        // Xavier/Glorot uniform initialization.
        let limit = (6.0 / (input + output) as f32).sqrt();
        let data = (0..input * output).map(|_| rng.gen_range(-limit..limit)).collect();
        Dense { w: Matrix::from_vec(input, output, data), b: vec![0.0; output] }
    }
}

/// A feed-forward classifier with softmax + cross-entropy training.
///
/// The output layer is linear (logits); [`Mlp::classify`] takes the argmax,
/// [`Mlp::probabilities`] applies softmax.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    hidden_activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `&[31, 256, 2]` for
    /// the LinnOS model. All hidden layers share `hidden_activation`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], hidden_activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes.windows(2).map(|w| Dense::new(w[0], w[1], rng)).collect();
        Mlp { layers, hidden_activation }
    }

    /// Builds the paper's augmented variants: inserts `extra` additional
    /// hidden layers of the same width as the first hidden layer ("The
    /// added layers have the same number of neurons as the first one" —
    /// §7.1). `extra = 1` gives `NN+1`, `extra = 2` gives `NN+2`.
    pub fn widen(
        sizes: &[usize],
        extra: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let width = sizes[1];
        let mut full: Vec<usize> = Vec::new();
        full.push(sizes[0]);
        full.push(width);
        for _ in 0..extra {
            full.push(width);
        }
        full.extend_from_slice(&sizes[2..]);
        Mlp::new(&full, activation, rng)
    }

    /// Layer sizes, input first.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![self.layers[0].w.rows()];
        sizes.extend(self.layers.iter().map(|l| l.w.cols()));
        sizes
    }

    /// The hidden activation in use.
    pub fn hidden_activation(&self) -> Activation {
        self.hidden_activation
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.rows() * l.w.cols() + l.b.len()).sum()
    }

    /// FLOPs for one forward pass over a single input (multiply-add
    /// counted as 2 FLOPs) — drives both the CPU and GPU timing models.
    pub fn flops_per_input(&self) -> f64 {
        self.layers.iter().map(|l| 2.0 * l.w.rows() as f64 * l.w.cols() as f64).sum()
    }

    /// Forward pass producing logits; `x` is `batch × input`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` does not match the input size.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_trace(x).pop().expect("at least one layer output")
    }

    /// Forward pass retaining every layer's activated output (the trace
    /// needed for backprop). Element 0 is the first hidden activation; the
    /// last element is the logits.
    fn forward_trace(&self, x: &Matrix) -> Vec<Matrix> {
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = cur.matmul(&layer.w);
            z.add_row_bias(&layer.b);
            if i + 1 < self.layers.len() {
                self.hidden_activation.apply(&mut z);
            }
            outputs.push(z.clone());
            cur = z;
        }
        outputs
    }

    /// Softmax probabilities per row.
    pub fn probabilities(&self, x: &Matrix) -> Matrix {
        let mut logits = self.forward(x);
        softmax_rows(&mut logits);
        logits
    }

    /// Argmax class per row.
    pub fn classify(&self, x: &Matrix) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// One SGD step on a batch; returns the mean cross-entropy loss before
    /// the update.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()` or a label is out of range.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize], cfg: &SgdConfig) -> f32 {
        assert_eq!(labels.len(), x.rows(), "one label per input row");
        let n_classes = self.layers.last().expect("non-empty").w.cols();
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");

        let trace = self.forward_trace(x);
        let batch = x.rows() as f32;

        // Softmax + cross-entropy gradient at the logits: (p - onehot)/batch.
        let mut probs = trace.last().expect("logits").clone();
        softmax_rows(&mut probs);
        let mut loss = 0.0;
        for (r, &label) in labels.iter().enumerate() {
            loss -= probs.at(r, label).max(1e-12).ln();
        }
        loss /= batch;

        let mut delta = probs;
        for (r, &label) in labels.iter().enumerate() {
            let v = delta.at(r, label);
            delta.set(r, label, v - 1.0);
        }
        delta.scale_inplace(1.0 / batch);

        // Backpropagate layer by layer.
        for i in (0..self.layers.len()).rev() {
            let input: &Matrix = if i == 0 { x } else { &trace[i - 1] };
            let grad_w = input.transpose().matmul(&delta);
            let grad_b = delta.col_sums();

            if i > 0 {
                // Push delta through this layer's weights and the previous
                // layer's activation derivative.
                let mut prev_delta = delta.matmul(&self.layers[i].w.transpose());
                let act = self.hidden_activation;
                let prev_out = &trace[i - 1];
                for r in 0..prev_delta.rows() {
                    for c in 0..prev_delta.cols() {
                        let d = prev_delta.at(r, c) * act.derivative_from_output(prev_out.at(r, c));
                        prev_delta.set(r, c, d);
                    }
                }
                delta = prev_delta;
            }

            let layer = &mut self.layers[i];
            if cfg.weight_decay > 0.0 {
                let decayed = layer.w.clone();
                layer.w.saxpy_sub(cfg.learning_rate * cfg.weight_decay, &decayed);
            }
            layer.w.saxpy_sub(cfg.learning_rate, &grad_w);
            for (b, g) in layer.b.iter_mut().zip(&grad_b) {
                *b -= cfg.learning_rate * g;
            }
        }
        loss
    }

    /// Fraction of rows whose argmax matches the label.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        let preds = self.classify(x);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }

    /// Raw weights/biases per layer, for serialization and GPU upload.
    /// Returns `(weights, biases)` pairs, input-to-output order.
    pub fn parameters(&self) -> Vec<(&Matrix, &[f32])> {
        self.layers.iter().map(|l| (&l.w, l.b.as_slice())).collect()
    }

    /// Rebuilds a model from raw parameters (inverse of
    /// [`Mlp::parameters`]).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not chain (layer N's output ≠ layer N+1's
    /// input).
    pub fn from_parameters(params: Vec<(Matrix, Vec<f32>)>, hidden_activation: Activation) -> Self {
        assert!(!params.is_empty(), "need at least one layer");
        for w in params.windows(2) {
            assert_eq!(w[0].0.cols(), w[1].0.rows(), "layer shapes must chain");
        }
        let layers = params
            .into_iter()
            .map(|(w, b)| {
                assert_eq!(w.cols(), b.len(), "bias length must equal layer width");
                Dense { w, b }
            })
            .collect();
        Mlp { layers, hidden_activation }
    }
}

/// In-place row-wise softmax with max-subtraction for stability.
pub fn softmax_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> (Matrix, Vec<usize>) {
        let x =
            Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]]);
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = Mlp::new(&[2, 16, 2], Activation::Tanh, &mut rng);
        let (x, y) = xor_data();
        let cfg = SgdConfig { learning_rate: 0.5, weight_decay: 0.0 };
        let first_loss = m.train_batch(&x, &y, &cfg);
        for _ in 0..500 {
            m.train_batch(&x, &y, &cfg);
        }
        let final_loss = m.train_batch(&x, &y, &cfg);
        assert!(final_loss < first_loss / 5.0, "loss {first_loss} -> {final_loss}");
        assert_eq!(m.classify(&x), y);
        assert_eq!(m.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let x = Matrix::from_rows(&[vec![1.0, -1.0, 0.5, 2.0], vec![0.0; 4]]);
        let p = m.probabilities(&x);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn linnos_shapes_and_flops() {
        let mut rng = StdRng::seed_from_u64(1);
        // LinnOS base: 31 inputs -> 256 -> 2.
        let base = Mlp::new(&[31, 256, 2], Activation::Relu, &mut rng);
        assert_eq!(base.layer_sizes(), vec![31, 256, 2]);
        let expected_flops = 2.0 * (31.0 * 256.0 + 256.0 * 2.0);
        assert_eq!(base.flops_per_input(), expected_flops);

        // NN+1: [256, 256, 2]; NN+2: [256, 256, 256, 2].
        let plus1 = Mlp::widen(&[31, 256, 2], 1, Activation::Relu, &mut rng);
        assert_eq!(plus1.layer_sizes(), vec![31, 256, 256, 2]);
        let plus2 = Mlp::widen(&[31, 256, 2], 2, Activation::Relu, &mut rng);
        assert_eq!(plus2.layer_sizes(), vec![31, 256, 256, 256, 2]);
        assert!(plus2.flops_per_input() > plus1.flops_per_input());
    }

    #[test]
    fn parameters_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mlp::new(&[3, 5, 2], Activation::Sigmoid, &mut rng);
        let params: Vec<(Matrix, Vec<f32>)> =
            m.parameters().into_iter().map(|(w, b)| (w.clone(), b.to_vec())).collect();
        let rebuilt = Mlp::from_parameters(params, Activation::Sigmoid);
        let x = Matrix::from_rows(&[vec![0.3, -0.2, 0.9]]);
        assert_eq!(m.forward(&x).data(), rebuilt.forward(&x).data());
    }

    #[test]
    fn num_params_counts_weights_and_biases() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng);
        assert_eq!(m.num_params(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = Mlp::new(&[2, 4, 2], Activation::Relu, &mut rng);
        let norm_before: f32 =
            m.parameters().iter().map(|(w, _)| w.data().iter().map(|x| x * x).sum::<f32>()).sum();
        let (x, y) = xor_data();
        // With a small learning rate and strong decay, the decay term
        // dominates and the weight norm must shrink.
        let cfg = SgdConfig { learning_rate: 0.01, weight_decay: 5.0 };
        for _ in 0..50 {
            m.train_batch(&x, &y, &cfg);
        }
        let norm_after: f32 =
            m.parameters().iter().map(|(w, _)| w.data().iter().map(|x| x * x).sum::<f32>()).sum();
        assert!(norm_after < norm_before, "{norm_after} !< {norm_before}");
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Mlp::new(&[2, 4, 2], Activation::Relu, &mut rng);
        let (x, _) = xor_data();
        m.train_batch(&x, &[0, 1, 2, 0], &SgdConfig::default());
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let mut b = Matrix::from_rows(&[vec![101.0, 102.0, 103.0]]);
        softmax_rows(&mut a);
        softmax_rows(&mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
