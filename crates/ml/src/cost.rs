//! CPU inference cost model.
//!
//! The paper anchors CPU-side inference cost at "each inference on CPU
//! takes around 15µs" for the LinnOS 2-layer (31→256→2) model (§7.1). That
//! model does ≈ 16.9 kFLOPs per input, giving an effective scalar-kernel
//! throughput of ≈ 1.15 GFLOP/s, which we round to 1.2 GFLOP/s. All CPU
//! execution paths in the reproduction convert model FLOPs to virtual time
//! through this model.

use lake_sim::Duration;

/// Converts FLOPs into virtual CPU time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostModel {
    /// Effective throughput in FLOPs/second.
    pub flops_per_sec: f64,
    /// Fixed per-invocation overhead (function call, feature marshalling).
    pub invocation_overhead: Duration,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel { flops_per_sec: 1.2e9, invocation_overhead: Duration::from_nanos(500) }
    }
}

impl CpuCostModel {
    /// Time to execute `flops` of model math on the CPU.
    pub fn time_for_flops(&self, flops: f64) -> Duration {
        self.invocation_overhead + Duration::from_secs_f64(flops.max(0.0) / self.flops_per_sec)
    }

    /// Time to run a model with `flops_per_input` over a batch — CPU
    /// inference is sequential, so cost is linear in the batch size.
    pub fn batch_time(&self, flops_per_input: f64, batch: usize) -> Duration {
        self.invocation_overhead
            + Duration::from_secs_f64(flops_per_input * batch as f64 / self.flops_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linnos_anchor_is_about_15us() {
        let model = CpuCostModel::default();
        // LinnOS base model FLOPs: 2*(31*256 + 256*2)
        let flops = 2.0 * (31.0 * 256.0 + 256.0 * 2.0);
        let t = model.time_for_flops(flops);
        let us = t.as_micros_f64();
        assert!((13.0..17.0).contains(&us), "expected ~15us, got {us}");
    }

    #[test]
    fn batch_cost_is_linear() {
        let model = CpuCostModel::default();
        let one = model.batch_time(10_000.0, 1).as_nanos() as f64;
        let hundred = model.batch_time(10_000.0, 100).as_nanos() as f64;
        assert!(hundred / one > 50.0);
    }

    #[test]
    fn zero_flops_costs_only_overhead() {
        let model = CpuCostModel::default();
        assert_eq!(model.time_for_flops(0.0), model.invocation_overhead);
    }
}
