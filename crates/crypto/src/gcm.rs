//! AES-GCM authenticated encryption (NIST SP 800-38D), 96-bit nonces.

use crate::aes::Aes;
use crate::ghash::GHash;

/// Authentication failure on [`AesGcm::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenError;

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("gcm tag verification failed")
    }
}

impl std::error::Error for OpenError {}

/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

/// An AES-GCM cipher instance.
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes,
    h: [u8; 16],
}

impl AesGcm {
    /// Creates an AES-128-GCM cipher.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != 16`.
    pub fn new_128(key: &[u8]) -> Self {
        Self::from_aes(Aes::new_128(key))
    }

    /// Creates an AES-256-GCM cipher (what the modified eCryptfs uses).
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != 32`.
    pub fn new_256(key: &[u8]) -> Self {
        Self::from_aes(Aes::new_256(key))
    }

    fn from_aes(aes: Aes) -> Self {
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        AesGcm { aes, h }
    }

    fn j0(&self, nonce: &[u8; 12]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    fn ctr_xor(&self, j0: &[u8; 16], data: &mut [u8]) {
        let mut counter = u32::from_be_bytes(j0[12..16].try_into().expect("4 bytes"));
        for chunk in data.chunks_mut(16) {
            counter = counter.wrapping_add(1);
            let mut block = *j0;
            block[12..16].copy_from_slice(&counter.to_be_bytes());
            self.aes.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }

    fn tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        let mut g = GHash::new(self.h);
        g.update(aad);
        g.update(ciphertext);
        let mut s = g.finalize(aad.len(), ciphertext.len());
        let mut ek_j0 = *j0;
        self.aes.encrypt_block(&mut ek_j0);
        for (t, k) in s.iter_mut().zip(ek_j0.iter()) {
            *t ^= k;
        }
        s
    }

    /// Encrypts `plaintext` with `aad`; returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; 12], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let j0 = self.j0(nonce);
        let mut out = plaintext.to_vec();
        self.ctr_xor(&j0, &mut out);
        let tag = self.tag(&j0, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `ciphertext || tag` produced by [`AesGcm::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`OpenError`] if the input is too short or the tag does
    /// not verify.
    pub fn open(&self, nonce: &[u8; 12], sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>, OpenError> {
        if sealed.len() < TAG_LEN {
            return Err(OpenError);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let j0 = self.j0(nonce);
        let expected = self.tag(&j0, aad, ciphertext);
        // Constant-time-ish comparison (sums differences).
        let diff = expected.iter().zip(tag).fold(0u8, |acc, (a, b)| acc | (a ^ b));
        if diff != 0 {
            return Err(OpenError);
        }
        let mut out = ciphertext.to_vec();
        self.ctr_xor(&j0, &mut out);
        Ok(out)
    }

    /// Approximate FLOPs-equivalent per byte of GCM processing, for the
    /// GPU timing model (AES rounds + GHASH per 16-byte block).
    pub fn work_per_byte() -> f64 {
        800.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn nist_aes128_gcm_case1_empty() {
        let gcm = AesGcm::new_128(&[0u8; 16]);
        let sealed = gcm.seal(&[0u8; 12], b"", b"");
        assert_eq!(sealed, hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    #[test]
    fn nist_aes128_gcm_case2_one_block() {
        let gcm = AesGcm::new_128(&[0u8; 16]);
        let sealed = gcm.seal(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(sealed, hex("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"));
    }

    #[test]
    fn nist_aes128_gcm_case4_with_aad() {
        // GCM spec test case 4.
        let key = hex("feffe9928665731c6d6a8f9467308308");
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex("d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let gcm = AesGcm::new_128(&key);
        let sealed = gcm.seal(&nonce, &pt, &aad);
        let expected_ct = hex("42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091");
        let expected_tag = hex("5bc94fbc3221a5db94fae95ae7121a47");
        assert_eq!(&sealed[..pt.len()], &expected_ct[..]);
        assert_eq!(&sealed[pt.len()..], &expected_tag[..]);
        // And open round-trips.
        assert_eq!(gcm.open(&nonce, &sealed, &aad).unwrap(), pt);
    }

    #[test]
    fn nist_aes256_gcm_case13_empty() {
        let gcm = AesGcm::new_256(&[0u8; 32]);
        let sealed = gcm.seal(&[0u8; 12], b"", b"");
        assert_eq!(sealed, hex("530f8afbc74536b9a963b4f1c4cb738b"));
    }

    #[test]
    fn nist_aes256_gcm_case14_one_block() {
        let gcm = AesGcm::new_256(&[0u8; 32]);
        let sealed = gcm.seal(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(sealed, hex("cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919"));
    }

    #[test]
    fn tamper_detection() {
        let gcm = AesGcm::new_256(&[9u8; 32]);
        let nonce = [3u8; 12];
        let mut sealed = gcm.seal(&nonce, b"filesystem extent data", b"extent-0");
        // flip one ciphertext bit
        sealed[4] ^= 0x01;
        assert_eq!(gcm.open(&nonce, &sealed, b"extent-0"), Err(OpenError));
        // wrong aad
        sealed[4] ^= 0x01;
        assert_eq!(gcm.open(&nonce, &sealed, b"extent-1"), Err(OpenError));
        // wrong nonce
        assert_eq!(gcm.open(&[4u8; 12], &sealed, b"extent-0"), Err(OpenError));
        // intact opens fine
        assert_eq!(gcm.open(&nonce, &sealed, b"extent-0").unwrap(), b"filesystem extent data");
    }

    #[test]
    fn short_input_rejected() {
        let gcm = AesGcm::new_128(&[0u8; 16]);
        assert_eq!(gcm.open(&[0u8; 12], &[1, 2, 3], b""), Err(OpenError));
    }

    #[test]
    fn large_buffer_roundtrip() {
        let gcm = AesGcm::new_256(&[1u8; 32]);
        let nonce = [7u8; 12];
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let sealed = gcm.seal(&nonce, &data, b"");
        assert_eq!(sealed.len(), data.len() + TAG_LEN);
        assert_eq!(gcm.open(&nonce, &sealed, b"").unwrap(), data);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// seal/open round-trips for arbitrary payloads and AAD.
        #[test]
        fn roundtrip(
            key in proptest::collection::vec(any::<u8>(), 32),
            nonce in proptest::collection::vec(any::<u8>(), 12),
            data in proptest::collection::vec(any::<u8>(), 0..512),
            aad in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let gcm = AesGcm::new_256(&key);
            let nonce: [u8; 12] = nonce.try_into().unwrap();
            let sealed = gcm.seal(&nonce, &data, &aad);
            prop_assert_eq!(gcm.open(&nonce, &sealed, &aad).unwrap(), data);
        }

        /// Any single-byte corruption is detected.
        #[test]
        fn corruption_detected(
            data in proptest::collection::vec(any::<u8>(), 1..128),
            pos_seed: usize,
            bit in 0u8..8,
        ) {
            let gcm = AesGcm::new_128(&[5u8; 16]);
            let nonce = [1u8; 12];
            let mut sealed = gcm.seal(&nonce, &data, b"");
            let pos = pos_seed % sealed.len();
            sealed[pos] ^= 1 << bit;
            prop_assert_eq!(gcm.open(&nonce, &sealed, b""), Err(OpenError));
        }
    }
}
