//! Execution backends and their calibrated virtual-time costs (Fig 14).
//!
//! The paper compares eCryptfs doing AES-GCM on the scalar CPU kernel
//! crypto path, with AES-NI, and on a LAKE-backed GPU. The GPU path's
//! per-batch cost lives in the GPU model (`lake-gpu`); this module
//! provides the two CPU models plus the kernel work-factor used when the
//! GPU crypto kernel is registered.

use lake_sim::Duration;

/// Which crypto implementation serviced an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CryptoBackendKind {
    /// Scalar kernel software AES (the "CPU" series in Fig 14).
    ScalarCpu,
    /// AES-NI instruction path.
    AesNi,
    /// GPU via LAKE.
    LakeGpu,
    /// GPU and AES-NI concurrently splitting the data (Fig 14's
    /// "GPU+AES-NI" series).
    GpuPlusAesNi,
}

impl CryptoBackendKind {
    /// Display name matching the figure legend.
    pub fn name(self) -> &'static str {
        match self {
            CryptoBackendKind::ScalarCpu => "CPU",
            CryptoBackendKind::AesNi => "AES-NI",
            CryptoBackendKind::LakeGpu => "LAKE",
            CryptoBackendKind::GpuPlusAesNi => "GPU+AES-NI",
        }
    }
}

/// Virtual-time model of a CPU crypto implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCryptoModel {
    /// Sustained throughput, bytes/second.
    pub bytes_per_sec: f64,
    /// Fixed cost per operation (key setup amortized, call overhead).
    pub per_op_overhead: Duration,
}

impl CpuCryptoModel {
    /// Scalar kernel AES-GCM: the Fig 14 "CPU" series plateaus at about
    /// 142 MB/s read / 136 MB/s write, so the cipher itself sustains
    /// ≈ 150 MB/s.
    pub fn scalar() -> Self {
        CpuCryptoModel { bytes_per_sec: 150.0e6, per_op_overhead: Duration::from_micros(2) }
    }

    /// AES-NI: Fig 14 peaks around 670 MB/s read / 560 MB/s write, so the
    /// instruction path sustains ≈ 700 MB/s.
    pub fn aes_ni() -> Self {
        CpuCryptoModel { bytes_per_sec: 700.0e6, per_op_overhead: Duration::from_micros(2) }
    }

    /// Time to process `bytes`.
    pub fn time_for(&self, bytes: usize) -> Duration {
        self.per_op_overhead + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Throughput processing blocks of `block` bytes back-to-back.
    pub fn throughput_mb_s(&self, block: usize) -> f64 {
        block as f64 / self.time_for(block).as_secs_f64() / 1.0e6
    }
}

/// Per-16-byte-block work factor for the GPU AES-GCM kernel, chosen so a
/// fully-occupied A100-class device sustains ≈ 2.5 GB/s of GCM — fast
/// enough that big-block reads become disk-bound (the Fig 14 LAKE
/// plateau) while small blocks lose to AES-NI (the 16 KB / 128 KB
/// crossovers in Table 3).
pub fn gpu_flops_per_block() -> f64 {
    16.0 * 2.0e12 / 2.5e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_plateau_near_150_mb_s() {
        let m = CpuCryptoModel::scalar();
        let t = m.throughput_mb_s(2 << 20);
        assert!((140.0..160.0).contains(&t), "scalar throughput {t}");
    }

    #[test]
    fn aesni_plateau_near_700_mb_s() {
        let m = CpuCryptoModel::aes_ni();
        let t = m.throughput_mb_s(2 << 20);
        assert!((650.0..720.0).contains(&t), "aes-ni throughput {t}");
    }

    #[test]
    fn small_blocks_pay_fixed_overhead() {
        let m = CpuCryptoModel::aes_ni();
        let small = m.throughput_mb_s(4096);
        let large = m.throughput_mb_s(1 << 20);
        assert!(small < large * 0.8, "small {small} vs large {large}");
    }

    #[test]
    fn names_match_figure_legend() {
        assert_eq!(CryptoBackendKind::ScalarCpu.name(), "CPU");
        assert_eq!(CryptoBackendKind::LakeGpu.name(), "LAKE");
        assert_eq!(CryptoBackendKind::GpuPlusAesNi.name(), "GPU+AES-NI");
    }

    #[test]
    fn gpu_work_factor_targets_2_5_gb_s() {
        // At full occupancy: bytes/s = 16 * peak / flops_per_block.
        let implied = 16.0 * 2.0e12 / gpu_flops_per_block();
        assert!((implied - 2.5e9).abs() < 1.0, "implied throughput {implied}");
    }
}
