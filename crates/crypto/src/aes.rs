//! The AES block cipher (FIPS-197), encryption direction.
//!
//! GCM is a CTR-mode construction: both sealing and opening only ever run
//! the forward cipher, so the inverse cipher is deliberately omitted.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// AES key sizes this module supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes256 => 14,
        }
    }

    fn key_words(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes256 => 8,
        }
    }
}

/// An expanded AES key schedule (encryption direction).
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes").field("rounds", &self.rounds).finish()
    }
}

impl Aes {
    /// Expands a 128-bit key.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != 16`.
    pub fn new_128(key: &[u8]) -> Self {
        assert_eq!(key.len(), 16, "AES-128 key must be 16 bytes");
        Self::expand(key, KeySize::Aes128)
    }

    /// Expands a 256-bit key.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != 32`.
    pub fn new_256(key: &[u8]) -> Self {
        assert_eq!(key.len(), 32, "AES-256 key must be 32 bytes");
        Self::expand(key, KeySize::Aes256)
    }

    fn expand(key: &[u8], size: KeySize) -> Self {
        let nk = size.key_words();
        let rounds = size.rounds();
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([prev[0] ^ temp[0], prev[1] ^ temp[1], prev[2] ^ temp[2], prev[3] ^ temp[3]]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Aes { round_keys, rounds }
    }

    /// Number of rounds (10 for AES-128, 14 for AES-256).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        state[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
        state[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
        state[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
        state[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new_128(&key);
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new_256(&key);
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
    }

    #[test]
    fn round_counts() {
        assert_eq!(Aes::new_128(&[0u8; 16]).rounds(), 10);
        assert_eq!(Aes::new_256(&[0u8; 32]).rounds(), 14);
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes::new_128(&[0u8; 16]);
        let b = Aes::new_128(&[1u8; 16]);
        let mut x = [0u8; 16];
        let mut y = [0u8; 16];
        a.encrypt_block(&mut x);
        b.encrypt_block(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes::new_128(&[0x42u8; 16]);
        let s = format!("{aes:?}");
        assert!(!s.contains("42"), "debug output must not contain key bytes: {s}");
    }

    #[test]
    #[should_panic(expected = "16 bytes")]
    fn wrong_key_size_rejected() {
        Aes::new_128(&[0u8; 15]);
    }
}
