//! AES-GCM, from scratch, for the eCryptfs study (§7.7).
//!
//! The paper modifies eCryptfs "to use AES-GCM instead of CBC because it
//! is parallelizable" and adds "a Linux crypto API cipher that does
//! AES-GCM encryption and decryption using a LAKE-backed GPU". This crate
//! provides:
//!
//! * [`aes`] — the AES-128/256 block cipher (encrypt direction; GCM never
//!   needs the inverse cipher).
//! * [`ghash`] — GF(2¹²⁸) multiplication and GHASH.
//! * [`gcm`] — [`gcm::AesGcm`] seal/open with 96-bit nonces,
//!   validated against the NIST test vectors.
//! * [`backend`] — the three execution backends of Fig 14 with calibrated
//!   virtual-time costs: scalar CPU (~150 MB/s), AES-NI (~700 MB/s), and
//!   the GPU batch path (occupancy-ramped, profitable only for large
//!   blocks — the 16 KB read / 128 KB write crossovers of Table 3).
//!
//! # Example
//!
//! ```
//! use lake_crypto::gcm::AesGcm;
//!
//! let key = [7u8; 32];
//! let cipher = AesGcm::new_256(&key);
//! let nonce = [1u8; 12];
//! let sealed = cipher.seal(&nonce, b"kernel page", b"");
//! let opened = cipher.open(&nonce, &sealed, b"").expect("tag verifies");
//! assert_eq!(opened, b"kernel page");
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod backend;
pub mod gcm;
pub mod ghash;

pub use backend::{CpuCryptoModel, CryptoBackendKind};
pub use gcm::{AesGcm, OpenError};
