//! GHASH over GF(2¹²⁸) (NIST SP 800-38D).

/// Multiplies two 128-bit field elements in GF(2¹²⁸) with the GCM
/// reduction polynomial `x¹²⁸ + x⁷ + x² + x + 1`.
///
/// Elements are big-endian bit-reflected as in the spec: bit 0 of byte 0
/// is the coefficient of x⁰.
pub fn gf_mul(x: u128, y: u128) -> u128 {
    // Straightforward shift-and-reduce; constant 128 iterations.
    const R: u128 = 0xe100_0000_0000_0000_0000_0000_0000_0000;
    let mut z: u128 = 0;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// Incremental GHASH accumulator.
#[derive(Debug, Clone)]
pub struct GHash {
    h: u128,
    acc: u128,
}

impl GHash {
    /// Creates an accumulator keyed by the hash subkey `H = E(K, 0¹²⁸)`.
    pub fn new(h: [u8; 16]) -> Self {
        GHash { h: u128::from_be_bytes(h), acc: 0 }
    }

    /// Absorbs data, zero-padding the final partial block.
    pub fn update(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.acc = gf_mul(self.acc ^ u128::from_be_bytes(block), self.h);
        }
    }

    /// Absorbs the GCM length block (`len(A) || len(C)` in bits) and
    /// returns the digest.
    pub fn finalize(mut self, aad_bytes: usize, ct_bytes: usize) -> [u8; 16] {
        let lens = ((aad_bytes as u128 * 8) << 64) | (ct_bytes as u128 * 8);
        self.acc = gf_mul(self.acc ^ lens, self.h);
        self.acc.to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_mul_identity_and_zero() {
        // The multiplicative identity in GCM's representation is
        // 0x80000...0 (the polynomial "1").
        let one: u128 = 1 << 127;
        let x: u128 = 0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978;
        assert_eq!(gf_mul(x, one), x);
        assert_eq!(gf_mul(one, x), x);
        assert_eq!(gf_mul(x, 0), 0);
    }

    #[test]
    fn gf_mul_commutes() {
        let a: u128 = 0xdead_beef_0bad_cafe_1234_5678_9abc_def0;
        let b: u128 = 0x0f0f_0f0f_f0f0_f0f0_aaaa_5555_cccc_3333;
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }

    #[test]
    fn gf_mul_distributes() {
        let a: u128 = 0x1111_2222_3333_4444_5555_6666_7777_8888;
        let b: u128 = 0x9999_aaaa_bbbb_cccc_dddd_eeee_ffff_0001;
        let c: u128 = 0x0246_8ace_1357_9bdf_fdb9_7531_eca8_6420;
        assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
    }

    #[test]
    fn ghash_known_vector() {
        // From the GCM spec test case 2 (AES-128, K=0):
        // H = E(0,0) = 66e94bd4ef8a2c3b884cfa59ca342b2e
        // GHASH(H, {}, C=0388dace60b6a392f328c2b971b2fe78)
        //   = f38cbb1ad69223dcc3457ae5b6b0f885
        let h = [
            0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34,
            0x2b, 0x2e,
        ];
        let c = [
            0x03, 0x88, 0xda, 0xce, 0x60, 0xb6, 0xa3, 0x92, 0xf3, 0x28, 0xc2, 0xb9, 0x71, 0xb2,
            0xfe, 0x78,
        ];
        let mut g = GHash::new(h);
        g.update(&c);
        let digest = g.finalize(0, 16);
        let expected = [
            0xf3, 0x8c, 0xbb, 0x1a, 0xd6, 0x92, 0x23, 0xdc, 0xc3, 0x45, 0x7a, 0xe5, 0xb6, 0xb0,
            0xf8, 0x85,
        ];
        assert_eq!(digest, expected);
    }

    #[test]
    fn partial_blocks_zero_pad() {
        let h = [0x42u8; 16];
        let mut a = GHash::new(h);
        a.update(&[1, 2, 3]);
        let mut b = GHash::new(h);
        let mut padded = [0u8; 16];
        padded[..3].copy_from_slice(&[1, 2, 3]);
        b.update(&padded);
        // same accumulator state before lengths:
        assert_eq!(a.acc, b.acc);
        assert_eq!(a.finalize(0, 3).len(), 16);
    }
}
