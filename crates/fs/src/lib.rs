//! An eCryptfs-style stacked encrypting file layer (§7.7).
//!
//! The paper modifies eCryptfs to use AES-GCM ("because it is
//! parallelizable") and adds a crypto path that offloads cipher operations
//! to a LAKE-backed GPU. This crate reproduces that stack over the
//! simulated NVMe:
//!
//! * data is encrypted per *extent* (the mount's block size) with
//!   AES-256-GCM; the nonce derives from the extent index and the extent
//!   index is bound as AAD;
//! * reads and writes do real cryptography (tamper-evident storage) while
//!   charging calibrated virtual time for whichever crypto path is
//!   configured: scalar CPU, AES-NI, LAKE/GPU, or GPU+AES-NI split;
//! * sequential reads trigger *readahead*: the next extents' disk reads
//!   are issued while the current extent decrypts, which is what lets the
//!   GPU path overlap I/O with decryption ("the read-ahead size of the
//!   disk is set to the block size, in order to fully overlap the
//!   decryption and file system read");
//! * CPU/daemon/GPU busy time is metered for the Fig 15 utilization
//!   study.
//!
//! # Example
//!
//! ```
//! use lake_fs::{CryptoPath, Ecryptfs, EcryptfsConfig};
//!
//! # fn main() -> Result<(), lake_fs::FsError> {
//! let mut fs = Ecryptfs::for_tests(CryptoPath::AesNi, 4096);
//! fs.write(0, b"secret kernel telemetry")?;
//! assert_eq!(fs.read(0, 23)?, b"secret kernel telemetry");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod ecryptfs;

pub use ecryptfs::{CryptoPath, Ecryptfs, EcryptfsConfig, FsError, FsMeters};
