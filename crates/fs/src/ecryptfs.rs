//! The encrypted volume implementation.

use std::collections::{HashMap, VecDeque};

use lake_block::{IoKind, NvmeDevice};
use lake_core::{DevicePtr, KernelArg, Lake, LakeCuda, LakeError};
use lake_crypto::backend::{gpu_flops_per_block, CpuCryptoModel};
use lake_crypto::gcm::{AesGcm, TAG_LEN};
use lake_gpu::GpuError;
use lake_sim::{Duration, Instant, SharedClock, SimRng, UtilizationMeter};

/// Errors from the encrypted volume.
#[derive(Debug)]
pub enum FsError {
    /// Stored extent failed authentication (corruption or wrong key).
    Corrupt {
        /// Extent index that failed to open.
        extent: u64,
    },
    /// The LAKE path failed.
    Lake(LakeError),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Corrupt { extent } => write!(f, "extent {extent} failed authentication"),
            FsError::Lake(e) => write!(f, "lake crypto path failed: {e}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<LakeError> for FsError {
    fn from(e: LakeError) -> Self {
        FsError::Lake(e)
    }
}

/// Which crypto implementation the mount uses (the Fig 14 series).
#[derive(Clone)]
pub enum CryptoPath {
    /// Scalar kernel software AES-GCM.
    Cpu,
    /// AES-NI instruction path.
    AesNi,
    /// AES-GCM on the GPU through LAKE.
    LakeGpu(LakeCuda),
    /// GPU and AES-NI splitting each extent proportionally to their
    /// throughputs ("doing cypher operations concurrently").
    GpuPlusAesNi(LakeCuda),
}

impl std::fmt::Debug for CryptoPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CryptoPath::Cpu => "Cpu",
            CryptoPath::AesNi => "AesNi",
            CryptoPath::LakeGpu(_) => "LakeGpu",
            CryptoPath::GpuPlusAesNi(_) => "GpuPlusAesNi",
        })
    }
}

impl CryptoPath {
    /// Figure-legend name.
    pub fn name(&self) -> &'static str {
        match self {
            CryptoPath::Cpu => "CPU",
            CryptoPath::AesNi => "AES-NI",
            CryptoPath::LakeGpu(_) => "LAKE",
            CryptoPath::GpuPlusAesNi(_) => "GPU+AES-NI",
        }
    }

    fn cuda(&self) -> Option<&LakeCuda> {
        match self {
            CryptoPath::LakeGpu(c) | CryptoPath::GpuPlusAesNi(c) => Some(c),
            _ => None,
        }
    }
}

/// Mount options.
#[derive(Debug, Clone, Copy)]
pub struct EcryptfsConfig {
    /// Extent (block) size in bytes; also the readahead unit.
    pub extent_size: usize,
    /// Extents fetched *and decrypted* per batch ahead of a sequential
    /// reader. The paper's crossover behaviour ("read-ahead fetches and
    /// decrypts more blocks than requested, creating larger decryption
    /// blocks") comes from this window.
    pub readahead_extents: usize,
    /// Skip real cipher math and only charge virtual time (for large
    /// parameter sweeps; tests always run real crypto).
    pub timing_only: bool,
}

impl Default for EcryptfsConfig {
    fn default() -> Self {
        EcryptfsConfig { extent_size: 4096, readahead_extents: 16, timing_only: false }
    }
}

/// Busy-time meters for the Fig 15 utilization timelines.
#[derive(Debug)]
pub struct FsMeters {
    /// Kernel-side CPU busy time (crypto on CPU paths; channel overhead
    /// on LAKE paths).
    pub kernel_cpu: UtilizationMeter,
    /// `lakeD` CPU busy time (API handling).
    pub daemon_cpu: UtilizationMeter,
}

/// Per-op cost charged to the kernel CPU for each remoted call (send +
/// receive path work, excluding the wait).
const RPC_KERNEL_CPU: Duration = Duration::from_micros(25);
/// Per-op cost charged to the daemon CPU for each remoted call.
const RPC_DAEMON_CPU: Duration = Duration::from_micros(15);

/// The encrypted volume.
pub struct Ecryptfs {
    cipher: AesGcm,
    path: CryptoPath,
    device: NvmeDevice,
    clock: SharedClock,
    config: EcryptfsConfig,
    /// sealed extents at rest (extent index → ciphertext||tag)
    storage: HashMap<u64, Vec<u8>>,
    /// readahead completions: extent → disk-ready time
    readahead: HashMap<u64, Instant>,
    /// decrypted-extent cache (the page cache above the crypto layer)
    plain_cache: HashMap<u64, Vec<u8>>,
    cache_order: VecDeque<u64>,
    /// reusable device scratch buffers, keyed by (in_cap, out_cap)
    dev_bufs: HashMap<(usize, usize), (DevicePtr, DevicePtr)>,
    last_read_extent: Option<u64>,
    meters: FsMeters,
    scalar: CpuCryptoModel,
    aesni: CpuCryptoModel,
}

impl std::fmt::Debug for Ecryptfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ecryptfs")
            .field("path", &self.path)
            .field("extent_size", &self.config.extent_size)
            .field("extents", &self.storage.len())
            .finish()
    }
}

/// Name of the single-extent encrypt kernel.
pub const SEAL_KERNEL: &str = "ecryptfs_gcm_seal";
/// Name of the single-extent decrypt kernel.
pub const OPEN_KERNEL: &str = "ecryptfs_gcm_open";
/// Name of the batched decrypt kernel (readahead windows).
pub const OPEN_BATCH_KERNEL: &str = "ecryptfs_gcm_open_batch";

impl Ecryptfs {
    /// Registers the AES-GCM device kernels on a LAKE instance — the
    /// analog of loading the paper's CUDA cipher module. Must be called
    /// once before mounting with a GPU path backed by `lake`.
    pub fn install_gpu_kernels(lake: &Lake, key: &[u8; 32]) {
        let seal_cipher = AesGcm::new_256(key);
        lake.register_kernel(SEAL_KERNEL, gpu_flops_per_block(), move |ctx, args| {
            let input = arg_ptr(args, 0)?;
            let output = arg_ptr(args, 1)?;
            let extent = arg_u64(args, 2)?;
            let len = arg_u64(args, 3)? as usize;
            let data = ctx.read_bytes(input)?;
            if data.len() < len {
                return Err(GpuError::KernelFault("seal input too short".to_owned()));
            }
            let sealed =
                seal_cipher.seal(&extent_nonce(extent), &data[..len], &extent.to_le_bytes());
            ctx.write_bytes(output, &sealed)
        });
        let open_cipher = AesGcm::new_256(key);
        lake.register_kernel(OPEN_KERNEL, gpu_flops_per_block(), move |ctx, args| {
            let input = arg_ptr(args, 0)?;
            let output = arg_ptr(args, 1)?;
            let extent = arg_u64(args, 2)?;
            let len = arg_u64(args, 3)? as usize;
            let data = ctx.read_bytes(input)?;
            if data.len() < len {
                return Err(GpuError::KernelFault("open input too short".to_owned()));
            }
            let plain = open_cipher
                .open(&extent_nonce(extent), &data[..len], &extent.to_le_bytes())
                .map_err(|_| GpuError::KernelFault(format!("extent {extent} tag mismatch")))?;
            ctx.write_bytes(output, &plain)
        });
        let batch_cipher = AesGcm::new_256(key);
        lake.register_kernel(OPEN_BATCH_KERNEL, gpu_flops_per_block(), move |ctx, args| {
            let input = arg_ptr(args, 0)?;
            let output = arg_ptr(args, 1)?;
            let first_extent = arg_u64(args, 2)?;
            let count = arg_u64(args, 3)? as usize;
            let sealed_len = arg_u64(args, 4)? as usize;
            let data = ctx.read_bytes(input)?;
            if data.len() < count * sealed_len {
                return Err(GpuError::KernelFault("batch input too short".to_owned()));
            }
            let plain_len = sealed_len - TAG_LEN;
            let mut out = Vec::with_capacity(count * plain_len);
            for i in 0..count {
                let extent = first_extent + i as u64;
                let sealed = &data[i * sealed_len..(i + 1) * sealed_len];
                let plain = batch_cipher
                    .open(&extent_nonce(extent), sealed, &extent.to_le_bytes())
                    .map_err(|_| GpuError::KernelFault(format!("extent {extent} tag mismatch")))?;
                out.extend_from_slice(&plain);
            }
            ctx.write_bytes(output, &out)
        });
    }

    /// Mounts a volume.
    pub fn new(
        key: &[u8; 32],
        path: CryptoPath,
        device: NvmeDevice,
        clock: SharedClock,
        config: EcryptfsConfig,
    ) -> Self {
        Ecryptfs {
            cipher: AesGcm::new_256(key),
            path,
            device,
            clock,
            config,
            storage: HashMap::new(),
            readahead: HashMap::new(),
            plain_cache: HashMap::new(),
            cache_order: VecDeque::new(),
            dev_bufs: HashMap::new(),
            last_read_extent: None,
            meters: FsMeters {
                kernel_cpu: UtilizationMeter::new(Duration::from_millis(500)),
                daemon_cpu: UtilizationMeter::new(Duration::from_millis(500)),
            },
            scalar: CpuCryptoModel::scalar(),
            aesni: CpuCryptoModel::aes_ni(),
        }
    }

    /// A small CPU-path mount over a fresh device — test convenience
    /// (key `[0x2a; 32]`).
    pub fn for_tests(path: CryptoPath, extent_size: usize) -> Self {
        let device = NvmeDevice::new(lake_block::NvmeSpec::samsung_980pro(), SimRng::seed(1));
        Ecryptfs::new(
            &[0x2a; 32],
            path,
            device,
            SharedClock::new(),
            EcryptfsConfig { extent_size, ..EcryptfsConfig::default() },
        )
    }

    /// The mount's clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Busy-time meters.
    pub fn meters(&self) -> &FsMeters {
        &self.meters
    }

    /// The crypto path in use.
    pub fn crypto_path(&self) -> &CryptoPath {
        &self.path
    }

    fn extent_size(&self) -> usize {
        self.config.extent_size
    }

    fn sealed_len(&self) -> usize {
        self.config.extent_size + TAG_LEN
    }

    // -- plaintext cache -------------------------------------------------------

    fn cache_insert(&mut self, extent: u64, plain: Vec<u8>) {
        let cap = (self.config.readahead_extents.max(1) * 4).max(8);
        if self.plain_cache.insert(extent, plain).is_none() {
            self.cache_order.push_back(extent);
        }
        while self.cache_order.len() > cap {
            if let Some(old) = self.cache_order.pop_front() {
                self.plain_cache.remove(&old);
            }
        }
    }

    // -- crypto path dispatch ------------------------------------------------

    fn charge_cpu_crypto(&mut self, model: CpuCryptoModel, bytes: usize) {
        let t0 = self.clock.now();
        let t1 = self.clock.advance(model.time_for(bytes));
        self.meters.kernel_cpu.record_busy(t0, t1);
    }

    /// Gets (allocating once) reusable device buffers for the given
    /// capacities. The paper's kernel module similarly keeps its device
    /// allocations across calls — per-op `cuMemAlloc` round trips would
    /// dominate small extents.
    fn scratch_bufs(
        &mut self,
        cuda: &LakeCuda,
        in_cap: usize,
        out_cap: usize,
    ) -> Result<(DevicePtr, DevicePtr), LakeError> {
        if let Some(&pair) = self.dev_bufs.get(&(in_cap, out_cap)) {
            return Ok(pair);
        }
        let pair = (cuda.cu_mem_alloc(in_cap.max(1))?, cuda.cu_mem_alloc(out_cap.max(1))?);
        self.dev_bufs.insert((in_cap, out_cap), pair);
        Ok(pair)
    }

    /// Executes one remoted crypto kernel over `input`, returning
    /// `out_len` bytes. `tail_args` follow the in/out pointers.
    fn gpu_crypto(
        &mut self,
        cuda: &LakeCuda,
        kernel: &str,
        tail_args: &[KernelArg],
        input: &[u8],
        out_len: usize,
        items: u64,
    ) -> Result<Vec<u8>, FsError> {
        // Extent buffers live in lakeShm from the start (the "copiable
        // memory allocations" discipline of §4.1), so the daemon reads
        // them zero-copy.
        let shm = cuda.shm().clone();
        let in_buf = shm.alloc(input.len().max(1)).map_err(LakeError::from)?;
        let out_buf = shm.alloc(out_len.max(1)).map_err(LakeError::from)?;
        if !self.config.timing_only {
            shm.write(&in_buf, 0, input).map_err(LakeError::from)?;
        }
        let (dev_in, dev_out) = self.scratch_bufs(cuda, input.len().max(1), out_len.max(1))?;

        let run = (|| -> Result<Vec<u8>, LakeError> {
            let t = self.clock.now();
            self.meters.kernel_cpu.record_busy(t, t + RPC_KERNEL_CPU * 3);
            self.meters.daemon_cpu.record_busy(t, t + RPC_DAEMON_CPU * 3);
            cuda.cu_memcpy_htod_shm(dev_in, &in_buf, input.len())?;
            let mut args = vec![KernelArg::Ptr(dev_in), KernelArg::Ptr(dev_out)];
            args.extend_from_slice(tail_args);
            cuda.cu_launch_kernel(kernel, items, &args)?;
            cuda.cu_memcpy_dtoh_shm(dev_out, &out_buf, out_len)?;
            if self.config.timing_only {
                Ok(vec![0u8; out_len])
            } else {
                Ok(shm.read(&out_buf, 0, out_len).map_err(LakeError::from)?)
            }
        })();
        let _ = shm.free(in_buf);
        let _ = shm.free(out_buf);
        Ok(run?)
    }

    fn seal_extent(&mut self, extent: u64, plain: &[u8]) -> Result<Vec<u8>, FsError> {
        let out_len = plain.len() + TAG_LEN;
        let blocks = (plain.len() as u64).div_ceil(16).max(1);
        let tail = [KernelArg::U64(extent), KernelArg::U64(plain.len() as u64)];
        match self.path.clone() {
            CryptoPath::Cpu => {
                self.charge_cpu_crypto(self.scalar, plain.len());
                Ok(self.seal_local(extent, plain))
            }
            CryptoPath::AesNi => {
                self.charge_cpu_crypto(self.aesni, plain.len());
                Ok(self.seal_local(extent, plain))
            }
            CryptoPath::LakeGpu(cuda) => {
                self.gpu_crypto(&cuda, SEAL_KERNEL, &tail, plain, out_len, blocks)
            }
            CryptoPath::GpuPlusAesNi(cuda) => {
                // Split proportional to throughputs: the GPU part runs
                // remotely, the AES-NI part concurrently on the CPU; the
                // op finishes when both do. Real bytes all flow through
                // the GPU kernel so storage stays format-identical.
                let split = self.gpu_split_fraction();
                let t0 = self.clock.now();
                let gpu_items = ((blocks as f64) * split).ceil() as u64;
                let out =
                    self.gpu_crypto(&cuda, SEAL_KERNEL, &tail, plain, out_len, gpu_items.max(1))?;
                let ni_bytes = ((plain.len() as f64) * (1.0 - split)) as usize;
                let ni_end = t0 + self.aesni.time_for(ni_bytes);
                self.meters.kernel_cpu.record_busy(t0, ni_end);
                self.clock.advance_to(ni_end);
                Ok(out)
            }
        }
    }

    /// Decrypts a contiguous run of sealed extents (all `sealed_len()`
    /// bytes each); returns the concatenated plaintext.
    fn open_extents(&mut self, first: u64, sealed: &[Vec<u8>]) -> Result<Vec<u8>, FsError> {
        let count = sealed.len();
        let es = self.extent_size();
        let total_plain = count * es;
        match self.path.clone() {
            CryptoPath::Cpu => {
                self.charge_cpu_crypto(self.scalar, total_plain);
                self.open_local_batch(first, sealed)
            }
            CryptoPath::AesNi => {
                self.charge_cpu_crypto(self.aesni, total_plain);
                self.open_local_batch(first, sealed)
            }
            CryptoPath::LakeGpu(cuda) => {
                let input: Vec<u8> = sealed.concat();
                let blocks = (total_plain as u64).div_ceil(16).max(1);
                let tail = [
                    KernelArg::U64(first),
                    KernelArg::U64(count as u64),
                    KernelArg::U64(self.sealed_len() as u64),
                ];
                self.gpu_crypto(&cuda, OPEN_BATCH_KERNEL, &tail, &input, total_plain, blocks)
            }
            CryptoPath::GpuPlusAesNi(cuda) => {
                let split = self.gpu_split_fraction();
                let t0 = self.clock.now();
                let input: Vec<u8> = sealed.concat();
                let blocks = (total_plain as u64).div_ceil(16).max(1);
                let gpu_items = ((blocks as f64) * split).ceil() as u64;
                let tail = [
                    KernelArg::U64(first),
                    KernelArg::U64(count as u64),
                    KernelArg::U64(self.sealed_len() as u64),
                ];
                let out = self.gpu_crypto(
                    &cuda,
                    OPEN_BATCH_KERNEL,
                    &tail,
                    &input,
                    total_plain,
                    gpu_items.max(1),
                )?;
                let ni_bytes = ((total_plain as f64) * (1.0 - split)) as usize;
                let ni_end = t0 + self.aesni.time_for(ni_bytes);
                self.meters.kernel_cpu.record_busy(t0, ni_end);
                self.clock.advance_to(ni_end);
                Ok(out)
            }
        }
    }

    /// GPU share of a split extent: gpu_rate / (gpu_rate + aesni_rate).
    fn gpu_split_fraction(&self) -> f64 {
        let gpu_rate = 2.5e9;
        gpu_rate / (gpu_rate + self.aesni.bytes_per_sec)
    }

    fn seal_local(&self, extent: u64, plain: &[u8]) -> Vec<u8> {
        if self.config.timing_only {
            vec![0u8; plain.len() + TAG_LEN]
        } else {
            self.cipher.seal(&extent_nonce(extent), plain, &extent.to_le_bytes())
        }
    }

    fn open_local_batch(&self, first: u64, sealed: &[Vec<u8>]) -> Result<Vec<u8>, FsError> {
        let es = self.extent_size();
        if self.config.timing_only {
            return Ok(vec![0u8; sealed.len() * es]);
        }
        let mut out = Vec::with_capacity(sealed.len() * es);
        for (i, s) in sealed.iter().enumerate() {
            let extent = first + i as u64;
            let plain = self
                .cipher
                .open(&extent_nonce(extent), s, &extent.to_le_bytes())
                .map_err(|_| FsError::Corrupt { extent })?;
            out.extend_from_slice(&plain);
        }
        Ok(out)
    }

    // -- extent I/O -----------------------------------------------------------

    /// The sealed bytes for an extent, if it exists at rest.
    fn sealed_of(&self, extent: u64) -> Option<Vec<u8>> {
        self.storage.get(&extent).cloned()
    }

    /// Effective batch window in extents: the configured window capped so
    /// one decryption batch stays within 8 MiB of lakeShm.
    fn window_extents(&self) -> u64 {
        let es = self.extent_size().max(1);
        (self.config.readahead_extents.max(1).min((8 << 20) / es).max(1)) as u64
    }

    /// Fetches and decrypts the batch window starting at `extent`,
    /// populating the plaintext cache, and returns the plaintext of
    /// `extent` itself.
    fn read_extent(&mut self, extent: u64) -> Result<Vec<u8>, FsError> {
        if let Some(p) = self.plain_cache.get(&extent) {
            self.last_read_extent = Some(extent);
            return Ok(p.clone());
        }
        let es = self.extent_size();
        let Some(first_sealed) = self.sealed_of(extent) else {
            // Never-written extent: zeros, no I/O, no crypto.
            self.last_read_extent = Some(extent);
            return Ok(vec![0u8; es]);
        };
        // A truncated at-rest extent must surface as corruption, not feed
        // a short buffer into the batch-decrypt paths (which assume every
        // extent is exactly sealed_len() and would slice out of bounds).
        if first_sealed.len() != self.sealed_len() {
            return Err(FsError::Corrupt { extent });
        }

        // Build the decryption batch: the requested extent plus up to
        // readahead-1 following contiguous extents (stop at a sparse
        // hole).
        let window = self.window_extents();
        let mut sealed_run = vec![first_sealed];
        for ahead in 1..window {
            match self.sealed_of(extent + ahead) {
                Some(s) if s.len() == self.sealed_len() => sealed_run.push(s),
                _ => break,
            }
        }
        let count = sealed_run.len() as u64;

        // Disk: all batch extents fetch in parallel (separate channels);
        // readahead from a previous batch may already cover some.
        let now = self.clock.now();
        let mut disk_ready = now;
        for (i, s) in sealed_run.iter().enumerate() {
            let e = extent + i as u64;
            let t = match self.readahead.remove(&e) {
                Some(t) => t,
                None => self.device.submit_opts(now, IoKind::Read, s.len(), false).end,
            };
            disk_ready = disk_ready.max(t);
        }

        // Sequential detection → prefetch the *next* window's disk reads
        // before we stall on decryption.
        let sequential = self.last_read_extent.is_none_or(|last| extent <= last + window);
        self.last_read_extent = Some(extent);
        if sequential {
            for ahead in count..count + window {
                let e = extent + ahead;
                if self.readahead.contains_key(&e) || self.plain_cache.contains_key(&e) {
                    continue;
                }
                let Some(s) = self.sealed_of(e) else { break };
                let completion = self.device.submit_opts(now, IoKind::Read, s.len(), false);
                self.readahead.insert(e, completion.end);
            }
        }

        self.clock.advance_to(disk_ready);
        let plain = self.open_extents(extent, &sealed_run)?;
        debug_assert_eq!(plain.len(), sealed_run.len() * es);
        for (i, chunk) in plain.chunks(es).enumerate() {
            self.cache_insert(extent + i as u64, chunk.to_vec());
        }
        Ok(plain[..es].to_vec())
    }

    /// Encrypts and writes one full extent.
    fn write_extent(&mut self, extent: u64, plain: &[u8]) -> Result<(), FsError> {
        debug_assert_eq!(plain.len(), self.extent_size());
        let sealed = self.seal_extent(extent, plain)?;
        let completion = self.device.submit(self.clock.now(), IoKind::Write, sealed.len());
        // Synchronous write semantics: wait for the ack.
        self.clock.advance_to(completion.end);
        self.storage.insert(extent, sealed);
        // Invalidate any cached plaintext for this extent.
        if self.plain_cache.remove(&extent).is_some() {
            self.cache_order.retain(|&e| e != extent);
        }
        Ok(())
    }

    // -- public file API --------------------------------------------------------

    /// Writes `data` at byte `offset` (synchronous, read-modify-write on
    /// partial extents).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if an existing extent fails authentication
    /// during read-modify-write, or the LAKE path fails.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        if data.is_empty() {
            return Ok(());
        }
        let es = self.extent_size() as u64;
        let mut cursor = 0usize;
        let mut pos = offset;
        while cursor < data.len() {
            let extent = pos / es;
            let within = (pos % es) as usize;
            let n = ((es as usize) - within).min(data.len() - cursor);
            let mut plain = if within == 0 && n == es as usize {
                vec![0u8; es as usize]
            } else {
                // partial extent: read-modify-write
                self.read_extent(extent)?
            };
            plain.resize(es as usize, 0);
            plain[within..within + n].copy_from_slice(&data[cursor..cursor + n]);
            self.write_extent(extent, &plain)?;
            cursor += n;
            pos += n as u64;
        }
        Ok(())
    }

    /// Reads `len` bytes at byte `offset`. Never-written ranges read as
    /// zeros.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] if an extent fails authentication.
    pub fn read(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let es = self.extent_size() as u64;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while out.len() < len {
            let extent = pos / es;
            let within = (pos % es) as usize;
            let n = ((es as usize) - within).min(len - out.len());
            let plain = self.read_extent(extent)?;
            out.extend_from_slice(&plain[within..within + n]);
            pos += n as u64;
        }
        Ok(out)
    }

    /// Sequentially reads `total` bytes from offset 0 and returns the
    /// achieved throughput in MB/s of virtual time — one Fig 14 point.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on any read failure.
    pub fn measure_sequential_read(&mut self, total: usize) -> Result<f64, FsError> {
        let t0 = self.clock.now();
        let es = self.extent_size();
        let mut pos = 0u64;
        while (pos as usize) < total {
            self.read(pos, es.min(total - pos as usize))?;
            pos += es as u64;
        }
        let elapsed = self.clock.now() - t0;
        Ok(total as f64 / elapsed.as_secs_f64() / 1.0e6)
    }

    /// Sequentially writes `total` bytes (synchronous) and returns MB/s —
    /// the Fig 14 write series.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on any write failure.
    pub fn measure_sequential_write(&mut self, total: usize) -> Result<f64, FsError> {
        let t0 = self.clock.now();
        let es = self.extent_size();
        let zeros = vec![0u8; es];
        let mut pos = 0u64;
        while (pos as usize) < total {
            self.write(pos, &zeros[..es.min(total - pos as usize)])?;
            pos += es as u64;
        }
        let elapsed = self.clock.now() - t0;
        Ok(total as f64 / elapsed.as_secs_f64() / 1.0e6)
    }
}

impl Drop for Ecryptfs {
    fn drop(&mut self) {
        // Release cached device scratch buffers.
        if let Some(cuda) = self.path.cuda().cloned() {
            for (_, (a, b)) in self.dev_bufs.drain() {
                let _ = cuda.cu_mem_free(a);
                let _ = cuda.cu_mem_free(b);
            }
        }
    }
}

/// 96-bit per-extent nonce (extent index || constant); unique per extent,
/// and rewrites of an extent replace the whole sealed extent.
fn extent_nonce(extent: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&extent.to_le_bytes());
    nonce[8..].copy_from_slice(b"lake");
    nonce
}

fn arg_ptr(args: &[KernelArg], i: usize) -> Result<lake_gpu::DevicePtr, GpuError> {
    args.get(i)
        .and_then(|a| a.as_ptr())
        .ok_or_else(|| GpuError::KernelFault(format!("arg {i} must be a pointer")))
}

fn arg_u64(args: &[KernelArg], i: usize) -> Result<u64, GpuError> {
    args.get(i)
        .and_then(|a| a.as_u64())
        .ok_or_else(|| GpuError::KernelFault(format!("arg {i} must be a u64")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake_core::Mechanism;

    #[test]
    fn roundtrip_across_extents() {
        let mut fs = Ecryptfs::for_tests(CryptoPath::Cpu, 4096);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 255) as u8).collect();
        fs.write(100, &data).unwrap();
        assert_eq!(fs.read(100, data.len()).unwrap(), data);
        // unwritten space reads as zeros
        assert_eq!(fs.read(1_000_000, 16).unwrap(), vec![0u8; 16]);
    }

    #[test]
    fn partial_extent_rmw_preserves_neighbours() {
        let mut fs = Ecryptfs::for_tests(CryptoPath::AesNi, 4096);
        fs.write(0, &[0xAA; 4096]).unwrap();
        fs.write(1000, &[0xBB; 100]).unwrap();
        let back = fs.read(0, 4096).unwrap();
        assert!(back[..1000].iter().all(|&b| b == 0xAA));
        assert!(back[1000..1100].iter().all(|&b| b == 0xBB));
        assert!(back[1100..].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn data_at_rest_is_ciphertext() {
        let mut fs = Ecryptfs::for_tests(CryptoPath::Cpu, 4096);
        let plain = vec![0x5Au8; 4096];
        fs.write(0, &plain).unwrap();
        let sealed = fs.storage.get(&0).unwrap();
        assert_eq!(sealed.len(), 4096 + TAG_LEN);
        assert_ne!(&sealed[..4096], &plain[..]);
    }

    #[test]
    fn corruption_is_detected() {
        let mut fs = Ecryptfs::for_tests(CryptoPath::Cpu, 4096);
        fs.write(0, &[1u8; 4096]).unwrap();
        fs.storage.get_mut(&0).unwrap()[10] ^= 0xFF;
        match fs.read(0, 16) {
            Err(FsError::Corrupt { extent: 0 }) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_extent_at_rest_reads_as_corrupt_not_panic() {
        let mut fs = Ecryptfs::for_tests(CryptoPath::Cpu, 4096);
        fs.write(0, &[7u8; 4096]).unwrap();
        fs.storage.get_mut(&0).unwrap().truncate(100);
        match fs.read(0, 16) {
            Err(FsError::Corrupt { extent: 0 }) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn cache_serves_rereads_and_invalidates_on_write() {
        let mut fs = Ecryptfs::for_tests(CryptoPath::Cpu, 4096);
        fs.write(0, &[7u8; 8192]).unwrap();
        let _ = fs.read(0, 4096).unwrap();
        let t = fs.clock().now();
        // re-read hits the plaintext cache: no virtual time passes
        let again = fs.read(0, 4096).unwrap();
        assert_eq!(fs.clock().now(), t);
        assert!(again.iter().all(|&b| b == 7));
        // write invalidates
        fs.write(0, &[9u8; 4096]).unwrap();
        assert!(fs.read(0, 4096).unwrap().iter().all(|&b| b == 9));
    }

    #[test]
    fn batched_readahead_decrypts_following_extents() {
        let mut fs = Ecryptfs::for_tests(CryptoPath::Cpu, 4096);
        let data: Vec<u8> = (0..4096 * 8).map(|i| (i % 251) as u8).collect();
        fs.write(0, &data).unwrap();
        // first read populates the batch window
        let _ = fs.read(0, 4096).unwrap();
        assert!(fs.plain_cache.len() >= 2, "window should be cached");
        // data correctness through the cache
        assert_eq!(fs.read(0, data.len()).unwrap(), data);
    }

    #[test]
    fn gpu_path_roundtrips_real_data() {
        let lake = Lake::builder().mechanism(Mechanism::Netlink).build();
        let key = [0x2a; 32];
        Ecryptfs::install_gpu_kernels(&lake, &key);
        let device = NvmeDevice::new(lake_block::NvmeSpec::samsung_980pro(), SimRng::seed(3));
        let mut fs = Ecryptfs::new(
            &key,
            CryptoPath::LakeGpu(lake.cuda()),
            device,
            lake.clock().clone(),
            EcryptfsConfig { extent_size: 4096, ..EcryptfsConfig::default() },
        );
        let data: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 253) as u8).collect();
        fs.write(0, &data).unwrap();
        assert_eq!(fs.read(0, data.len()).unwrap(), data);
        assert!(lake.call_stats().calls > 0, "must actually remote through LAKE");
    }

    #[test]
    fn gpu_batch_open_detects_corruption() {
        let lake = Lake::builder().build();
        let key = [0x2a; 32];
        Ecryptfs::install_gpu_kernels(&lake, &key);
        let device = NvmeDevice::new(lake_block::NvmeSpec::samsung_980pro(), SimRng::seed(4));
        let mut fs = Ecryptfs::new(
            &key,
            CryptoPath::LakeGpu(lake.cuda()),
            device,
            lake.clock().clone(),
            EcryptfsConfig { extent_size: 4096, ..EcryptfsConfig::default() },
        );
        fs.write(0, &vec![3u8; 4096 * 4]).unwrap();
        fs.storage.get_mut(&2).unwrap()[5] ^= 0xFF;
        assert!(fs.read(0, 4096 * 4).is_err());
    }

    #[test]
    fn gpu_and_cpu_paths_are_storage_compatible() {
        // Write via GPU, read via CPU (same key): the at-rest format must
        // be identical.
        let lake = Lake::builder().build();
        let key = [0x2a; 32]; // matches Ecryptfs::for_tests
        Ecryptfs::install_gpu_kernels(&lake, &key);
        let device = NvmeDevice::new(lake_block::NvmeSpec::samsung_980pro(), SimRng::seed(4));
        let mut gpu_fs = Ecryptfs::new(
            &key,
            CryptoPath::LakeGpu(lake.cuda()),
            device,
            lake.clock().clone(),
            EcryptfsConfig::default(),
        );
        gpu_fs.write(0, b"cross-backend extent").unwrap();
        let sealed = gpu_fs.storage.get(&0).unwrap().clone();

        let mut cpu_fs = Ecryptfs::for_tests(CryptoPath::Cpu, 4096);
        cpu_fs.storage.insert(0, sealed);
        assert_eq!(cpu_fs.read(0, 20).unwrap(), b"cross-backend extent");
    }

    #[test]
    fn scalar_cpu_read_throughput_near_fig14_plateau() {
        let mut fs = Ecryptfs::for_tests(CryptoPath::Cpu, 128 * 1024);
        fs.config.timing_only = true;
        fs.write(0, &vec![0u8; 8 << 20]).unwrap();
        let mbps = fs.measure_sequential_read(8 << 20).unwrap();
        assert!((110.0..170.0).contains(&mbps), "CPU read {mbps} MB/s");
    }

    #[test]
    fn lake_beats_aesni_at_16k_reads() {
        // The Table 3 encryption crossover: batched readahead decryption
        // makes the GPU profitable from 16 KiB blocks.
        let run = |block: usize, gpu: bool| {
            let key = [0x2a; 32];
            let lake = Lake::builder().build();
            Ecryptfs::install_gpu_kernels(&lake, &key);
            lake.gpu().set_exec_mode(lake_gpu::ExecMode::TimingOnly);
            let device = NvmeDevice::new(lake_block::NvmeSpec::samsung_980pro(), SimRng::seed(5));
            let path = if gpu { CryptoPath::LakeGpu(lake.cuda()) } else { CryptoPath::AesNi };
            let mut fs = Ecryptfs::new(
                &key,
                path,
                device,
                lake.clock().clone(),
                EcryptfsConfig {
                    extent_size: block,
                    timing_only: true,
                    ..EcryptfsConfig::default()
                },
            );
            let total = (block * 64).max(4 << 20);
            fs.write(0, &vec![0u8; total]).unwrap();
            fs.measure_sequential_read(total).unwrap()
        };
        let gpu_16k = run(16 << 10, true);
        let ni_16k = run(16 << 10, false);
        assert!(gpu_16k > ni_16k, "LAKE {gpu_16k} should beat AES-NI {ni_16k} at 16K");
        let gpu_4k = run(4 << 10, true);
        let ni_4k = run(4 << 10, false);
        assert!(ni_4k > gpu_4k, "AES-NI {ni_4k} should beat LAKE {gpu_4k} at 4K");
    }

    #[test]
    fn meters_record_cpu_work() {
        let mut fs = Ecryptfs::for_tests(CryptoPath::Cpu, 4096);
        fs.write(0, &[7u8; 4096]).unwrap();
        fs.read(0, 4096).unwrap();
        let until = fs.clock().now();
        assert!(fs.meters().kernel_cpu.overall_until(until) > 0.0);
    }
}
