//! # LAKE — a Learning-assisted, Accelerated KErnel (Rust reproduction)
//!
//! This workspace reproduces ["Towards a Machine Learning-Assisted Kernel
//! with LAKE"](https://doi.org/10.1145/3575693.3575697) (Fingler et al.,
//! ASPLOS 2023) as a self-contained Rust system: the LAKE framework (API
//! remoting, shared memory, execution policies, in-kernel feature
//! registry), a simulated kernel/user/GPU substrate, from-scratch ML and
//! AES-GCM, and the paper's five ML-assisted kernel subsystems.
//!
//! This crate is the facade: it re-exports every workspace crate under
//! one name and hosts the runnable examples and cross-crate integration
//! tests. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for paper-vs-measured results.
//!
//! ## Quick start
//!
//! ```
//! use lake::core::{Lake, KernelArg};
//!
//! # fn main() -> Result<(), lake::core::LakeError> {
//! // Deploy LAKE: shared memory + Netlink channel + daemon + GPU.
//! let lake = Lake::builder().build();
//!
//! // "Load a CUDA module": register a device kernel.
//! lake.register_kernel("saxpy", 2.0, |ctx, args| {
//!     let ptr = args[0].as_ptr().expect("buffer");
//!     let a = args[1].as_f32().expect("scalar");
//!     let mut v = ctx.read_f32(ptr)?;
//!     v.iter_mut().for_each(|x| *x = a * *x + 1.0);
//!     ctx.write_f32(ptr, &v)
//! });
//!
//! // Kernel-space code calls the remoted CUDA driver API.
//! let cuda = lake.cuda();
//! let buf = cuda.cu_mem_alloc(8)?;
//! cuda.cu_memcpy_htod(buf, &[2.0f32.to_le_bytes(), 4.0f32.to_le_bytes()].concat())?;
//! cuda.cu_launch_kernel("saxpy", 2, &[KernelArg::Ptr(buf), KernelArg::F32(3.0)])?;
//! let out = cuda.cu_memcpy_dtoh(buf, 8)?;
//! assert_eq!(f32::from_le_bytes(out[..4].try_into().unwrap()), 7.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

/// Block-I/O substrate: NVMe model, traces, replay (`lake-block`).
pub use lake_block as block;
/// The LAKE framework itself (`lake-core`).
pub use lake_core as core;
/// AES-GCM and crypto backends (`lake-crypto`).
pub use lake_crypto as crypto;
/// Sharded multi-daemon serving: consistent-hash routing, tenant QoS,
/// cross-shard failover (`lake-fleet`).
pub use lake_fleet as fleet;
/// The eCryptfs-style encrypted volume (`lake-fs`).
pub use lake_fs as fs;
/// The simulated CUDA-like accelerator (`lake-gpu`).
pub use lake_gpu as gpu;
/// From-scratch ML: MLP, LSTM, k-NN (`lake-ml`).
pub use lake_ml as ml;
/// The in-kernel feature registry (`lake-registry`).
pub use lake_registry as registry;
/// LAKE's RPC wire format and call engine (`lake-rpc`).
pub use lake_rpc as rpc;
/// Multi-GPU dispatch and cross-subsystem batching (`lake-sched`).
pub use lake_sched as sched;
/// lakeShm shared memory (`lake-shm`).
pub use lake_shm as shm;
/// Discrete-event simulation substrate (`lake-sim`).
pub use lake_sim as sim;
/// Kernel↔user channel mechanisms (`lake-transport`).
pub use lake_transport as transport;
/// The five ML-assisted kernel subsystems (`lake-workloads`).
pub use lake_workloads as workloads;
