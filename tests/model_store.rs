//! Paged model-store integration: budgeted weight residency driven
//! through the full kernel↔daemon path.
//!
//! The invariants:
//!
//! * **budget is a hard ceiling** — resident weight bytes never exceed
//!   the configured budget, at any instant, even with the model set 10×
//!   oversubscribed;
//! * **bit-identical answers** — eviction and cold-miss refaulting never
//!   change what a model computes;
//! * **pins are inviolable** — weights referenced by an in-flight call
//!   (including a parked batched ticket) are never evicted; competing
//!   work gets a typed `ML_STORE_FULL` instead of corrupted answers;
//! * **epoch semantics on hot-swap** — in-flight work finishes on the
//!   version it started on while new requests see the next version;
//! * **crash-safe swaps** — a daemon crash inside the swap window
//!   replays exactly one winning version through the shadow table.

use lake::core::{BatchPolicy, CrashSchedule, Lake, LakeError};
use lake::ml::{serialize, Activation, LstmClassifier, Mlp};
use lake::rpc::RpcError;
use lake::sim::{BurstSchedule, Duration, Instant, PressurePlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COLS: usize = 16;

fn mlp(seed: u64) -> Mlp {
    Mlp::new(&[COLS, 32, 2], Activation::Relu, &mut StdRng::seed_from_u64(seed))
}

fn row(i: usize) -> Vec<f32> {
    (0..COLS).map(|j| ((i * 31 + j * 17) % 23) as f32 / 23.0 - 0.5).collect()
}

/// A model set ~10× the byte budget churns through eviction while every
/// answer stays bit-identical to an unbounded run and residency never
/// crosses the ceiling.
#[test]
fn oversubscribed_budget_evicts_faults_and_stays_bit_identical() {
    const MODELS: usize = 10;
    let blobs: Vec<Vec<u8>> = (0..MODELS).map(|i| serialize::encode_mlp(&mlp(i as u64))).collect();

    // Budget sized to one model's resident footprint: the working set is
    // ~10× oversubscribed, so round-robin traffic evicts on every switch.
    let one = blobs[0].len().div_ceil(4096) * 4096;
    let budget = one;

    let unbounded = Lake::builder().build();
    let bounded = Lake::builder().model_budget_bytes(budget).build();
    let uml = unbounded.ml();
    let bml = bounded.ml();
    let uids: Vec<_> = blobs.iter().map(|b| uml.load_model(b).unwrap()).collect();
    let bids: Vec<_> = blobs.iter().map(|b| bml.load_model(b).unwrap()).collect();

    for round in 0..6 {
        for m in 0..MODELS {
            // Two calls per visit so the second is a warm hit.
            for k in 0..2 {
                let x = row(round * MODELS + m + k);
                let want = uml.infer_mlp(uids[m], 1, COLS, &x).unwrap();
                let got = bml.infer_mlp(bids[m], 1, COLS, &x).unwrap();
                assert_eq!(got, want, "eviction churn changed model {m}'s answer");
                let s = bounded.model_store_stats();
                assert!(
                    s.resident_bytes <= budget,
                    "resident {} exceeds budget {budget}",
                    s.resident_bytes
                );
                assert!(s.peak_resident_bytes <= budget, "{s:?}");
            }
        }
    }

    let s = bounded.model_store_stats();
    assert_eq!(s.budget_bytes, budget);
    assert!(s.evictions >= (MODELS - 1) as u64, "churn must evict: {s:?}");
    assert!(s.misses > 0, "model switches refault weights: {s:?}");
    assert!(s.hits > 0, "second call per visit hits warm weights: {s:?}");
    assert_eq!(s.pinned_bytes, 0, "all pins released after sync calls: {s:?}");
    // Every cold miss charged simulated-NVMe reload latency to the
    // virtual clock.
    let faults = bounded.model_fault_latencies_us();
    assert_eq!(faults.len() as u64, s.misses);
    assert!(s.fault_ns_total > 0 && faults.iter().all(|&us| us > 0.0));
    // The unbounded twin never faulted or evicted.
    let u = unbounded.model_store_stats();
    assert_eq!((u.misses, u.evictions), (0, 0), "{u:?}");
}

/// A memory-pressure storm halves the effective budget mid-run: the
/// store trims residency to the tightened ceiling and answers stay
/// correct through the storm.
#[test]
fn pressure_storm_trims_residency_without_changing_answers() {
    let blobs: Vec<Vec<u8>> = (0..2).map(|i| serialize::encode_mlp(&mlp(100 + i))).collect();
    let one = blobs[0].len().div_ceil(4096) * 4096;
    let budget = 2 * one; // both models fit — until the storm halves it

    let lake = Lake::builder().model_budget_bytes(budget).build();
    let ml = lake.ml();
    let ids: Vec<_> = blobs.iter().map(|b| ml.load_model(b).unwrap()).collect();
    let reference: Vec<Vec<u32>> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| ml.infer_mlp(id, 1, COLS, &row(i)).unwrap())
        .collect();
    assert_eq!(lake.model_store_stats().resident_bytes, budget, "both resident before the storm");

    // Storm covering the next stretch of virtual time.
    let now = lake.clock().now() - Instant::EPOCH;
    lake.set_model_pressure(Some(PressurePlan::new(
        BurstSchedule::new(now, Duration::from_millis(100), Duration::from_millis(100)),
        2,
    )));
    for round in 0..4 {
        for (i, &id) in ids.iter().enumerate() {
            let got = ml.infer_mlp(id, 1, COLS, &row(i)).unwrap();
            assert_eq!(got, reference[i], "storm round {round} changed an answer");
            let s = lake.model_store_stats();
            assert!(s.resident_bytes <= budget / 2, "storm ceiling violated: {s:?}");
        }
    }
    let s = lake.model_store_stats();
    assert!(s.evictions > 0, "halved budget must evict: {s:?}");

    // Storm over: both models page back in and coexist again.
    lake.set_model_pressure(None);
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(ml.infer_mlp(id, 1, COLS, &row(i)).unwrap(), reference[i]);
    }
    assert_eq!(lake.model_store_stats().resident_bytes, budget);
}

/// Weights pinned by a parked batched ticket can never be evicted: a
/// competing model that needs the space gets `ML_STORE_FULL`, and flows
/// once the ticket completes and drops its pin.
#[test]
fn pinned_weights_survive_budget_pressure_from_competing_models() {
    let blob_a = serialize::encode_mlp(&mlp(200));
    let blob_b = serialize::encode_mlp(&mlp(201));
    let one = blob_a.len().div_ceil(4096) * 4096;

    let lake = Lake::builder()
        .model_budget_bytes(one) // exactly one resident model
        .batch_policy(BatchPolicy { max_batch: 64, max_wait: Duration::from_millis(50) })
        .build();
    let ml = lake.ml();
    let a = ml.load_model(&blob_a).unwrap();
    assert!(lake.daemon().model_resident(a.0), "first load is eager-resident");

    // Park a row against A: the ticket holds A's weights pinned.
    let ticket = ml.infer_submit(a, 1, COLS, 0, &row(0)).unwrap();
    assert!(lake.model_store_stats().pinned_bytes > 0, "parked ticket pins weights");

    // B's install cannot evict pinned A, so it lands lazy (non-resident).
    let b = ml.load_model(&blob_b).unwrap();
    assert!(lake.daemon().model_resident(a.0), "pinned A immune to B's install");
    assert!(!lake.daemon().model_resident(b.0), "no room for the second");

    // B cannot fault in — A is pinned, so there is nothing to evict.
    let err = ml.infer_mlp(b, 1, COLS, &row(1)).unwrap_err();
    assert_eq!(err.vendor_code(), Some(lake::core::error::code::ML_STORE_FULL), "{err:?}");
    assert!(lake.daemon().model_resident(a.0), "pinned weights were not sacrificed");

    // Drain the ticket; its pin drops, and B faults in by evicting A.
    ml.infer_flush().unwrap();
    assert!(ml.infer_poll(ticket).unwrap().is_some());
    assert_eq!(lake.model_store_stats().pinned_bytes, 0);
    assert_eq!(ml.infer_mlp(b, 1, COLS, &row(1)).unwrap().len(), 1);
    assert!(!lake.daemon().model_resident(a.0), "A paged out once unpinned");
    assert!(lake.daemon().model_resident(b.0));
}

/// A daemon crash landing inside the hot-swap window: the swap surfaces
/// `DaemonRestarted` (non-idempotent, never silently retried), shadow
/// replay restores exactly one winning version — the pre-swap one, since
/// the install never committed to the shadow — and the caller-driven
/// retry lands the new version cleanly.
#[test]
fn crash_inside_swap_window_replays_one_winning_version() {
    let v1 = mlp(300);
    let v2 = mlp(301);
    let x = row(7);
    let on_v1 = vec![v1.classify(&lake::ml::Matrix::from_vec(1, COLS, x.clone()))[0] as u32];
    let on_v2 = vec![v2.classify(&lake::ml::Matrix::from_vec(1, COLS, x.clone()))[0] as u32];

    let lake = Lake::builder()
        .crash_schedule(CrashSchedule::at(vec![Instant::EPOCH + Duration::from_micros(500)]))
        .build();
    let ml = lake.ml();
    let id = ml.load_model(&serialize::encode_mlp(&v1)).unwrap();
    assert_eq!(ml.infer_mlp(id, 1, COLS, &x).unwrap(), on_v1);

    // Park the clock so the swap's in-flight window spans the crash.
    lake.clock().advance_to(Instant::from_nanos(500 * 1_000 - 100));
    let err = ml.swap_model(id, &serialize::encode_mlp(&v2)).unwrap_err();
    assert!(
        matches!(err, LakeError::Rpc(RpcError::DaemonRestarted { epoch: 0 })),
        "expected DaemonRestarted, got {err:?}"
    );

    // The next request pays the supervised restart, which replays the
    // shadow table: exactly the pre-swap version, at version 1,
    // answering bit-identically.
    assert_eq!(ml.infer_mlp(id, 1, COLS, &x).unwrap(), on_v1);
    let sup = lake.supervisor().stats();
    assert_eq!((sup.crashes_detected, sup.restarts, sup.models_replayed), (1, 1, 1));
    assert_eq!(lake.daemon().model_version(id.0), Some(1), "old version won the crashed swap");

    // Caller-driven retry: the swap commits at version 2 and new
    // requests see the new weights.
    assert_eq!(ml.swap_model(id, &serialize::encode_mlp(&v2)).unwrap(), 2);
    assert_eq!(lake.daemon().model_version(id.0), Some(2));
    assert_eq!(ml.infer_mlp(id, 1, COLS, &x).unwrap(), on_v2);

    let store = lake.model_store_stats();
    assert_eq!(store.resets, 1, "one crash reset so far: {store:?}");
    assert!(store.swaps_retired >= 1, "the retried swap retired v1: {store:?}");
}

const LSTM_FEATS: usize = 2;
const LSTM_STEPS: usize = 3;

fn lstm_rows(seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    (0..4)
        .map(|_| (0..LSTM_FEATS * LSTM_STEPS).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

fn lstm_classify(model: &LstmClassifier, flat: &[f32]) -> u32 {
    let seq: Vec<Vec<f32>> = flat.chunks(LSTM_FEATS).map(<[f32]>::to_vec).collect();
    model.classify(&seq) as u32
}

proptest! {
    /// Epoch semantics under hot-swap, property-checked across random
    /// weight pairs and feature batches: rows parked against version 1
    /// finish bit-identical to a v1-only run even though version 2 swaps
    /// in underneath them, and the first post-swap request sees v2.
    #[test]
    fn in_flight_lstm_batch_finishes_on_its_version_across_hot_swap(seed in 0u64..1000) {
        let v1 = LstmClassifier::new(LSTM_FEATS, 6, 1, 3, &mut StdRng::seed_from_u64(seed));
        let v2 = LstmClassifier::new(LSTM_FEATS, 6, 1, 3, &mut StdRng::seed_from_u64(seed + 7919));
        let rows = lstm_rows(seed);

        let lake = Lake::builder()
            // Rows park until the swap's barrier flush drains them.
            .batch_policy(BatchPolicy { max_batch: 64, max_wait: Duration::from_millis(50) })
            .build();
        let ml = lake.ml();
        let id = ml.load_model(&serialize::encode_lstm(&v1)).unwrap();

        let tickets: Vec<_> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                ml.infer_submit(id, i as u64, LSTM_FEATS * LSTM_STEPS, LSTM_STEPS, r).unwrap()
            })
            .collect();

        // Hot-swap while the batch is in flight. The daemon drains the
        // parked rows against v1 *before* installing v2.
        let version = ml.swap_model(id, &serialize::encode_lstm(&v2)).unwrap();
        prop_assert_eq!(version, 2);

        for (ticket, r) in tickets.iter().zip(&rows) {
            let class = ml.infer_poll(*ticket).unwrap();
            prop_assert_eq!(class, Some(lstm_classify(&v1, r)), "in-flight row left v1");
        }

        // New requests land on v2 immediately.
        for r in &rows {
            let got = ml.infer_lstm(id, 1, LSTM_STEPS, LSTM_FEATS, r).unwrap();
            prop_assert_eq!(got[0], lstm_classify(&v2, r), "post-swap row must see v2");
        }
        prop_assert_eq!(lake.daemon().model_version(id.0), Some(2));
        let s = lake.model_store_stats();
        prop_assert!(s.swaps_retired >= 1, "v1 retired: {:?}", s);
        prop_assert_eq!(s.pinned_bytes, 0);
    }
}
