//! Integration: the §4.2/§4.3 policy framework driving real offload
//! decisions against a live LAKE instance, plus the Fig 1 / Fig 13
//! scenario invariants.

use lake::core::policy::{offload, AlwaysCpu, AlwaysGpu, BatchThresholdPolicy, Policy};
use lake::core::{CuPolicy, Lake, PolicyConfig, Target};
use lake::sim::{Duration, Instant};
use lake::workloads::contention::{run, summarize_fig1, ContentionConfig};

#[test]
fn cu_policy_modulates_between_cpu_and_gpu() {
    let lake = Lake::builder().build();
    lake.register_kernel("contender", 1.0e6, |_, _| Ok(()));
    let mut policy = CuPolicy::new(
        lake.cuda(),
        lake.clock().clone(),
        PolicyConfig { mov_avg_window: 2, ..PolicyConfig::default() },
    );

    // Idle device, batch above threshold → GPU.
    assert_eq!(policy.decide(128), Target::Gpu);
    // Small batch → CPU regardless of load (the §4.2 profitability rule).
    assert_eq!(policy.decide(2), Target::Cpu);

    // Saturate the device from "user space".
    for _ in 0..20 {
        lake.gpu().launch_kernel("contender", 500_000, &[]).expect("launch");
    }
    assert_eq!(policy.decide(128), Target::Cpu, "contended device must fall back");

    // Idle again after the contender stops.
    lake.clock().advance(Duration::from_millis(100));
    let _ = policy.decide(128); // refresh sample
    lake.clock().advance(Duration::from_millis(10));
    assert_eq!(policy.decide(128), Target::Gpu, "policy must reclaim the GPU");
    let (gpu, cpu) = policy.decision_counts();
    assert!(gpu >= 2 && cpu >= 2);
}

#[test]
fn offload_helper_respects_each_policy() {
    let run_with = |policy: &mut dyn Policy| {
        let (t, v) = offload(policy, 64, || "dev", || "cpu");
        (t, v)
    };
    assert_eq!(run_with(&mut AlwaysGpu).1, "dev");
    assert_eq!(run_with(&mut AlwaysCpu).1, "cpu");
    let mut batch = BatchThresholdPolicy { batch_threshold: 100 };
    assert_eq!(run_with(&mut batch).1, "cpu");
}

#[test]
fn fig1_phases_degrade_monotonically() {
    let cfg = ContentionConfig::fig1();
    let result = run(&cfg);
    let s = summarize_fig1(&cfg, &result);
    assert!(s.solo > s.one_contender);
    assert!(s.one_contender > s.two_contenders);
    assert!(s.max_degradation > 0.5 && s.max_degradation < 0.85);
}

#[test]
fn fig13_user_app_is_protected_and_gpu_reclaimed() {
    let result = run(&ContentionConfig::fig13());
    let during: Vec<f64> = result
        .kernel_target
        .points()
        .iter()
        .filter(|&&(t, _)| {
            t >= Instant::from_nanos(12_000_000_000) && t < Instant::from_nanos(20_000_000_000)
        })
        .map(|&(_, v)| v)
        .collect();
    let share: f64 = during.iter().sum::<f64>() / during.len() as f64;
    assert!(share < 0.1, "kernel must vacate the GPU, share {share}");

    let user_mid: Vec<f64> = result
        .user_throughput
        .points()
        .iter()
        .filter(|&&(t, _)| {
            t >= Instant::from_nanos(12_000_000_000) && t < Instant::from_nanos(20_000_000_000)
        })
        .map(|&(_, v)| v)
        .collect();
    let mean = user_mid.iter().sum::<f64>() / user_mid.len() as f64;
    assert!(mean > result.user_peak * 0.9, "user QoS preserved");
}
