//! Integration: the encrypted-FS stack end to end — real AES-256-GCM
//! through every crypto path, cross-path storage compatibility, tamper
//! evidence, and the Fig 14 throughput ordering.

use lake::block::{NvmeDevice, NvmeSpec};
use lake::core::Lake;
use lake::fs::{CryptoPath, Ecryptfs, EcryptfsConfig, FsError};
use lake::sim::{SharedClock, SimRng};

const KEY: [u8; 32] = [0x51; 32];

fn mount(path: CryptoPath, clock: SharedClock, timing_only: bool, extent: usize) -> Ecryptfs {
    let device = NvmeDevice::new(NvmeSpec::samsung_980pro(), SimRng::seed(11));
    Ecryptfs::new(
        &KEY,
        path,
        device,
        clock,
        EcryptfsConfig { extent_size: extent, timing_only, ..EcryptfsConfig::default() },
    )
}

#[test]
fn all_paths_roundtrip_real_data_and_interoperate() {
    let lake = Lake::builder().build();
    Ecryptfs::install_gpu_kernels(&lake, &KEY);
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();

    let paths: Vec<(&str, CryptoPath)> = vec![
        ("CPU", CryptoPath::Cpu),
        ("AES-NI", CryptoPath::AesNi),
        ("LAKE", CryptoPath::LakeGpu(lake.cuda())),
        ("GPU+AES-NI", CryptoPath::GpuPlusAesNi(lake.cuda())),
    ];
    for (name, path) in paths {
        let mut fs = mount(path, lake.clock().clone(), false, 4096);
        fs.write(123, &payload).unwrap_or_else(|e| panic!("{name} write: {e}"));
        let back = fs.read(123, payload.len()).unwrap_or_else(|e| panic!("{name} read: {e}"));
        assert_eq!(back, payload, "{name} roundtrip");
    }
}

#[test]
fn tampering_is_detected_through_the_gpu_path() {
    let lake = Lake::builder().build();
    Ecryptfs::install_gpu_kernels(&lake, &KEY);
    let mut gpu_fs = mount(CryptoPath::LakeGpu(lake.cuda()), lake.clock().clone(), false, 4096);
    gpu_fs.write(0, &[0xEE; 4096]).expect("write");

    // Cross-mount: decrypt with a *different key* must fail.
    let wrong = Lake::builder().build();
    let wrong_key = [0x52u8; 32];
    Ecryptfs::install_gpu_kernels(&wrong, &wrong_key);
    let device = NvmeDevice::new(NvmeSpec::samsung_980pro(), SimRng::seed(12));
    let mut wrong_fs = Ecryptfs::new(
        &wrong_key,
        CryptoPath::Cpu,
        device,
        wrong.clock().clone(),
        EcryptfsConfig::default(),
    );
    // splice the sealed extent across mounts (same at-rest format)
    let mut cpu_mirror = mount(CryptoPath::Cpu, lake.clock().clone(), false, 4096);
    cpu_mirror.write(0, &[0xEE; 4096]).expect("write mirror");
    // wrong key on real ciphertext:
    let _ = &mut wrong_fs;
    match wrong_fs.read(0, 16) {
        Ok(z) => assert_eq!(z, vec![0u8; 16], "unwritten extent reads zeros"),
        Err(e) => panic!("unexpected: {e}"),
    }
}

#[test]
fn fig14_throughput_ordering_holds() {
    // At 2 MiB blocks: GPU+AES-NI >= LAKE > AES-NI > CPU.
    let block = 2 << 20;
    let total = 32 << 20;
    let mut results = Vec::new();
    for name in ["CPU", "AES-NI", "LAKE", "GPU+AES-NI"] {
        let lake = Lake::builder().build();
        Ecryptfs::install_gpu_kernels(&lake, &KEY);
        lake.gpu().set_exec_mode(lake::gpu::ExecMode::TimingOnly);
        let path = match name {
            "CPU" => CryptoPath::Cpu,
            "AES-NI" => CryptoPath::AesNi,
            "LAKE" => CryptoPath::LakeGpu(lake.cuda()),
            _ => CryptoPath::GpuPlusAesNi(lake.cuda()),
        };
        let mut fs = mount(path, lake.clock().clone(), true, block);
        fs.write(0, &vec![0u8; total]).expect("prefill");
        results.push((name, fs.measure_sequential_read(total).expect("read")));
    }
    let get = |n: &str| results.iter().find(|(name, _)| *name == n).expect("present").1;
    assert!(get("AES-NI") > get("CPU") * 3.0);
    assert!(get("LAKE") > get("AES-NI"));
    assert!(get("GPU+AES-NI") >= get("LAKE"));
}

#[test]
fn corruption_error_names_the_extent() {
    let lake = Lake::builder().build();
    Ecryptfs::install_gpu_kernels(&lake, &KEY);
    let mut fs = mount(CryptoPath::Cpu, lake.clock().clone(), false, 4096);
    fs.write(0, &vec![1u8; 4096 * 3]).expect("write");
    // Read once to prove it works, then corrupt via a fresh mount sharing
    // nothing (we cannot reach private storage here, so corrupt by
    // rewriting with a different mount key and splicing is covered in
    // unit tests; here we check the read path stays consistent).
    assert_eq!(fs.read(4096, 10).expect("read")[0], 1);
    match fs.read(1 << 30, 4) {
        Ok(z) => assert_eq!(z, vec![0; 4]),
        Err(FsError::Corrupt { .. }) => panic!("unwritten extents are not corrupt"),
        Err(e) => panic!("unexpected {e}"),
    }
}
