//! Integration: the `lake-sched` multi-GPU dispatch and cross-subsystem
//! batching scheduler driven through the remoted high-level APIs.
//!
//! Covers the ISSUE acceptance criteria: a 2-device pool demonstrably
//! beats a single device on batched dispatch, batched launches beat
//! singleton launches past the crossover, and the per-device contention
//! policy reproduces Fig 13's CPU fallback and recovery.

use lake::core::error::code;
use lake::core::{BatchPolicy, Lake, SchedMetrics, Ticket};
use lake::ml::{serialize, Activation, Matrix, Mlp};
use lake::sim::Duration;
use rand::rngs::StdRng;
use rand::SeedableRng;

const COLS: usize = 256;
const ROWS: usize = 64;

/// Deterministic feature rows (no RNG in the hot path).
fn feature_row(i: usize) -> Vec<f32> {
    (0..COLS).map(|j| ((i * 31 + j * 17) % 97) as f32 / 97.0 - 0.5).collect()
}

/// A wide MLP whose batched launch dominates RPC overhead, so device
/// parallelism is visible in the virtual makespan.
fn wide_model() -> Mlp {
    let mut rng = StdRng::seed_from_u64(42);
    Mlp::new(&[COLS, 4096, 2], Activation::Relu, &mut rng)
}

/// Submits `ROWS` single rows through the batcher on an `n`-device
/// deployment, flushes, polls every ticket, and reports the virtual
/// makespan plus scheduler counters and the polled classes.
fn run_batched(num_devices: usize) -> (Duration, SchedMetrics, Vec<u32>) {
    let lake = Lake::builder()
        .num_devices(num_devices)
        .batch_policy(BatchPolicy { max_batch: 16, max_wait: Duration::from_millis(50) })
        .build();
    let ml = lake.ml();
    let id = ml.load_model(&serialize::encode_mlp(&wide_model())).expect("load model");
    // Let the weight-upload DMA traffic age out of the 5 ms NVML window
    // so placement starts from an idle utilization reading.
    lake.clock().advance(Duration::from_millis(6));

    let t0 = lake.clock().now();
    let tickets: Vec<Ticket> = (0..ROWS)
        .map(|i| ml.infer_submit(id, (i % 4) as u64, COLS, 0, &feature_row(i)).expect("submit"))
        .collect();
    ml.infer_flush().expect("flush");
    let classes: Vec<u32> = tickets
        .iter()
        .map(|&t| ml.infer_poll(t).expect("poll").expect("dispatched after flush"))
        .collect();
    let makespan = lake.clock().now() - t0;
    (makespan, lake.sched_metrics(), classes)
}

#[test]
fn two_gpus_beat_one_on_batched_dispatch() {
    let (span1, m1, classes1) = run_batched(1);
    let (span2, m2, classes2) = run_batched(2);

    // Same work, same answers.
    assert_eq!(classes1, classes2);
    let rows: Vec<Vec<f32>> = (0..ROWS).map(feature_row).collect();
    let local = wide_model().classify(&Matrix::from_rows(&rows));
    assert_eq!(classes1, local.iter().map(|&c| c as u32).collect::<Vec<_>>());

    // Everything went through the device path in full batches.
    for m in [&m1, &m2] {
        assert_eq!(m.cpu_fallback_batches, 0, "no contention in this scenario");
        assert_eq!(m.dispatched_batches as usize, ROWS / 16);
        assert_eq!(m.submitted as usize, ROWS);
    }
    assert!(
        m2.devices.iter().all(|d| d.dispatched_batches > 0),
        "least-loaded placement must spread batches over both devices: {m2:?}"
    );

    // The acceptance bar: two devices overlap batched launches in
    // virtual time and beat the single-device makespan.
    assert!(
        span2.as_nanos() * 10 <= span1.as_nanos() * 7,
        "2-GPU makespan {span2} should be well under 1-GPU {span1}"
    );
}

#[test]
fn batched_dispatch_beats_singleton_launches_past_crossover() {
    // Singleton baseline: one synchronous launch per row (rows = 1 never
    // amortizes the launch overhead or fills the occupancy ramp).
    let lake = Lake::builder().build();
    let ml = lake.ml();
    let id = ml.load_model(&serialize::encode_mlp(&wide_model())).expect("load model");
    lake.clock().advance(Duration::from_millis(6));
    let t0 = lake.clock().now();
    let singleton: Vec<u32> = (0..ROWS)
        .flat_map(|i| ml.infer_mlp(id, 1, COLS, &feature_row(i)).expect("infer"))
        .collect();
    let singleton_span = lake.clock().now() - t0;

    let (batched_span, _, batched) = run_batched(1);
    assert_eq!(singleton, batched, "batching must not change results");
    assert!(
        batched_span.as_nanos() * 2 < singleton_span.as_nanos(),
        "batched {batched_span} should beat {ROWS} singleton launches {singleton_span}"
    );
}

/// Saturates a pool device's recent history with compute launches.
fn burn(lake: &Lake, idx: usize, launches: usize) {
    for _ in 0..launches {
        lake.pool().device(idx).launch_kernel("burn", 2_000_000, &[]).expect("burn");
    }
}

/// Idles the clock past several NVML sampling intervals so the 8-deep
/// moving averages decay (the recovery half of Fig 13).
fn settle(lake: &Lake) {
    for _ in 0..12 {
        lake.clock().advance(Duration::from_millis(5));
        lake.pool().utilization_snapshot();
    }
}

fn small_model() -> Mlp {
    let mut rng = StdRng::seed_from_u64(7);
    Mlp::new(&[8, 16, 2], Activation::Relu, &mut rng)
}

#[test]
fn contention_on_all_devices_falls_back_to_cpu_and_recovers() {
    let lake = Lake::builder().num_devices(2).build();
    lake.register_kernel("burn", 1.0, |_, _| Ok(()));
    let ml = lake.ml();
    let id = ml.load_model(&serialize::encode_mlp(&small_model())).expect("load model");

    burn(&lake, 0, 60);
    burn(&lake, 1, 60);
    let feats: Vec<f32> = (0..8).map(|j| j as f32 / 8.0).collect();
    let classes = ml.infer_mlp(id, 1, 8, &feats).expect("infer");
    let m = lake.sched_metrics();
    assert_eq!(m.cpu_fallback_batches, 1, "both devices contended: {m:?}");
    assert!(m.devices.iter().all(|d| d.dispatched_batches == 0));

    // The CPU path runs the same model math.
    let local = small_model().classify(&Matrix::from_rows(std::slice::from_ref(&feats)));
    assert_eq!(classes, local.iter().map(|&c| c as u32).collect::<Vec<_>>());

    // Fig 13's right half: load drains, the moving average decays, and
    // the scheduler returns to the device.
    settle(&lake);
    ml.infer_mlp(id, 1, 8, &feats).expect("infer");
    let m = lake.sched_metrics();
    assert_eq!(m.cpu_fallback_batches, 1, "no new fallback after recovery");
    assert_eq!(m.devices.iter().map(|d| d.dispatched_batches).sum::<u64>(), 1);
}

#[test]
fn backpressure_is_per_device_not_global() {
    let lake = Lake::builder().num_devices(2).build();
    lake.register_kernel("burn", 1.0, |_, _| Ok(()));
    let ml = lake.ml();
    let id = ml.load_model(&serialize::encode_mlp(&small_model())).expect("load model");

    // Only device 0 is contended; the pool must steer to device 1
    // rather than falling back to the CPU.
    burn(&lake, 0, 60);
    let feats: Vec<f32> = (0..8).map(|j| j as f32 / 8.0).collect();
    ml.infer_mlp(id, 1, 8, &feats).expect("infer");
    let m = lake.sched_metrics();
    assert_eq!(m.cpu_fallback_batches, 0, "device 1 was idle: {m:?}");
    assert_eq!(m.devices[0].dispatched_batches, 0);
    assert_eq!(m.devices[1].dispatched_batches, 1);
}

#[test]
fn ticket_lifecycle_poll_flush_and_errors() {
    let lake = Lake::builder()
        .batch_policy(BatchPolicy { max_batch: 16, max_wait: Duration::from_micros(200) })
        .build();
    let ml = lake.ml();
    let id = ml.load_model(&serialize::encode_mlp(&small_model())).expect("load model");
    let feats: Vec<f32> = (0..8).map(|j| j as f32 / 8.0).collect();

    // A lone row below max_batch stays queued...
    let t1 = ml.infer_submit(id, 0, 8, 0, &feats).expect("submit");
    assert_eq!(ml.infer_poll(t1).expect("poll"), None, "still queued");
    // ...until its max-wait deadline passes; polling then dispatches it.
    lake.clock().advance(Duration::from_millis(1));
    let class = ml.infer_poll(t1).expect("poll").expect("overdue queue dispatched");
    let local = small_model().classify(&Matrix::from_rows(std::slice::from_ref(&feats)));
    assert_eq!(class, local[0] as u32);

    // Consumed and unknown tickets are rejected.
    let err = ml.infer_poll(t1).expect_err("double poll");
    assert_eq!(err.vendor_code(), Some(code::SCHED_BAD_TICKET));
    let err = ml.infer_poll(Ticket(9_999)).expect_err("unknown ticket");
    assert_eq!(err.vendor_code(), Some(code::SCHED_BAD_TICKET));

    // Flush force-dispatches a partial queue.
    let t2 = ml.infer_submit(id, 1, 8, 0, &feats).expect("submit");
    assert_eq!(ml.infer_flush().expect("flush"), 1);
    assert!(ml.infer_poll(t2).expect("poll").is_some());
    assert_eq!(ml.infer_flush().expect("flush"), 0, "nothing left to flush");

    let m = lake.sched_metrics();
    assert_eq!(m.timeout_flushes, 1);
    assert_eq!(m.forced_flushes, 1);
    assert_eq!(m.queue_depth, 0);
}
