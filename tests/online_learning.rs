//! Integration: the online-learning loop (§2.1 — "learning ... online,
//! during execution, and training custom models"): a kernel subsystem
//! collects features into the registry, trains the model *in the daemon*
//! through the remoted training API, exports the improved weights, and
//! commits them back through the registry's `update_model`.

use lake::core::Lake;
use lake::ml::{serialize, Activation, Matrix, Mlp};
use lake::registry::FeatureRegistryService;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A separable two-class toy problem standing in for collected kernel
/// features.
fn labeled_batch(rng: &mut StdRng, n: usize) -> (Vec<f32>, Vec<u32>) {
    let mut feats = Vec::with_capacity(n * 4);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = rng.gen_bool(0.5);
        let center = if class { 0.8 } else { 0.2 };
        for _ in 0..4 {
            feats.push(center + 0.1 * (rng.gen::<f32>() - 0.5));
        }
        labels.push(u32::from(class));
    }
    (feats, labels)
}

#[test]
fn collect_train_export_update_cycle() {
    let mut rng = StdRng::seed_from_u64(77);
    let lake = Lake::builder().build();
    let ml = lake.ml();

    // Boot: an untrained model is created and committed via the registry.
    let registry = FeatureRegistryService::new();
    let dir = std::env::temp_dir().join("lake-online-learning-test");
    let path = dir.join("toy.lakeml");
    let initial = Mlp::new(&[4, 16, 2], Activation::Relu, &mut rng);
    registry
        .create_model("toy", "demo", &path, &serialize::encode_mlp(&initial))
        .expect("create_model");

    // Load into the daemon.
    let id = ml.load_model(&registry.model_blob("toy", "demo").expect("blob")).expect("load");

    // Untrained accuracy is near chance.
    let (test_feats, test_labels) = labeled_batch(&mut rng, 200);
    let before = ml.infer_mlp(id, 200, 4, &test_feats).expect("infer");
    let before_acc = before.iter().zip(&test_labels).filter(|(p, t)| p == t).count() as f64 / 200.0;

    // Online training: several collected batches, trained remotely.
    let t0 = lake.clock().now();
    let mut last_loss = f32::INFINITY;
    for _ in 0..25 {
        let (feats, labels) = labeled_batch(&mut rng, 128);
        last_loss = ml.train_mlp(id, 128, 4, &feats, &labels, 8, 0.2).expect("remote training");
    }
    assert!(lake.clock().now() > t0, "training must cost virtual time");
    assert!(last_loss < 0.2, "training loss should fall, got {last_loss}");

    // Inference through the same id now uses the trained weights.
    let after = ml.infer_mlp(id, 200, 4, &test_feats).expect("infer");
    let after_acc = after.iter().zip(&test_labels).filter(|(p, t)| p == t).count() as f64 / 200.0;
    assert!(after_acc > 0.95 && after_acc > before_acc, "accuracy {before_acc} -> {after_acc}");

    // Export and commit the improved model back through the registry.
    let blob = ml.export_model(id).expect("export");
    registry.update_model("toy", "demo", &blob).expect("update_model");

    // A fresh boot loads the improved model and matches the daemon's
    // verdicts exactly.
    let reloaded =
        serialize::decode_mlp(&registry.model_blob("toy", "demo").expect("blob")).expect("decode");
    let x = Matrix::from_vec(200, 4, test_feats);
    let local: Vec<u32> = reloaded.classify(&x).into_iter().map(|c| c as u32).collect();
    assert_eq!(local, after, "persisted weights must match the daemon's");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn training_rejects_bad_shapes_and_models() {
    let lake = Lake::builder().build();
    let ml = lake.ml();
    let mut rng = StdRng::seed_from_u64(1);
    let model = Mlp::new(&[4, 8, 2], Activation::Relu, &mut rng);
    let id = ml.load_model(&serialize::encode_mlp(&model)).expect("load");

    // wrong feature width
    assert!(ml.train_mlp(id, 2, 3, &[0.0; 6], &[0, 1], 1, 0.1).is_err());
    // label out of range
    assert!(ml.train_mlp(id, 2, 4, &[0.0; 8], &[0, 9], 1, 0.1).is_err());
    // unknown model
    assert!(ml.train_mlp(lake::core::ModelId(999), 2, 4, &[0.0; 8], &[0, 1], 1, 0.1).is_err());
}
