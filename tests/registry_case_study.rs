//! Integration: the §5.5 feature-registry case study — instrumenting I/O
//! issue and completion paths (Listings 4/5), then scoring batches with a
//! classifier that runs through LAKE under a batching policy.

use std::sync::Arc;

use lake::block::{IoKind, NvmeDevice, NvmeSpec, TraceSpec};
use lake::core::Lake;
use lake::ml::{serialize, Activation, Mlp};
use lake::registry::{Arch, FeatureRegistryService, Schema};
use lake::sim::{CrashSchedule, Duration, Instant, SimRng};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SYS: &str = "bio_latency_prediction";
const DEV: &str = "nvme0";

#[test]
fn listing4_listing5_capture_and_batch_inference() {
    // "Each block device needs its own feature registry" — one registry
    // keyed by the device name, with pending I/Os and the last 4
    // latencies (the LinnOS features).
    let service = FeatureRegistryService::new();
    let schema = Schema::builder().feature("pend_ios", 8, 1).feature("io_latency", 8, 4).build();
    service.create_registry(DEV, SYS, schema, 128).expect("create_registry");

    // A model managed through the registry's model APIs: create, commit
    // to the file system, reload.
    let dir = std::env::temp_dir().join("lake-integration-registry");
    let path = dir.join("bio.lakeml");
    let mut rng = StdRng::seed_from_u64(3);
    let model = Mlp::new(&[5, 16, 2], Activation::Relu, &mut rng);
    service.create_model(DEV, SYS, &path, &serialize::encode_mlp(&model)).expect("create_model");

    // Classifier registered for the GPU arch: realized through LAKE's
    // high-level API, exactly the §4.4 design.
    let lake = Lake::builder().build();
    let ml = lake.ml();
    let model_id = ml
        .load_model(&service.model_blob(DEV, SYS).expect("model in memory"))
        .expect("daemon loads model");
    let schema_for_classifier = service.registry(DEV, SYS).expect("registry").schema().clone();
    let ml_for_classifier = ml.clone();
    service
        .register_classifier(
            DEV,
            SYS,
            Arch::Gpu,
            Arc::new(move |fvs| {
                let rows: Vec<f32> =
                    fvs.iter().flat_map(|fv| fv.to_f32_features(&schema_for_classifier)).collect();
                let cols = schema_for_classifier.flat_width();
                ml_for_classifier
                    .infer_mlp(model_id, fvs.len(), cols, &rows)
                    .expect("remoted inference")
                    .into_iter()
                    .map(|c| c as f32)
                    .collect()
            }),
        )
        .expect("register_classifier");
    // CPU fallback classifier: trivial threshold on pending I/Os.
    service
        .register_classifier(
            DEV,
            SYS,
            Arch::Cpu,
            Arc::new(|fvs| {
                fvs.iter()
                    .map(|fv| f32::from(u8::from(fv.get_i64("pend_ios").unwrap_or(0) > 4)))
                    .collect()
            }),
        )
        .expect("register cpu classifier");
    // Policy: GPU when the batch is big enough (§4.2).
    service
        .register_policy(DEV, SYS, Arc::new(|batch| if batch >= 8 { Arch::Gpu } else { Arch::Cpu }))
        .expect("register_policy");

    // Replay a short trace against a device, placing the Listing 4/5
    // calls on issue and completion.
    let mut rng = SimRng::seed(77);
    let trace = TraceSpec::azure().generate(Duration::from_millis(5), &mut rng);
    let mut device = NvmeDevice::new(NvmeSpec::samsung_980pro(), rng.fork());

    let mut batches_scored = 0;
    let mut last_batch_len = 0;
    service.begin_fv_capture(DEV, SYS, lake.sim_now()).ok();

    for event in &trace {
        // --- Listing 4: I/O issue path -------------------------------
        service.capture_feature_incr(DEV, SYS, "pend_ios", 1).expect("capture pend_ios");
        service.commit_fv_capture(DEV, SYS, event.at).expect("commit");

        let fvs = service.get_features(DEV, SYS, None).expect("get_features");
        if fvs.len() >= 16 {
            let (arch, scores) = service.score_features(DEV, SYS, &fvs).expect("score");
            assert_eq!(arch, Arch::Gpu, "batch of {} must hit the GPU", fvs.len());
            assert_eq!(scores.len(), fvs.len());
            batches_scored += 1;
            last_batch_len = fvs.len();
            service.truncate_features(DEV, SYS, None).expect("truncate");
        }
        service.begin_fv_capture(DEV, SYS, event.at).expect("begin next");

        // --- Listing 5: completion path ------------------------------
        let completion = device.submit(event.at, event.kind, event.size);
        let latency_us = completion.latency(event.at).as_micros() as i64;
        if event.kind == IoKind::Read {
            service
                .capture_feature(DEV, SYS, "io_latency", &latency_us.to_le_bytes())
                .expect("capture latency");
        }
        service.capture_feature_incr(DEV, SYS, "pend_ios", -1).expect("decrement pend_ios");
    }

    assert!(batches_scored >= 3, "scored {batches_scored} batches");
    assert!(last_batch_len >= 16);
    assert!(lake.call_stats().calls > 0, "classification must remote through LAKE");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn registry_catalog_is_replayed_into_new_daemon_incarnations() {
    // Two kernel subsystems announce feature-registry schemas. The
    // supervisor shadows the service catalog so every new lakeD
    // incarnation hears the announcements again after a crash.
    let service = FeatureRegistryService::new();
    let io_schema = Schema::builder().feature("pend_ios", 8, 1).feature("io_latency", 8, 4).build();
    service.create_registry(DEV, SYS, io_schema, 128).expect("create io registry");
    let cpu_schema = Schema::builder().feature("run_delay", 8, 1).build();
    service.create_registry("cpu0", "sched_idle_prediction", cpu_schema, 64).expect("create cpu");

    let crash_at = Instant::EPOCH + Duration::from_micros(400);
    let lake = Lake::builder().crash_schedule(CrashSchedule::at(vec![crash_at])).build();
    for (name, subsystem) in service.catalog() {
        lake.supervisor().record_schema(&name, &subsystem);
    }

    let ml = lake.ml();
    let mut rng = StdRng::seed_from_u64(5);
    let model = Mlp::new(&[4, 8, 2], Activation::Relu, &mut rng);
    let id = ml.load_model(&serialize::encode_mlp(&model)).expect("load model");

    // Park the clock just short of the crash so the next request's
    // in-flight window spans it; inference is idempotent, so the call
    // fails over to the supervised replacement daemon.
    lake.clock().advance_to(Instant::from_nanos(400 * 1_000 - 100));
    ml.infer_mlp(id, 1, 4, &[0.5; 4]).expect("inference fails over across the crash");

    let sup = lake.supervisor().stats();
    assert_eq!(sup.restarts, 1, "one supervised restart");
    assert_eq!(
        sup.schemas_replayed,
        service.catalog().len() as u64,
        "the whole catalog is re-announced to the new incarnation"
    );
    assert_eq!(sup.models_replayed, 1);
}

/// Small extension trait so the test reads naturally.
trait SimNow {
    fn sim_now(&self) -> lake::sim::Instant;
}

impl SimNow for Lake {
    fn sim_now(&self) -> lake::sim::Instant {
        self.clock().now()
    }
}
