//! Chaos integration: the LinnOS-style batched-inference workload driven
//! through the full kernel↔daemon path while the transport drops,
//! corrupts, delays, and duplicates frames, both GPUs fault in bursts,
//! and the daemon periodically stalls.
//!
//! The invariants under fault injection:
//!
//! * **zero lost requests** — every idempotent call eventually answers,
//!   and answers *correctly* (bit-identical to the fault-free run);
//! * **no daemon panic** — faults surface as errors/retries, never
//!   unwinding;
//! * **bounded latency inflation** — p99 under chaos stays within 5× of
//!   the fault-free p99;
//! * **observable recovery** — device evictions, probe reinstatements,
//!   CPU-recovered batches, and engine retries all show up in counters.
//!
//! `CHAOS_SEED` selects the fault plan's seed (CI runs a small matrix);
//! any seed must satisfy the same invariants.

use lake::core::{Lake, LakeError, PoolPolicy};
use lake::gpu::GpuFaultConfig;
use lake::ml::{serialize, Activation, Mlp};
use lake::rpc::{CallPolicy, RpcError};
use lake::sim::{BurstSchedule, CrashSchedule, Duration, FaultSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const COLS: usize = 31; // LinnOS feature vector width
const CALLS: usize = 600;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(7)
}

fn crash_seed() -> u64 {
    std::env::var("CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(11)
}

fn model() -> Mlp {
    Mlp::new(&[COLS, 16, 2], Activation::Relu, &mut StdRng::seed_from_u64(4242))
}

/// Deterministic synthetic feature batch for call `i` (`rows` varies so
/// batches cross the scheduler's placement thresholds).
fn batch(i: usize) -> (usize, Vec<f32>) {
    let rows = 1 + (i % 32);
    let feats = (0..rows * COLS).map(|j| ((i * 131 + j * 31) % 251) as f32 / 251.0).collect();
    (rows, feats)
}

/// Runs the workload against a deployed instance; returns per-call virtual
/// latencies (ns) and every call's classes. Panics if any call fails —
/// that is the "zero lost requests" assertion.
fn run_workload(lake: &Lake) -> (Vec<u64>, Vec<Vec<u32>>) {
    let ml = lake.ml();
    let blob = serialize::encode_mlp(&model());
    // Model load is not idempotent, so under frame loss the engine
    // surfaces an error instead of silently retrying; init-time code owns
    // that retry loop, as a real kernel module's probe path would.
    let id = loop {
        if let Ok(id) = ml.load_model(&blob) {
            break id;
        }
    };
    let mut latencies = Vec::with_capacity(CALLS);
    let mut results = Vec::with_capacity(CALLS);
    for i in 0..CALLS {
        let (rows, feats) = batch(i);
        let t0 = lake.clock().now();
        let classes = ml
            .infer_mlp(id, rows, COLS, &feats)
            .unwrap_or_else(|e| panic!("request {i} lost under chaos: {e}"));
        latencies.push((lake.clock().now() - t0).as_nanos());
        results.push(classes);
    }
    (latencies, results)
}

fn p99(latencies: &[u64]) -> u64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() * 99 / 100]
}

fn chaos_policy() -> CallPolicy {
    CallPolicy {
        deadline: Duration::from_micros(30),
        backoff: Duration::from_micros(5),
        max_attempts: 10,
        ..Default::default()
    }
}

#[test]
fn linnos_workload_survives_chaos_with_bounded_inflation() {
    let seed = chaos_seed();

    // Fault-free reference run (same topology, same policy).
    let clean = Lake::builder().num_devices(2).call_policy(chaos_policy()).build();
    let (clean_lat, clean_results) = run_workload(&clean);

    // Chaos run: lossy transport + staggered GPU fault bursts + stalls.
    let spec = FaultSpec {
        drop_prob: 0.06,
        corrupt_prob: 0.03,
        delay_prob: 0.02,
        duplicate_prob: 0.01,
        max_delay: Duration::from_micros(30),
    };
    let gpu0 = BurstSchedule::new(
        Duration::from_micros(500),
        Duration::from_millis(3),
        Duration::from_millis(1),
    );
    let gpu1 = BurstSchedule::new(
        Duration::from_micros(2000),
        Duration::from_millis(3),
        Duration::from_millis(1),
    );
    let stall = BurstSchedule::new(
        Duration::from_millis(1),
        Duration::from_millis(2),
        Duration::from_micros(50),
    );
    let faulty = Lake::builder()
        .num_devices(2)
        .call_policy(chaos_policy())
        .pool_policy(PoolPolicy::default())
        .transport_faults(spec, seed)
        .device_faults(0, GpuFaultConfig { kernel_faults: Some(gpu0), oom: None })
        .device_faults(1, GpuFaultConfig { kernel_faults: Some(gpu1), oom: None })
        .stall_schedule(stall)
        .build();
    let (faulty_lat, faulty_results) = run_workload(&faulty);

    // Zero lost requests is asserted inside run_workload; results must
    // also be bit-identical to the fault-free run.
    assert_eq!(faulty_results, clean_results, "chaos must not change any answer");

    let (p99_clean, p99_faulty) = (p99(&clean_lat), p99(&faulty_lat));
    let counters = faulty.fault_counters().expect("fault plan installed");
    let stats = faulty.call_stats();
    let m = faulty.sched_metrics();
    eprintln!(
        "chaos seed {seed}: p99 {p99_clean}ns clean vs {p99_faulty}ns chaos \
         ({:.2}x); {} frames, {} drops, {} corruptions, {} delays, {} dups; \
         {} retries, {} timeouts; {} evictions, {} reinstatements, \
         {} batches CPU-recovered, {} stalls",
        p99_faulty as f64 / p99_clean as f64,
        counters.frames,
        counters.drops,
        counters.corruptions,
        counters.delays,
        counters.duplicates,
        stats.retries,
        stats.timeouts,
        m.device_evictions,
        m.device_reinstatements,
        m.recovered_batches,
        faulty.daemon().stall_events(),
    );

    // Bounded latency inflation.
    assert!(
        p99_faulty <= 5 * p99_clean,
        "p99 inflation too high: clean {p99_clean}ns, chaos {p99_faulty}ns (seed {seed})"
    );

    // The fault plan really fired.
    assert!(counters.drops > 0, "no drops injected: {counters:?}");
    assert!(counters.corruptions > 0, "no corruption injected: {counters:?}");

    // The engine visibly retried through it.
    assert!(stats.retries > 0, "chaos should force retries: {stats:?}");

    // Pending-table leak regression (PR 7): late and duplicated responses
    // are stashed only while a caller is actually waiting on that seq, so
    // the table's high-water mark is bounded by the concurrent-caller
    // count (one workload thread here — in queue mode a whole burst rides
    // one seq) no matter how many frames chaos replays.
    assert!(
        stats.pending_high_water <= 2,
        "pending table grew past the caller count under chaos: {stats:?}"
    );

    // Device health tracking saw the bursts: faults evicted a device,
    // probes brought one back, and faulted work recovered on the CPU.
    assert!(m.device_evictions >= 1, "no evictions recorded: {m:?}");
    assert!(m.device_reinstatements >= 1, "no reinstatements recorded: {m:?}");
    assert!(m.recovered_batches >= 1, "no CPU recoveries recorded: {m:?}");
    assert!(faulty.daemon().stall_events() > 0, "no stall windows hit");

    // And the clean run saw none of it.
    let clean_m = clean.sched_metrics();
    assert_eq!(clean_m.device_evictions, 0);
    assert_eq!(clean_m.recovered_batches, 0);
    assert_eq!(clean.call_stats().retries, 0);
}

/// Like [`run_workload`], but interleaves a zero-learning-rate `tfTrain`
/// every 40 calls. Training is non-idempotent, so when the daemon dies
/// mid-call it must surface the typed `DaemonRestarted` error (and its
/// staging buffer is deliberately stranded for the orphan sweep); a zero
/// learning rate keeps the weights — and therefore every inference
/// answer — bit-identical to a run with no crashes at all.
fn run_crashy_workload(lake: &Lake) -> (Vec<u64>, Vec<Vec<u32>>, u64) {
    let ml = lake.ml();
    let blob = serialize::encode_mlp(&model());
    let id = loop {
        if let Ok(id) = ml.load_model(&blob) {
            break id;
        }
    };
    let mut latencies = Vec::with_capacity(CALLS);
    let mut results = Vec::with_capacity(CALLS);
    let mut typed_restart_errors = 0u64;
    for i in 0..CALLS {
        let (rows, feats) = batch(i);
        if i % 40 == 0 {
            match ml.train_mlp(id, rows, COLS, &feats, &vec![0u32; rows], 1, 0.0) {
                Ok(_) => {}
                Err(LakeError::Rpc(RpcError::DaemonRestarted { .. })) => {
                    typed_restart_errors += 1;
                }
                Err(e) => panic!("train {i} failed with a non-crash error: {e}"),
            }
        }
        let t0 = lake.clock().now();
        let classes = ml
            .infer_mlp(id, rows, COLS, &feats)
            .unwrap_or_else(|e| panic!("request {i} lost across daemon death: {e}"));
        latencies.push((lake.clock().now() - t0).as_nanos());
        results.push(classes);
    }
    (latencies, results, typed_restart_errors)
}

#[test]
fn linnos_workload_survives_daemon_crashes_mid_batch() {
    let seed = crash_seed();

    // Reference run: same workload, a daemon that never dies.
    let clean = Lake::builder().num_devices(2).call_policy(chaos_policy()).build();
    let (clean_lat, clean_results, clean_typed) = run_crashy_workload(&clean);
    assert_eq!(clean_typed, 0, "no crashes scheduled, no DaemonRestarted errors");

    // Crash run: lakeD dies repeatedly mid-batch on a seeded jittered
    // schedule; the supervisor restarts it under fresh epochs.
    let crashes = CrashSchedule::jittered(
        Duration::from_micros(300),
        Duration::from_micros(700),
        Duration::from_micros(150),
        12,
        seed,
    );
    let crashy =
        Lake::builder().num_devices(2).call_policy(chaos_policy()).crash_schedule(crashes).build();
    let (crash_lat, crash_results, typed) = run_crashy_workload(&crashy);

    // Zero lost requests: panics inside run_crashy_workload cover loss;
    // bit-identical answers cover stale or wrong-incarnation responses.
    assert_eq!(crash_results, clean_results, "daemon death must not change any answer");

    let sup = crashy.supervisor().stats();
    let stats = crashy.call_stats();
    let worst = *crash_lat.iter().max().unwrap();
    eprintln!(
        "crash seed {seed}: {} crashes detected, {} restarts (epoch {}), \
         {} models replayed, {} breaker trips; {} failovers, {} typed \
         restart errors, {} stale responses fenced; worst latency {}ns \
         (clean p99 {}ns)",
        sup.crashes_detected,
        sup.restarts,
        sup.epoch,
        sup.models_replayed,
        sup.breaker_trips,
        stats.failed_over,
        typed,
        stats.stale_epochs,
        worst,
        p99(&clean_lat),
    );

    // The schedule really fired and the supervisor really restarted.
    assert!(sup.restarts >= 1, "no supervised restarts happened: {sup:?}");
    assert_eq!(sup.epoch, sup.restarts, "one epoch bump per restart");
    assert_eq!(sup.models_replayed, sup.restarts, "shadow table replayed each time");

    // Every response fenced as stale was accounted for: either failed
    // over (idempotent inference) or surfaced as a typed error
    // (non-idempotent training). Nothing was silently dropped and no
    // stale-epoch answer was delivered.
    assert!(stats.failed_over >= 1, "no failovers recorded: {stats:?}");
    assert_eq!(
        stats.stale_epochs,
        stats.failed_over + stats.daemon_restarts,
        "unaccounted stale responses: {stats:?}"
    );
    assert_eq!(stats.daemon_restarts, typed, "typed errors match the engine's count");

    // Pending-table leak regression (PR 7): epoch fencing and restarts
    // must not strand stale-epoch responses in the table either.
    assert!(
        stats.pending_high_water <= 2,
        "pending table grew past the caller count across restarts: {stats:?}"
    );

    // Bounded recovery: no request hangs, even the ones that rode
    // through a restart (lease + backoff + restart cost).
    assert!(worst < Duration::from_millis(10).as_nanos(), "a request stalled: {worst}ns");

    // Orphan reclamation: every stranded training buffer was disowned
    // and swept — by a later supervised restart, or by the final
    // quiesced sweep — and the region converges to one coalesced block.
    let report = crashy.reclaim_shm_orphans();
    let after = crashy.shm().stats();
    assert_eq!(
        sup.orphans_reclaimed + report.reclaimed_allocs,
        typed,
        "one orphan per typed restart error: {sup:?} + {report:?}"
    );
    assert_eq!(after.in_use, 0, "shm not back to baseline: {after:?}");
    assert_eq!(after.orphaned_bytes, 0);
    assert_eq!(after.free_blocks, 1, "region did not coalesce: {after:?}");
    assert_eq!(after.largest_free, crashy.shm().capacity());

    // The clean run saw none of it.
    assert_eq!(clean.supervisor().stats().restarts, 0);
    assert_eq!(clean.call_stats().stale_epochs, 0);
}
