//! Chaos integration: the LinnOS-style batched-inference workload driven
//! through the full kernel↔daemon path while the transport drops,
//! corrupts, delays, and duplicates frames, both GPUs fault in bursts,
//! and the daemon periodically stalls.
//!
//! The invariants under fault injection:
//!
//! * **zero lost requests** — every idempotent call eventually answers,
//!   and answers *correctly* (bit-identical to the fault-free run);
//! * **no daemon panic** — faults surface as errors/retries, never
//!   unwinding;
//! * **bounded latency inflation** — p99 under chaos stays within 5× of
//!   the fault-free p99;
//! * **observable recovery** — device evictions, probe reinstatements,
//!   CPU-recovered batches, and engine retries all show up in counters.
//!
//! `CHAOS_SEED` selects the fault plan's seed (CI runs a small matrix);
//! any seed must satisfy the same invariants.

use lake::core::{Lake, PoolPolicy};
use lake::gpu::GpuFaultConfig;
use lake::ml::{serialize, Activation, Mlp};
use lake::rpc::CallPolicy;
use lake::sim::{BurstSchedule, Duration, FaultSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const COLS: usize = 31; // LinnOS feature vector width
const CALLS: usize = 600;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(7)
}

fn model() -> Mlp {
    Mlp::new(&[COLS, 16, 2], Activation::Relu, &mut StdRng::seed_from_u64(4242))
}

/// Deterministic synthetic feature batch for call `i` (`rows` varies so
/// batches cross the scheduler's placement thresholds).
fn batch(i: usize) -> (usize, Vec<f32>) {
    let rows = 1 + (i % 32);
    let feats = (0..rows * COLS).map(|j| ((i * 131 + j * 31) % 251) as f32 / 251.0).collect();
    (rows, feats)
}

/// Runs the workload against a deployed instance; returns per-call virtual
/// latencies (ns) and every call's classes. Panics if any call fails —
/// that is the "zero lost requests" assertion.
fn run_workload(lake: &Lake) -> (Vec<u64>, Vec<Vec<u32>>) {
    let ml = lake.ml();
    let blob = serialize::encode_mlp(&model());
    // Model load is not idempotent, so under frame loss the engine
    // surfaces an error instead of silently retrying; init-time code owns
    // that retry loop, as a real kernel module's probe path would.
    let id = loop {
        if let Ok(id) = ml.load_model(&blob) {
            break id;
        }
    };
    let mut latencies = Vec::with_capacity(CALLS);
    let mut results = Vec::with_capacity(CALLS);
    for i in 0..CALLS {
        let (rows, feats) = batch(i);
        let t0 = lake.clock().now();
        let classes = ml
            .infer_mlp(id, rows, COLS, &feats)
            .unwrap_or_else(|e| panic!("request {i} lost under chaos: {e}"));
        latencies.push((lake.clock().now() - t0).as_nanos());
        results.push(classes);
    }
    (latencies, results)
}

fn p99(latencies: &[u64]) -> u64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() * 99 / 100]
}

fn chaos_policy() -> CallPolicy {
    CallPolicy {
        deadline: Duration::from_micros(30),
        backoff: Duration::from_micros(5),
        max_attempts: 10,
        ..Default::default()
    }
}

#[test]
fn linnos_workload_survives_chaos_with_bounded_inflation() {
    let seed = chaos_seed();

    // Fault-free reference run (same topology, same policy).
    let clean = Lake::builder().num_devices(2).call_policy(chaos_policy()).build();
    let (clean_lat, clean_results) = run_workload(&clean);

    // Chaos run: lossy transport + staggered GPU fault bursts + stalls.
    let spec = FaultSpec {
        drop_prob: 0.06,
        corrupt_prob: 0.03,
        delay_prob: 0.02,
        duplicate_prob: 0.01,
        max_delay: Duration::from_micros(30),
    };
    let gpu0 = BurstSchedule::new(
        Duration::from_micros(500),
        Duration::from_millis(3),
        Duration::from_millis(1),
    );
    let gpu1 = BurstSchedule::new(
        Duration::from_micros(2000),
        Duration::from_millis(3),
        Duration::from_millis(1),
    );
    let stall = BurstSchedule::new(
        Duration::from_millis(1),
        Duration::from_millis(2),
        Duration::from_micros(50),
    );
    let faulty = Lake::builder()
        .num_devices(2)
        .call_policy(chaos_policy())
        .pool_policy(PoolPolicy::default())
        .transport_faults(spec, seed)
        .device_faults(0, GpuFaultConfig { kernel_faults: Some(gpu0), oom: None })
        .device_faults(1, GpuFaultConfig { kernel_faults: Some(gpu1), oom: None })
        .stall_schedule(stall)
        .build();
    let (faulty_lat, faulty_results) = run_workload(&faulty);

    // Zero lost requests is asserted inside run_workload; results must
    // also be bit-identical to the fault-free run.
    assert_eq!(faulty_results, clean_results, "chaos must not change any answer");

    let (p99_clean, p99_faulty) = (p99(&clean_lat), p99(&faulty_lat));
    let counters = faulty.fault_counters().expect("fault plan installed");
    let stats = faulty.call_stats();
    let m = faulty.sched_metrics();
    eprintln!(
        "chaos seed {seed}: p99 {p99_clean}ns clean vs {p99_faulty}ns chaos \
         ({:.2}x); {} frames, {} drops, {} corruptions, {} delays, {} dups; \
         {} retries, {} timeouts; {} evictions, {} reinstatements, \
         {} batches CPU-recovered, {} stalls",
        p99_faulty as f64 / p99_clean as f64,
        counters.frames,
        counters.drops,
        counters.corruptions,
        counters.delays,
        counters.duplicates,
        stats.retries,
        stats.timeouts,
        m.device_evictions,
        m.device_reinstatements,
        m.recovered_batches,
        faulty.daemon().stall_events(),
    );

    // Bounded latency inflation.
    assert!(
        p99_faulty <= 5 * p99_clean,
        "p99 inflation too high: clean {p99_clean}ns, chaos {p99_faulty}ns (seed {seed})"
    );

    // The fault plan really fired.
    assert!(counters.drops > 0, "no drops injected: {counters:?}");
    assert!(counters.corruptions > 0, "no corruption injected: {counters:?}");

    // The engine visibly retried through it.
    assert!(stats.retries > 0, "chaos should force retries: {stats:?}");

    // Device health tracking saw the bursts: faults evicted a device,
    // probes brought one back, and faulted work recovered on the CPU.
    assert!(m.device_evictions >= 1, "no evictions recorded: {m:?}");
    assert!(m.device_reinstatements >= 1, "no reinstatements recorded: {m:?}");
    assert!(m.recovered_batches >= 1, "no CPU recoveries recorded: {m:?}");
    assert!(faulty.daemon().stall_events() > 0, "no stall windows hit");

    // And the clean run saw none of it.
    let clean_m = clean.sched_metrics();
    assert_eq!(clean_m.device_evictions, 0);
    assert_eq!(clean_m.recovered_batches, 0);
    assert_eq!(clean.call_stats().retries, 0);
}
