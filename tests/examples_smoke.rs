//! Smoke test: the runnable examples must keep executing to completion.
//!
//! The example sources are compiled into this test via `#[path]` modules
//! and their `main` functions run directly, so `cargo test` catches a
//! broken example without needing a separate `cargo run` step.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[path = "../examples/io_latency_prediction.rs"]
mod io_latency_prediction;

#[test]
fn quickstart_example_runs_to_completion() {
    quickstart::main().expect("quickstart example");
}

#[test]
fn io_latency_prediction_example_runs_to_completion() {
    io_latency_prediction::main().expect("io_latency_prediction example");
}
