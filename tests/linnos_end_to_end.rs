//! Integration: the §7.1 end-to-end study in miniature — generate
//! pressured traces, train LinnOS on observed behaviour, and verify that
//! predictive reissue through both CPU and LAKE beats the baseline.

use lake::block::{replay, NoPredictor, NvmeDevice, NvmeSpec, ReplayConfig, TraceSpec};
use lake::core::Lake;
use lake::ml::serialize;
use lake::sim::{Duration, SimRng};
use lake::workloads::linnos::{self, LinnosConfig, LinnosMode, LinnosPredictor};

fn devices(rng: &mut SimRng) -> Vec<NvmeDevice> {
    (0..3).map(|_| NvmeDevice::new(NvmeSpec::samsung_980pro(), rng.fork())).collect()
}

#[test]
fn pressured_workload_benefits_from_prediction() {
    let mut rng = SimRng::seed(99);
    let horizon = Duration::from_millis(300);
    let heavy = TraceSpec::cosmos().rerate(3.0).generate(horizon, &mut rng);
    // High-IOPS companion stream so the LAKE predictor can form batches
    // (the paper motivates batching with 256k-IOPS provisioned SSDs).
    let light = TraceSpec::azure().rerate(4.0).generate(horizon, &mut rng);
    let traces = vec![(0usize, heavy), (0usize, light)];

    // Baseline + training samples.
    let mut devs = devices(&mut rng);
    let baseline = replay(
        &mut devs,
        &traces,
        &mut NoPredictor,
        &ReplayConfig { collect_samples: true, ..ReplayConfig::default() },
    );
    assert!(baseline.reads > 1_000, "workload too small: {} reads", baseline.reads);

    let model = linnos::train(&baseline.samples, &LinnosConfig::default());
    assert!(
        model.train_accuracy > 0.85,
        "LinnOS accuracy {} (paper: up to 97%)",
        model.train_accuracy
    );

    // CPU predictor.
    let mut devs = devices(&mut rng);
    let mut cpu_pred = LinnosPredictor::new(model.clone(), LinnosMode::Cpu);
    let cpu = replay(&mut devs, &traces, &mut cpu_pred, &ReplayConfig::default());
    assert!(
        cpu.avg_read_latency < baseline.avg_read_latency,
        "NN cpu {} should beat baseline {}",
        cpu.avg_read_latency,
        baseline.avg_read_latency
    );
    assert!(cpu.reroutes > 0);

    // LAKE predictor: the same weights, remoted, with batch formation.
    let lake = Lake::builder().build();
    let ml = lake.ml();
    let id = ml.load_model(&serialize::encode_mlp(&model.mlp)).expect("loads");
    let mut lake_pred = LinnosPredictor::new(
        model,
        LinnosMode::Lake {
            ml,
            clock: lake.clock().clone(),
            model_id: id,
            quantum: Duration::from_micros(150),
            batch_threshold: 8,
        },
    );
    let mut devs = devices(&mut rng);
    let lake_rep = replay(&mut devs, &traces, &mut lake_pred, &ReplayConfig::default());
    assert!(
        lake_rep.avg_read_latency < baseline.avg_read_latency,
        "NN LAKE {} should beat baseline {}",
        lake_rep.avg_read_latency,
        baseline.avg_read_latency
    );
    let (_, gpu_decisions) = lake_pred.decisions();
    assert!(gpu_decisions > 0, "high-IOPS workload must form GPU batches");
}

#[test]
fn unpressured_workload_sees_no_benefit() {
    // The paper's other finding: on workloads that do not stress modern
    // NVMes, "the cost of running a neural network degrades average read
    // latencies" — prediction adds cost without benefit.
    let mut rng = SimRng::seed(123);
    let light = TraceSpec::azure().generate(Duration::from_millis(300), &mut rng);
    let traces = vec![(0usize, light)];

    let mut devs = devices(&mut rng);
    let baseline = replay(
        &mut devs,
        &traces,
        &mut NoPredictor,
        &ReplayConfig { collect_samples: true, ..ReplayConfig::default() },
    );
    let model = linnos::train(&baseline.samples, &LinnosConfig::default());

    let mut devs = devices(&mut rng);
    let mut pred = LinnosPredictor::new(model, LinnosMode::Cpu);
    let with_nn = replay(&mut devs, &traces, &mut pred, &ReplayConfig::default());
    assert!(
        with_nn.avg_read_latency >= baseline.avg_read_latency,
        "NN {} should not beat baseline {} on an unpressured device",
        with_nn.avg_read_latency,
        baseline.avg_read_latency
    );
}
