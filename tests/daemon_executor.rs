//! Daemon-executor integration: the parallel serve path
//! (`LakeBuilder::daemon_workers` > 1) must be observationally identical
//! to the classic serial loop — same answers, same hot-swap semantics —
//! while completing independent commands out of order.
//!
//! The invariants:
//!
//! * **bit-identity** — an identical workload run at `daemon_workers(1)`
//!   and `daemon_workers(4)` produces byte-identical inference classes
//!   and exported weights;
//! * **ordering barriers** — `swap_model` mid-stream flushes in-flight
//!   inferences against the old weights and fences later ones onto the
//!   new weights, at any worker count;
//! * **pipelining** — queue-pair bursts drain completely (no lost or
//!   duplicated completions) through the out-of-order completion mux;
//! * **observability** — `perf_report().executor` counts frames and
//!   completions, and `effective_pool_threads` reflects the shared
//!   core budget between the executor and the GEMM pool.
//!
//! The `LAKE_DAEMON_WORKERS` env override (CI chaos matrices) takes
//! precedence over the builder knob; under it the bit-identity test
//! degenerates to comparing a worker count against itself, which is
//! harmless.

use lake::core::{Lake, LinkMode};
use lake::ml::{serialize, Activation, Mlp};
use rand::rngs::StdRng;
use rand::SeedableRng;

const COLS: usize = 16;
const CALLS: usize = 120;

fn model(seed: u64) -> Mlp {
    Mlp::new(&[COLS, 12, 3], Activation::Relu, &mut StdRng::seed_from_u64(seed))
}

/// Deterministic synthetic batch for call `i`.
fn batch(i: usize) -> (usize, Vec<f32>) {
    let rows = 1 + (i % 8);
    let feats = (0..rows * COLS).map(|j| ((i * 97 + j * 13) % 199) as f32 / 199.0).collect();
    (rows, feats)
}

/// Mixed workload over the Channel link: two models inferred
/// alternately (independent keys the executor may run concurrently), a
/// mid-stream hot swap on model `a` (a per-model ordering barrier), and
/// a final export. Returns every answer plus the exported blob.
fn run_workload(workers: usize) -> (Vec<Vec<u32>>, Vec<u8>) {
    let lake = Lake::builder()
        .link_mode(LinkMode::Channel)
        .queue_depth(16)
        .daemon_workers(workers)
        .build();
    let ml = lake.ml();
    let a = ml.load_model(&serialize::encode_mlp(&model(1))).expect("load a");
    let b = ml.load_model(&serialize::encode_mlp(&model(2))).expect("load b");
    let mut answers = Vec::with_capacity(CALLS);
    for i in 0..CALLS {
        let (rows, feats) = batch(i);
        let id = if i % 2 == 0 { a } else { b };
        answers.push(ml.infer_mlp(id, rows, COLS, &feats).expect("infer"));
        if i == CALLS / 2 {
            ml.swap_model(a, &serialize::encode_mlp(&model(3))).expect("swap");
        }
    }
    let export = ml.export_model(a).expect("export");
    (answers, export)
}

#[test]
fn four_workers_bit_identical_to_serial() {
    let (serial, serial_export) = run_workload(1);
    let (parallel, parallel_export) = run_workload(4);
    assert_eq!(serial, parallel, "answers must not depend on executor width");
    assert_eq!(serial_export, parallel_export, "swapped weights must export identically");
}

#[test]
fn pipelined_bursts_drain_through_completion_mux() {
    let lake =
        Lake::builder().link_mode(LinkMode::Channel).queue_depth(16).daemon_workers(4).build();
    let ml = lake.ml();
    let a = ml.load_model(&serialize::encode_mlp(&model(1))).expect("load a");
    let b = ml.load_model(&serialize::encode_mlp(&model(2))).expect("load b");

    // Oracle answers via the sync path, then the same batches pipelined
    // 16-deep across both models: every ticket must complete exactly
    // once with the oracle's classes.
    for round in 0..4 {
        let batches: Vec<_> = (0..16).map(|i| batch(round * 16 + i)).collect();
        let oracle: Vec<_> = batches
            .iter()
            .enumerate()
            .map(|(i, (rows, feats))| {
                let id = if i % 2 == 0 { a } else { b };
                ml.infer_mlp(id, *rows, COLS, feats).expect("oracle infer")
            })
            .collect();
        let tickets: Vec<_> = batches
            .iter()
            .enumerate()
            .map(|(i, (rows, feats))| {
                let id = if i % 2 == 0 { a } else { b };
                ml.submit_mlp(id, *rows, COLS, feats).expect("submit")
            })
            .collect();
        let done = ml.drain_completions();
        assert_eq!(done.len(), 16, "no lost or duplicated completions");
        for (t, expected) in tickets.iter().zip(&oracle) {
            let (_, result) = done.iter().find(|(id, _)| id == t).expect("ticket completed");
            assert_eq!(result.as_ref().expect("completion ok"), expected);
        }
    }

    let report = lake.perf_report();
    assert_eq!(report.executor.workers, 4, "executor deployed at the requested width");
    assert!(report.executor.frames > 0, "acceptor counted frames");
    assert!(report.executor.completions > 0, "responder drained completions");
    assert_eq!(
        report.executor.executed, report.executor.completions,
        "every executed command completed exactly once"
    );
    assert!(report.effective_pool_threads >= 1, "GEMM pool keeps at least one thread");
}

#[test]
fn executor_stats_stay_zero_in_process() {
    let lake = Lake::builder().daemon_workers(4).build();
    let ml = lake.ml();
    let id = ml.load_model(&serialize::encode_mlp(&model(1))).expect("load");
    let (rows, feats) = batch(0);
    ml.infer_mlp(id, rows, COLS, &feats).expect("infer");
    let report = lake.perf_report();
    // In-process dispatch has no serve thread, so the executor never
    // sees a frame and the GEMM pool keeps its undivided core budget.
    assert_eq!(lake.daemon_workers(), 1);
    assert_eq!(report.executor.frames, 0);
}

#[test]
fn core_budget_clamps_combined_threads() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let lake = Lake::builder().link_mode(LinkMode::Channel).daemon_workers(4).build();
    let ml = lake.ml();
    let id = ml.load_model(&serialize::encode_mlp(&model(1))).expect("load");
    let (rows, feats) = batch(3);
    ml.infer_mlp(id, rows, COLS, &feats).expect("infer");
    let report = lake.perf_report();
    let workers = lake.daemon_workers();
    assert!(
        workers * report.effective_pool_threads <= cores.max(workers),
        "executor x GEMM threads ({} x {}) oversubscribe {} cores",
        workers,
        report.effective_pool_threads,
        cores
    );
}
