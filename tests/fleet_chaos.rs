//! Fleet chaos integration: the LinnOS-style synchronous inference
//! workload driven through a sharded [`DaemonFleet`] while one shard
//! dies repeatedly on a seeded schedule.
//!
//! The invariants:
//!
//! * **zero lost requests** — every idempotent inference answers, even
//!   when its model's primary shard is mid-crash;
//! * **bit-identical answers** — diverted and failed-over calls return
//!   exactly what a crash-free fleet returns;
//! * **fault isolation** — only the crashing shard restarts; sibling
//!   shards' supervisors stay at epoch 0;
//! * **observable routing** — the router's divert counter shows the
//!   failover path actually ran, and per-shard fault reports stay
//!   attributable via their shard ids.
//!
//! `LAKE_SHARDS` (default 3) sizes the fleet and `LAKE_LINK` picks the
//! transport, so CI can run the same test over the channel and ring
//! links; `CRASH_SEED` selects the crash plan.

use lake::core::{Lake, LakeError};
use lake::fleet::{DaemonFleet, FleetModelId, FleetPolicy};
use lake::ml::{serialize, Activation, Mlp};
use lake::rpc::RpcError;
use lake::sim::{CrashSchedule, Duration};
use rand::rngs::StdRng;
use rand::SeedableRng;

const COLS: usize = 31; // LinnOS feature vector width
const CALLS: usize = 600;
const MODELS: usize = 6;

fn crash_seed() -> u64 {
    std::env::var("CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(11)
}

fn model(m: usize) -> Mlp {
    Mlp::new(&[COLS, 16, 2], Activation::Relu, &mut StdRng::seed_from_u64(4242 + m as u64))
}

fn batch(i: usize) -> (usize, Vec<f32>) {
    let rows = 1 + (i % 32);
    let feats = (0..rows * COLS).map(|j| ((i * 131 + j * 31) % 251) as f32 / 251.0).collect();
    (rows, feats)
}

/// Builds a fleet from the common template; `crashes` arms shard 0 only.
fn deploy(crashes: Option<CrashSchedule>) -> DaemonFleet {
    let template = Lake::builder().shards(3);
    // Virtual time only advances while calls execute, so by the time a
    // router observes a sibling's crash a few calls have already run;
    // widen the divert window to a couple of round-trips so diversion
    // (not just engine-internal failover) gets exercised.
    let policy = FleetPolicy { divert_window: Duration::from_micros(500), ..Default::default() };
    let fleet = DaemonFleet::deploy_with(template, policy, |id, b| match &crashes {
        Some(plan) if id == 0 => b.crash_schedule(plan.clone()),
        _ => b,
    });
    fleet.governor().set_weight(0, 2);
    fleet.governor().set_weight(1, 2);
    fleet
}

/// Loads the model set and runs the workload; returns every call's
/// classes plus the count of typed `DaemonRestarted` training errors.
/// Panics on any lost inference — the zero-lost-requests assertion.
fn run_workload(fleet: &DaemonFleet) -> (Vec<Vec<u32>>, u64) {
    let ml = fleet.ml();
    // Model load is not idempotent, so a load that rides through shard
    // 0's crash surfaces a typed error; init-time code owns the retry
    // loop, as a kernel module's probe path would.
    let ids: Vec<FleetModelId> = (0..MODELS)
        .map(|m| {
            let blob = serialize::encode_mlp(&model(m));
            loop {
                if let Ok(id) = ml.load_model(&blob) {
                    break id;
                }
            }
        })
        .collect();
    let mut results = Vec::with_capacity(CALLS);
    let mut typed_restart_errors = 0u64;
    for i in 0..CALLS {
        let (rows, feats) = batch(i);
        let id = ids[i % MODELS];
        let tenant = (i % 2) as u32;
        if i % 40 == 0 {
            // Zero-learning-rate training: non-idempotent (may surface a
            // typed crash error on the dying shard) but weight-preserving,
            // so every answer stays comparable to the clean run.
            match ml.train_mlp(tenant, id, rows, COLS, &feats, &vec![0u32; rows], 1, 0.0) {
                Ok(_) => {}
                Err(LakeError::Rpc(RpcError::DaemonRestarted { .. })) => typed_restart_errors += 1,
                Err(e) => panic!("train {i} failed with a non-crash error: {e}"),
            }
            ml.sync_replica(id).expect("replica resync");
        }
        let classes = ml
            .infer_mlp(tenant, id, rows, COLS, &feats)
            .unwrap_or_else(|e| panic!("request {i} lost while shard 0 crashed: {e}"));
        results.push(classes);
    }
    (results, typed_restart_errors)
}

#[test]
fn fleet_survives_one_shard_crashing_with_identical_answers() {
    let seed = crash_seed();

    // Crash-free reference fleet.
    let clean = deploy(None);
    let (clean_results, clean_typed) = run_workload(&clean);
    assert_eq!(clean_typed, 0, "no crashes scheduled, no DaemonRestarted errors");

    // Shard 0 dies repeatedly on a seeded jittered plan; its supervisor
    // restarts it while the router diverts around the hole. Crashes are
    // spaced well past the restart churn so most land while a sibling
    // shard is serving — the case the router (not the engine's internal
    // failover) must catch.
    let plan = CrashSchedule::jittered(
        Duration::from_micros(400),
        Duration::from_micros(1200),
        Duration::from_micros(400),
        8,
        seed,
    );
    let crashy = deploy(Some(plan));
    let (crash_results, typed) = run_workload(&crashy);

    // Zero lost requests is asserted inside run_workload; the answers
    // must also be bit-identical to the crash-free fleet's.
    assert_eq!(crash_results, clean_results, "shard death must not change any answer");

    let stats = crashy.stats();
    let report = crashy.fault_report();
    let shard0 = &report.shards[0].supervisor;
    eprintln!(
        "fleet crash seed {seed} ({} shards): {} crashes detected, {} restarts \
         on shard 0 (epoch {}); router: {} primary, {} diverted, {} failover \
         retries; {} typed restart errors; totals: {} restarts, {} orphans \
         reclaimed, {} tickets lost",
        stats.shards,
        shard0.crashes_detected,
        shard0.restarts,
        shard0.epoch,
        stats.routed_primary,
        stats.diverted,
        stats.failover_retries,
        typed,
        report.restarts,
        report.orphans_reclaimed,
        report.tickets_lost,
    );

    // The crash plan really fired, and only on shard 0.
    assert!(shard0.restarts >= 1, "shard 0 never restarted: {shard0:?}");
    for (id, r) in report.shards.iter().enumerate() {
        assert_eq!(r.shard, id, "fault report lost its shard attribution");
        if id != 0 {
            assert_eq!(r.supervisor.restarts, 0, "healthy shard {id} restarted: {r:?}");
            assert_eq!(r.supervisor.epoch, 0, "healthy shard {id} bumped its epoch");
        }
    }
    assert_eq!(report.restarts, shard0.restarts, "fleet totals must equal shard 0's");

    // The router visibly routed around the dying shard at least once.
    assert!(stats.diverted >= 1, "no calls diverted to a backup: {stats:?}");
    assert!(stats.routed_primary > stats.diverted, "diversion must be the exception");

    // Tenant QoS gated the data plane in both runs without losing anyone.
    assert!(stats.qos.admitted >= CALLS as u64, "admissions missing: {:?}", stats.qos);
    assert_eq!(stats.qos.expired, 0, "no tenant request may expire at this load");

    // The clean fleet saw none of it.
    let clean_stats = clean.stats();
    assert_eq!(clean_stats.diverted, 0);
    assert_eq!(clean_stats.failover_retries, 0);
    assert_eq!(clean.fault_report().restarts, 0);
}
