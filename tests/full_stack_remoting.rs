//! Integration: the full remoting stack across a *real* daemon thread —
//! kernel-side stubs encode commands, a Netlink-model link carries them,
//! `lakeD` (the real `LakeDaemon`) executes them against the simulated
//! GPU, and responses flow back.

use std::sync::Arc;

use lake::core::daemon::LakeDaemon;
use lake::core::{api, GpuDevice, GpuSpec};
use lake::rpc::{serve, ApiHandler, CallEngine, Decoder, Encoder};
use lake::shm::ShmRegion;
use lake::sim::SharedClock;
use lake::transport::{Link, Mechanism};

#[test]
fn cuda_workflow_over_a_real_daemon_thread() {
    let clock = SharedClock::new();
    let shm = ShmRegion::with_capacity(1 << 20);
    let gpu = GpuDevice::new(GpuSpec::a100(), clock.clone());
    gpu.register_kernel("square", 2.0, |ctx, args| {
        let ptr = args[0].as_ptr().expect("ptr");
        let mut v = ctx.read_f32(ptr)?;
        v.iter_mut().for_each(|x| *x *= *x);
        ctx.write_f32(ptr, &v)
    });
    let daemon = LakeDaemon::new(Arc::clone(&gpu), shm.clone());

    let (kernel_end, user_end) = Link::pair(Mechanism::Netlink, clock.clone());
    let daemon_thread = std::thread::spawn(move || {
        serve(&user_end, daemon.as_ref() as &dyn ApiHandler);
    });

    let engine = CallEngine::linked(kernel_end);

    // cuMemAlloc
    let mut e = Encoder::new();
    e.put_u64(16);
    let resp = engine.call(api::CU_MEM_ALLOC, e.finish()).expect("alloc");
    let ptr = Decoder::new(&resp).get_u64().expect("ptr");

    // cuMemcpyHtoD via shm (zero-copy payload)
    let staged = shm.alloc(16).expect("shm alloc");
    let values: Vec<u8> = [2.0f32, 3.0, 4.0, 5.0].iter().flat_map(|x| x.to_le_bytes()).collect();
    shm.write(&staged, 0, &values).expect("stage");
    let mut e = Encoder::new();
    e.put_u64(ptr).put_u64(staged.offset() as u64).put_u64(16);
    engine.call(api::CU_MEMCPY_HTOD_SHM, e.finish()).expect("htod");

    // cuLaunchKernel square over 4 items
    let mut e = Encoder::new();
    e.put_str("square").put_u64(4).put_u32(1).put_u8(0).put_u64(ptr);
    engine.call(api::CU_LAUNCH_KERNEL, e.finish()).expect("launch");

    // cuMemcpyDtoH inline
    let mut e = Encoder::new();
    e.put_u64(ptr).put_u64(16);
    let resp = engine.call(api::CU_MEMCPY_DTOH, e.finish()).expect("dtoh");
    let out = Decoder::new(&resp).get_bytes().expect("bytes").to_vec();
    let floats: Vec<f32> =
        out.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))).collect();
    assert_eq!(floats, vec![4.0, 9.0, 16.0, 25.0]);

    // NVML over the same channel
    let mut e = Encoder::new();
    e.put_u64(5_000);
    let resp = engine.call(api::NVML_GET_UTILIZATION, e.finish()).expect("nvml");
    let util = Decoder::new(&resp).get_f64().expect("percent");
    assert!((0.0..=100.0).contains(&util));

    // Virtual time advanced through the channel model.
    assert!(clock.now().as_micros() > 100);

    drop(engine);
    daemon_thread.join().expect("daemon exits");
}

#[test]
fn daemon_rejects_malformed_and_unknown_commands() {
    let clock = SharedClock::new();
    let shm = ShmRegion::with_capacity(1 << 16);
    let gpu = GpuDevice::new(GpuSpec::a100(), clock.clone());
    let daemon = LakeDaemon::new(gpu, shm);
    let engine = CallEngine::in_process(Mechanism::Netlink, clock, daemon);

    // unknown api id
    let err = engine.call(lake::rpc::ApiId(0xdead), bytes::Bytes::new());
    assert!(err.is_err());

    // malformed payload for a known api
    let err = engine.call(api::CU_MEM_FREE, bytes::Bytes::from_static(&[1, 2]));
    assert!(err.is_err());
}
