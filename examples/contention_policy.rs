//! The Fig 1 / Fig 13 contention study: watch a GPU-accelerated user
//! application degrade under unmediated kernel contention, then watch the
//! adaptive policy fix it.
//!
//! Run with: `cargo run --release --example contention_policy`

use lake::sim::Duration;
use lake::workloads::contention::{run, summarize_fig1, ContentionConfig};

fn sparkline(points: &[(lake::sim::Instant, f64)], max: f64) -> String {
    const BARS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    points
        .iter()
        .map(|&(_, v)| {
            let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

fn main() {
    // --- Fig 1: no policy --------------------------------------------------
    let cfg = ContentionConfig::fig1();
    let result = run(&cfg);
    let summary = summarize_fig1(&cfg, &result);
    println!("Fig 1 — unmediated contention (user hashing app, pages/s):");
    println!("  solo (T0..T1):            {:>12.3e}", summary.solo);
    println!("  + page warmth (T1..T2):   {:>12.3e}", summary.one_contender);
    println!("  + I/O predictor (T2..):   {:>12.3e}", summary.two_contenders);
    println!("  max degradation:          {:>11.1}%", summary.max_degradation * 100.0);

    let buckets = result.user_throughput.bucket_mean(Duration::from_millis(250));
    println!("  timeline: {}", sparkline(&buckets, result.user_peak));

    // --- Fig 13: adaptive policy --------------------------------------------
    let cfg = ContentionConfig::fig13();
    let result = run(&cfg);
    println!("\nFig 13 — adaptive contention-averse policy (normalized):");
    let user = result.user_throughput.bucket_mean(Duration::from_millis(500));
    let normalized: Vec<(lake::sim::Instant, f64)> =
        user.iter().map(|&(t, v)| (t, v / result.user_peak)).collect();
    println!("  user (hashing):      {}", sparkline(&normalized, 1.0));
    let kernel = result.kernel_io.bucket_mean(Duration::from_millis(500));
    println!("  kernel (I/O pred.):  {}", sparkline(&kernel, 1.0));
    let target = result.kernel_target.bucket_mean(Duration::from_millis(500));
    println!("  kernel target (1=GPU): {}", sparkline(&target, 1.0));
    println!("  (user enters the GPU at 10s and leaves at 22s; the kernel");
    println!("   falls back to the CPU in between, then reclaims the GPU)");
}
