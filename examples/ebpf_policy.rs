//! Loadable (eBPF-style) execution policies: author the Fig 3 policy as
//! bytecode, verify it, install it, and watch it steer offload decisions
//! against a live LAKE instance.
//!
//! Run with: `cargo run --release --example ebpf_policy`

use lake::core::ebpf::{Ctx, Insn, PolicyCtx, PolicyProgram, ProgramPolicy, Reg};
use lake::core::policy::offload;
use lake::core::{Lake, Target};
use lake::sim::Duration;

fn main() {
    // 1. Author + verify the Fig 3 policy as a program.
    let program = PolicyProgram::fig3(40, 8);
    println!("loaded fig3 policy: {} instructions, verified", program.len());

    // 2. The verifier rejects unsafe programs.
    let bad = PolicyProgram::load(vec![
        Insn::LoadCtx(Reg::R1, Ctx::BatchSize),
        Insn::JmpGe(Reg::R1, Reg::R2, 1), // R2 never initialized
        Insn::RetGpu,
        Insn::RetCpu,
    ]);
    println!("verifier on a buggy program: {}", bad.expect_err("must reject"));

    // 3. Install it over a live LAKE instance: the context source queries
    //    the remoted NVML utilization, exactly like CuPolicy.
    let lake = Lake::builder().build();
    lake.register_kernel("user_hasher", 1.0e6, |_, _| Ok(()));
    let cuda = lake.cuda();
    let nvml = lake.cuda();
    let mut policy = ProgramPolicy::new("fig3-ebpf", program, move |_batch| PolicyCtx {
        gpu_util_percent: nvml.nvml_utilization_percent(5_000).unwrap_or(100.0) as i64,
        ..Default::default()
    });

    // Idle device, healthy batch: GPU.
    let (target, _) = offload(&mut policy, 64, || "ran dev_func", || "ran cpu_func");
    println!("idle device, batch 64  -> {target:?}");
    assert_eq!(target, Target::Gpu);

    // Small batch: CPU (profitability rule).
    let (target, _) = offload(&mut policy, 2, || "dev", || "cpu");
    println!("idle device, batch 2   -> {target:?}");

    // Saturate the device from "user space" and decide again.
    for _ in 0..20 {
        cuda.cu_launch_kernel("user_hasher", 500_000, &[]).expect("launch");
    }
    lake.clock().advance(Duration::from_micros(100));
    let (target, _) = offload(&mut policy, 64, || "dev", || "cpu");
    println!("contended device, batch 64 -> {target:?} (falls back)");
    assert_eq!(target, Target::Cpu);

    // Contention clears; the program reclaims the GPU.
    lake.clock().advance(Duration::from_millis(100));
    let (target, _) = offload(&mut policy, 64, || "dev", || "cpu");
    println!("idle again, batch 64   -> {target:?} (reclaims)");
    assert_eq!(target, Target::Gpu);
}
