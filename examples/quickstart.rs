//! Quickstart: deploy LAKE, remote the CUDA driver API from "kernel
//! space", run a device kernel, and use the feature registry.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use lake::core::{KernelArg, Lake, LakeError};
use lake::registry::{Arch, FeatureRegistryService, Schema};
use lake::sim::Instant;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Deploy LAKE: lakeShm + Netlink channel + lakeD + simulated A100.
    let lake = Lake::builder().build();
    println!("deployed: {lake:?}");

    // 2. Register a device kernel (the analog of shipping a .cubin).
    lake.register_kernel("vector_scale", 1.0, |ctx, args| {
        let ptr = args[0].as_ptr().expect("buffer argument");
        let k = args[1].as_f32().expect("scale argument");
        let mut v = ctx.read_f32(ptr)?;
        v.iter_mut().for_each(|x| *x *= k);
        ctx.write_f32(ptr, &v)
    });

    // 3. Kernel-space application code: the remoted CUDA driver API.
    let cuda = lake.cuda();
    let data: Vec<f32> = (0..1024).map(|i| i as f32).collect();
    let bytes: Vec<u8> = data.iter().flat_map(|x| x.to_le_bytes()).collect();

    let dev = cuda.cu_mem_alloc(bytes.len())?;

    // Bulk data goes through lakeShm (zero-copy across the boundary).
    let staged = lake.shm().alloc(bytes.len()).map_err(LakeError::from)?;
    lake.shm().write(&staged, 0, &bytes).map_err(LakeError::from)?;
    cuda.cu_memcpy_htod_shm(dev, &staged, bytes.len())?;

    cuda.cu_launch_kernel("vector_scale", 1024, &[KernelArg::Ptr(dev), KernelArg::F32(2.5)])?;
    let out = cuda.cu_memcpy_dtoh(dev, bytes.len())?;
    let first = f32::from_le_bytes(out[4..8].try_into().expect("4 bytes"));
    println!("kernel ran on the 'GPU': 1.0 * 2.5 = {first}");
    assert_eq!(first, 2.5);

    println!(
        "virtual time elapsed: {} (remoted calls: {})",
        lake.clock().now(),
        lake.call_stats().calls
    );

    // 4. The in-kernel feature registry (paper Table 1).
    let registry = FeatureRegistryService::new();
    let schema = Schema::builder().feature("pend_ios", 8, 1).feature("io_latency", 8, 4).build();
    registry.create_registry("nvme0", "bio_latency", schema, 32)?;
    registry.register_classifier(
        "nvme0",
        "bio_latency",
        Arch::Cpu,
        Arc::new(|fvs| fvs.iter().map(|fv| fv.get_i64("pend_ios").unwrap_or(0) as f32).collect()),
    )?;

    for i in 0..4u64 {
        let t = Instant::from_nanos(i * 1_000);
        registry.begin_fv_capture("nvme0", "bio_latency", t)?;
        registry.capture_feature_incr("nvme0", "bio_latency", "pend_ios", i as i64 + 1)?;
        registry.capture_feature(
            "nvme0",
            "bio_latency",
            "io_latency",
            &(100 * (i as i64 + 1)).to_le_bytes(),
        )?;
        registry.commit_fv_capture(
            "nvme0",
            "bio_latency",
            t + lake::sim::Duration::from_nanos(500),
        )?;
    }
    let batch = registry.get_features("nvme0", "bio_latency", None)?;
    let (arch, scores) = registry.score_features("nvme0", "bio_latency", &batch)?;
    println!("scored {} feature vectors on {arch:?}: {scores:?}", batch.len());

    Ok(())
}
