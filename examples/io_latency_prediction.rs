//! End-to-end I/O latency prediction (the paper's §7.1 case study, in
//! miniature): generate traces, train the LinnOS network on observed
//! latencies, and replay with predictive reissue on CPU and through LAKE.
//!
//! Run with: `cargo run --release --example io_latency_prediction`

use lake::block::{replay, NoPredictor, NvmeDevice, NvmeSpec, ReplayConfig, TraceSpec};
use lake::core::Lake;
use lake::ml::serialize;
use lake::sim::{Duration, SimRng};
use lake::workloads::linnos;

fn devices(rng: &mut SimRng, n: usize) -> Vec<NvmeDevice> {
    (0..n).map(|_| NvmeDevice::new(NvmeSpec::samsung_980pro(), rng.fork())).collect()
}

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SimRng::seed(2024);
    let horizon = Duration::from_millis(400);

    // A "Mixed+"-style pressured workload: a rerated Cosmos trace and an
    // Azure trace both defaulting to device 0; devices 1-2 idle.
    let cosmos = TraceSpec::cosmos().rerate(3.0).generate(horizon, &mut rng);
    let azure = TraceSpec::azure().generate(horizon, &mut rng);
    println!("generated {} + {} I/Os", cosmos.len(), azure.len());

    // 1. Baseline replay (no rerouting) — also collects training data.
    let mut devs = devices(&mut rng, 3);
    let baseline = replay(
        &mut devs,
        &[(0, cosmos.clone()), (0, azure.clone())],
        &mut NoPredictor,
        &ReplayConfig { collect_samples: true, ..ReplayConfig::default() },
    );
    println!(
        "baseline: avg read latency {} (p99 {})",
        baseline.avg_read_latency, baseline.p99_read_latency
    );

    // 2. Train the LinnOS model on the observed samples.
    let model = linnos::train(&baseline.samples, &linnos::LinnosConfig::default());
    println!(
        "trained LinnOS model: accuracy {:.1}% (slow = > {})",
        model.train_accuracy * 100.0,
        model.slow_threshold
    );

    // 3. Replay with CPU-side inference.
    let mut devs = devices(&mut rng, 3);
    let mut cpu_pred = linnos::LinnosPredictor::new(model.clone(), linnos::LinnosMode::Cpu);
    let cpu = replay(
        &mut devs,
        &[(0, cosmos.clone()), (0, azure.clone())],
        &mut cpu_pred,
        &ReplayConfig::default(),
    );
    println!(
        "NN cpu:   avg read latency {} ({} reroutes, {} inference time)",
        cpu.avg_read_latency, cpu.reroutes, cpu.inference_time
    );

    // 4. Replay with LAKE: the model runs on the GPU with dynamic batch
    //    formation; the high-level API call is real remoting.
    let lake = Lake::builder().build();
    let ml = lake.ml();
    let model_id = ml.load_model(&serialize::encode_mlp(&model.mlp))?;
    let mut lake_pred = linnos::LinnosPredictor::new(
        model,
        linnos::LinnosMode::Lake {
            ml,
            clock: lake.clock().clone(),
            model_id,
            quantum: Duration::from_micros(100),
            batch_threshold: 8,
        },
    );
    let mut devs = devices(&mut rng, 3);
    let lake_report =
        replay(&mut devs, &[(0, cosmos), (0, azure)], &mut lake_pred, &ReplayConfig::default());
    let (cpu_decisions, gpu_decisions) = lake_pred.decisions();
    println!(
        "NN LAKE:  avg read latency {} ({} reroutes, {} inference time, {} cpu / {} gpu decisions)",
        lake_report.avg_read_latency,
        lake_report.reroutes,
        lake_report.inference_time,
        cpu_decisions,
        gpu_decisions
    );

    let speedup =
        baseline.avg_read_latency.as_micros_f64() / lake_report.avg_read_latency.as_micros_f64();
    println!("LAKE vs baseline: {speedup:.2}x lower average read latency");
    Ok(())
}
