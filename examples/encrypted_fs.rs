//! GPU-accelerated file system encryption (§7.7): mount the
//! eCryptfs-style volume on each crypto path and compare sequential
//! throughput, then demonstrate tamper detection.
//!
//! Run with: `cargo run --release --example encrypted_fs`

use lake::block::{NvmeDevice, NvmeSpec};
use lake::core::Lake;
use lake::fs::{CryptoPath, Ecryptfs, EcryptfsConfig};
use lake::sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = [0x42u8; 32];
    let block = 512 * 1024; // 512 KiB extents
    let total = 16 << 20; // 16 MiB file

    println!("sequential read throughput, {}KiB extents:", block / 1024);
    for which in ["CPU", "AES-NI", "LAKE", "GPU+AES-NI"] {
        // Each run gets its own device, clock, and (for GPU paths) LAKE
        // instance.
        let lake = Lake::builder().build();
        Ecryptfs::install_gpu_kernels(&lake, &key);
        lake.gpu().set_exec_mode(lake::gpu::ExecMode::TimingOnly);
        let path = match which {
            "CPU" => CryptoPath::Cpu,
            "AES-NI" => CryptoPath::AesNi,
            "LAKE" => CryptoPath::LakeGpu(lake.cuda()),
            _ => CryptoPath::GpuPlusAesNi(lake.cuda()),
        };
        let device = NvmeDevice::new(NvmeSpec::samsung_980pro(), SimRng::seed(7));
        let mut fs = Ecryptfs::new(
            &key,
            path,
            device,
            lake.clock().clone(),
            EcryptfsConfig { extent_size: block, timing_only: true, ..EcryptfsConfig::default() },
        );
        fs.write(0, &vec![0u8; total])?;
        let mbps = fs.measure_sequential_read(total)?;
        println!("  {which:<11} {mbps:>8.0} MB/s");
    }

    // Real cryptography demo (small file, real AES-256-GCM end to end).
    println!("\nreal AES-256-GCM through the LAKE GPU path:");
    let lake = Lake::builder().build();
    Ecryptfs::install_gpu_kernels(&lake, &key);
    let device = NvmeDevice::new(NvmeSpec::samsung_980pro(), SimRng::seed(8));
    let mut fs = Ecryptfs::new(
        &key,
        CryptoPath::LakeGpu(lake.cuda()),
        device,
        lake.clock().clone(),
        EcryptfsConfig { extent_size: 4096, ..EcryptfsConfig::default() },
    );
    let secret = b"page-cache contents nobody should read at rest";
    fs.write(0, secret)?;
    let back = fs.read(0, secret.len())?;
    assert_eq!(&back, secret);
    println!("  wrote and read {} bytes through the GPU cipher", secret.len());
    println!("  virtual time: {}, remoted calls: {}", lake.clock().now(), lake.call_stats().calls);

    Ok(())
}
